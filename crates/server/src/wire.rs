//! The length-prefixed binary wire protocol.
//!
//! Every frame on the socket is
//!
//! ```text
//! u32 len | u32 crc32(payload) | payload          (little-endian)
//! ```
//!
//! — the same checksum discipline as the WAL, so a flipped bit anywhere is
//! a typed [`ProtocolError`], never a mis-parse. `len` is capped at
//! [`MAX_FRAME`]; an oversized header is rejected *before* any allocation,
//! so a malicious length cannot OOM the server.
//!
//! A payload is `u64 request-id | u8 tag | body`. Request ids are chosen by
//! the client (any values; they only correlate responses) and echoed on
//! every response frame. One request produces exactly one response, except
//! `SubscribeFirings`, whose id is additionally reused for every streamed
//! [`Response::Firing`] frame that follows.
//!
//! Bodies reuse the `tdb-storage` codec ([`Enc`]/[`Dec`] plus the
//! `put_*`/`get_*` helpers), so the values crossing the wire — logical
//! ops, firing records, relations, snapshots — are encoded byte-identically
//! to their WAL/checkpoint representation. Decoding is fully defensive:
//! unknown tags, truncated bodies and trailing garbage all surface as
//! [`ProtocolError::Decode`].

use std::fmt;
use std::io::{Read, Write};

use tdb_core::rules::FiringRecord;
use tdb_core::storage::LogicalOp;
use tdb_core::{VtFiringEvent, VtPhase};
use tdb_engine::WriteOp;
use tdb_relation::{Relation, Timestamp, Value};
use tdb_storage::codec::{
    decode_logical_op, encode_logical_op, get_firing, get_relation, get_timestamp, get_value,
    get_write_op, put_firing, put_relation, put_timestamp, put_value, put_write_op, Dec, Enc,
};
use tdb_storage::crc::crc32;

/// Protocol version spoken by this build; `Hello` negotiates (exact match).
pub const PROTOCOL_VERSION: u32 = 1;

/// Hard cap on one frame's payload (checked before allocating).
pub const MAX_FRAME: u32 = 64 << 20;

/// Transport-level failures. These are about *bytes*, not about what a
/// request meant — semantic failures travel as [`Response::Error`].
#[derive(Debug)]
pub enum ProtocolError {
    /// Underlying socket failure (message form: sockets aren't cloneable
    /// into errors).
    Io(String),
    /// The peer closed the connection mid-frame (a clean close between
    /// frames is `Closed`).
    Truncated { wanted: usize, got: usize },
    /// The peer closed the connection at a frame boundary.
    Closed,
    /// Frame header announced more than [`MAX_FRAME`] bytes.
    Oversized { len: u32 },
    /// Payload failed its checksum.
    Checksum,
    /// Checksum-valid payload did not decode.
    Decode(String),
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::Io(e) => write!(f, "i/o: {e}"),
            ProtocolError::Truncated { wanted, got } => {
                write!(f, "connection closed mid-frame ({got}/{wanted} bytes)")
            }
            ProtocolError::Closed => write!(f, "connection closed"),
            ProtocolError::Oversized { len } => {
                write!(f, "frame of {len} bytes exceeds cap of {MAX_FRAME}")
            }
            ProtocolError::Checksum => write!(f, "frame payload failed checksum"),
            ProtocolError::Decode(m) => write!(f, "frame did not decode: {m}"),
        }
    }
}

impl std::error::Error for ProtocolError {}

/// Semantic error classes carried by [`Response::Error`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// Malformed or unsupported request (the connection stays usable).
    Protocol,
    /// Named tenant does not exist.
    NoSuchTenant,
    /// `CreateTenant` for a name that is taken.
    TenantExists,
    /// Rule text or query text failed to parse.
    Parse,
    /// Registration rejected by the static verifier (`LintLevel::Deny`).
    Lint,
    /// Rule uses a feature the wire cannot express (e.g. `program`).
    Unsupported,
    /// Tenant WAL / rule store failure.
    Storage,
    /// Anything else (the message says what).
    Internal,
}

impl ErrorCode {
    fn to_u8(self) -> u8 {
        match self {
            ErrorCode::Protocol => 0,
            ErrorCode::NoSuchTenant => 1,
            ErrorCode::TenantExists => 2,
            ErrorCode::Parse => 3,
            ErrorCode::Lint => 4,
            ErrorCode::Unsupported => 5,
            ErrorCode::Storage => 6,
            ErrorCode::Internal => 7,
        }
    }

    fn from_u8(v: u8) -> Option<ErrorCode> {
        Some(match v {
            0 => ErrorCode::Protocol,
            1 => ErrorCode::NoSuchTenant,
            2 => ErrorCode::TenantExists,
            3 => ErrorCode::Parse,
            4 => ErrorCode::Lint,
            5 => ErrorCode::Unsupported,
            6 => ErrorCode::Storage,
            7 => ErrorCode::Internal,
            _ => return None,
        })
    }
}

/// Metrics exposition format.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricsFormat {
    Prometheus,
    Json,
}

/// Client → server messages.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Version handshake (optional but recommended as the first frame).
    Hello { version: u32 },
    /// Create a tenant. `durable` requires the server to run with a data
    /// directory; the tenant gets its own WAL + checkpoint subdirectory.
    CreateTenant { name: String, durable: bool },
    /// Names of live tenants.
    ListTenants,
    /// Register every rule in `source` (rule-file text, see
    /// `tdb-analysis`), lint-gated at the server's configured level.
    RegisterRule { tenant: String, source: String },
    /// Apply a batch of logical ops in order. Op-level failures (constraint
    /// vetoes) are reported per-op; the batch does not stop. Each op is its
    /// own WAL record and fsync (under `SyncPolicy::Always`).
    Commit { tenant: String, ops: Vec<LogicalOp> },
    /// Apply `ops` as one *group commit*: a single WAL record, a single
    /// fsync, and one batched evaluation slice. The ack means the whole
    /// batch is durable; a crash mid-batch recovers none of it. Responds
    /// with the same [`Response::Committed`] shape as `Commit`.
    CommitBatch { tenant: String, ops: Vec<LogicalOp> },
    /// Evaluate a relational query against the tenant's current database.
    Query {
        tenant: String,
        text: String,
        params: Vec<Value>,
    },
    /// The tenant's Theorem-1 snapshot, codec-encoded.
    Snapshot { tenant: String },
    /// Catch-up read of the firing log from index `from`.
    Firings { tenant: String, from: u64 },
    /// Stream every future firing of this tenant back on this connection,
    /// correlated by this request's id.
    SubscribeFirings { tenant: String },
    /// Per-tenant gauges (states, rules, firings, retained size, clock,
    /// WAL bytes).
    TenantStats { tenant: String },
    /// Exposition of the shared metrics registry.
    Metrics { format: MetricsFormat },
    /// Graceful stop: checkpoint durable tenants and exit.
    Shutdown,
    /// Valid-time stream ingest (§9): apply `ops` at the explicit `valid`
    /// timestamp on a valid-time tenant. `arrival` is the event's arrival
    /// (transaction) time — the server advances the tenant clock to it
    /// (monotone max) before ingesting, so the watermark `W = now − Δ`
    /// tracks the arrival stream and `valid` must lie in `[W, now]`.
    /// Responds with [`Response::VtCommitted`].
    CommitAt {
        tenant: String,
        arrival: Timestamp,
        valid: Timestamp,
        ops: Vec<WriteOp>,
    },
    /// Create a *valid-time* tenant: out-of-order ingest via [`Request::CommitAt`],
    /// tentative/confirmed/retracted firing streams over `SubscribeFirings`.
    /// `max_delay` is the tenant's disorder bound Δ; values ≤ 0 select the
    /// server default (`--max-delay`).
    CreateVtTenant {
        name: String,
        durable: bool,
        max_delay: i64,
    },
}

/// Server → client messages.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    HelloOk {
        version: u32,
    },
    TenantCreated,
    Tenants {
        names: Vec<String>,
    },
    /// Rules registered, with any lint findings rendered as text.
    RulesRegistered {
        registered: Vec<String>,
        findings: Vec<String>,
    },
    /// One outcome per submitted op (`Ok` or the op-level rejection
    /// message), plus every firing the batch produced, in dispatch order.
    Committed {
        outcomes: Vec<std::result::Result<(), String>>,
        firings: Vec<FiringRecord>,
    },
    Rows {
        relation: Relation,
    },
    /// `tdb_storage::codec::encode_snapshot` bytes.
    SnapshotData {
        bytes: Vec<u8>,
    },
    FiringsList {
        from: u64,
        records: Vec<FiringRecord>,
    },
    Subscribed,
    /// One streamed firing (id = the subscription's request id).
    Firing {
        record: FiringRecord,
    },
    Stats {
        states: u64,
        rules: u64,
        firings: u64,
        retained: u64,
        now: Timestamp,
        wal_bytes: u64,
        /// Batch-safety certificate, scalar-encoded: 0 = exact, k ≥ 1 =
        /// stratified with k strata, -1 = cascade-required.
        batch_safety: i64,
    },
    MetricsText {
        text: String,
    },
    ShuttingDown,
    Error {
        code: ErrorCode,
        message: String,
    },
    /// One streamed valid-time firing event (id = the subscription's
    /// request id): the record plus its lifecycle phase. A `Tentative`
    /// event may later be refined by a `Confirmed` or `Retracted` event
    /// carrying the same `(time, env)`; once the watermark passes a
    /// firing's valid instant its `Confirmed` event is final.
    VtFiring {
        event: VtFiringEvent,
    },
    /// Ack for [`Request::CommitAt`] (and for clock ops committed on a
    /// valid-time tenant): the tenant's watermark after the op, plus every
    /// firing-stream event the op produced, in emission order.
    VtCommitted {
        watermark: Timestamp,
        events: Vec<VtFiringEvent>,
    },
}

// ---- framing ----------------------------------------------------------------

/// Capacity a read scratch starts at (and shrinks back to after a large
/// frame inflated it past [`SCRATCH_EVICT`]).
const SCRATCH_BASE: usize = 16 * 1024;

/// Capacity threshold above which a fully drained scratch releases its
/// allocation: one 64 MiB snapshot frame must not pin 64 MiB per
/// connection forever.
const SCRATCH_EVICT: usize = 1 << 20;

/// A connection's reusable frame-read buffer. One frame read used to
/// allocate a fresh payload `Vec`; a scratch is grow-only across frames
/// (amortizing the allocation to zero on steady state) with an evict
/// threshold so a single oversized frame does not pin its high-water mark.
#[derive(Debug, Default)]
pub struct FrameScratch {
    buf: Vec<u8>,
}

impl FrameScratch {
    pub fn new() -> FrameScratch {
        FrameScratch {
            buf: Vec::with_capacity(SCRATCH_BASE),
        }
    }

    /// Current backing capacity (tests, metrics).
    pub fn capacity(&self) -> usize {
        self.buf.capacity()
    }

    fn maybe_evict(&mut self) {
        if self.buf.capacity() > SCRATCH_EVICT {
            self.buf = Vec::with_capacity(SCRATCH_BASE);
        }
    }
}

/// Reads one frame's payload into `scratch`, verifying length cap and
/// checksum. The returned slice borrows the scratch; the next call reuses
/// the same allocation.
pub fn read_frame_into<'a>(
    r: &mut impl Read,
    scratch: &'a mut FrameScratch,
) -> std::result::Result<&'a [u8], ProtocolError> {
    let mut head = [0u8; 8];
    read_exact_or_close(r, &mut head, true)?;
    let len = u32::from_le_bytes(tdb_storage::codec::first_n(&head[..4]));
    let crc = u32::from_le_bytes(tdb_storage::codec::first_n(&head[4..]));
    if len > MAX_FRAME {
        return Err(ProtocolError::Oversized { len });
    }
    scratch.maybe_evict();
    scratch.buf.clear();
    scratch.buf.resize(len as usize, 0);
    read_exact_or_close(r, &mut scratch.buf, false)?;
    if crc32(&scratch.buf) != crc {
        return Err(ProtocolError::Checksum);
    }
    Ok(&scratch.buf)
}

/// Incremental frame reassembly for nonblocking reads: the poller appends
/// whatever bytes the socket had ([`FrameAssembler::ingest`]) and drains
/// complete frames ([`FrameAssembler::next_frame`]); partial frames stay
/// buffered until the next readiness event. The buffer is grow-only with
/// the same evict discipline as [`FrameScratch`].
#[derive(Debug, Default)]
pub struct FrameAssembler {
    buf: Vec<u8>,
    /// Bytes at the front already handed out as complete frames.
    pos: usize,
}

impl FrameAssembler {
    pub fn new() -> FrameAssembler {
        FrameAssembler {
            buf: Vec::with_capacity(SCRATCH_BASE),
            pos: 0,
        }
    }

    /// Appends raw bytes read off the socket.
    pub fn ingest(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet returned as frames.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// The next complete frame's payload, or `None` when more bytes are
    /// needed. Framing failures (oversized header, checksum mismatch) are
    /// typed errors — the stream is unrecoverable past them.
    pub fn next_frame(&mut self) -> std::result::Result<Option<&[u8]>, ProtocolError> {
        self.compact();
        let avail = self.buf.len() - self.pos;
        if avail < 8 {
            return Ok(None);
        }
        let head = &self.buf[self.pos..self.pos + 8];
        let len = u32::from_le_bytes(tdb_storage::codec::first_n(&head[..4]));
        let crc = u32::from_le_bytes(tdb_storage::codec::first_n(&head[4..]));
        if len > MAX_FRAME {
            return Err(ProtocolError::Oversized { len });
        }
        let total = 8 + len as usize;
        if avail < total {
            return Ok(None);
        }
        let start = self.pos + 8;
        let end = start + len as usize;
        if crc32(&self.buf[start..end]) != crc {
            return Err(ProtocolError::Checksum);
        }
        self.pos = end;
        Ok(Some(&self.buf[start..end]))
    }

    /// Reclaims consumed front space: cheap `clear` when fully drained
    /// (plus the evict check), `drain` when the consumed prefix dominates.
    fn compact(&mut self) {
        if self.pos == self.buf.len() {
            self.buf.clear();
            self.pos = 0;
            if self.buf.capacity() > SCRATCH_EVICT {
                self.buf = Vec::with_capacity(SCRATCH_BASE);
            }
        } else if self.pos > SCRATCH_BASE && self.pos * 2 > self.buf.len() {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
    }
}

/// Writes one frame (`id`/`payload` already encoded by
/// [`encode_request`]/[`encode_response`]).
pub fn write_frame<W: Write + ?Sized>(
    w: &mut W,
    payload: &[u8],
) -> std::result::Result<(), ProtocolError> {
    debug_assert!(payload.len() as u64 <= MAX_FRAME as u64);
    let mut head = [0u8; 8];
    head[..4].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    head[4..].copy_from_slice(&crc32(payload).to_le_bytes());
    w.write_all(&head)
        .and_then(|()| w.write_all(payload))
        .and_then(|()| w.flush())
        .map_err(|e| ProtocolError::Io(e.to_string()))
}

/// Reads one frame's payload as an owned `Vec`, verifying length cap and
/// checksum. Steady-state readers should hold a [`FrameScratch`] and call
/// [`read_frame_into`] instead — this allocates per frame.
pub fn read_frame(r: &mut impl Read) -> std::result::Result<Vec<u8>, ProtocolError> {
    let mut scratch = FrameScratch::default();
    read_frame_into(r, &mut scratch)?;
    Ok(scratch.buf)
}

/// `read_exact` that distinguishes a clean close at a frame boundary
/// (`Closed`, only when `at_boundary` and nothing was read yet) from a
/// close mid-frame (`Truncated`).
fn read_exact_or_close(
    r: &mut impl Read,
    buf: &mut [u8],
    at_boundary: bool,
) -> std::result::Result<(), ProtocolError> {
    let mut got = 0;
    while got < buf.len() {
        match r.read(&mut buf[got..]) {
            Ok(0) => {
                return Err(if at_boundary && got == 0 {
                    ProtocolError::Closed
                } else {
                    ProtocolError::Truncated {
                        wanted: buf.len(),
                        got,
                    }
                });
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(ProtocolError::Io(e.to_string())),
        }
    }
    Ok(())
}

// ---- payload codec ----------------------------------------------------------

fn dec_err(e: tdb_storage::StorageError) -> ProtocolError {
    ProtocolError::Decode(e.to_string())
}

fn put_string_vec(e: &mut Enc, v: &[String]) {
    e.len(v.len());
    for s in v {
        e.str(s);
    }
}

fn get_string_vec(d: &mut Dec, what: &str) -> std::result::Result<Vec<String>, ProtocolError> {
    let n = d.seq_len(what, 8).map_err(dec_err)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(d.str(what).map_err(dec_err)?);
    }
    Ok(out)
}

fn put_vt_event(e: &mut Enc, ev: &VtFiringEvent) {
    e.u8(match ev.phase {
        VtPhase::Tentative => 0,
        VtPhase::Confirmed => 1,
        VtPhase::Retracted => 2,
    });
    put_firing(e, &ev.record);
}

fn get_vt_event(d: &mut Dec) -> std::result::Result<VtFiringEvent, ProtocolError> {
    let phase = match d.u8("vt phase").map_err(dec_err)? {
        0 => VtPhase::Tentative,
        1 => VtPhase::Confirmed,
        2 => VtPhase::Retracted,
        other => return Err(ProtocolError::Decode(format!("unknown vt phase {other}"))),
    };
    Ok(VtFiringEvent {
        phase,
        record: get_firing(d).map_err(dec_err)?,
    })
}

fn put_bytes(e: &mut Enc, b: &[u8]) {
    e.len(b.len());
    e.raw(b);
}

fn get_bytes(d: &mut Dec, what: &str) -> std::result::Result<Vec<u8>, ProtocolError> {
    let n = d.seq_len(what, 1).map_err(dec_err)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(d.u8(what).map_err(dec_err)?);
    }
    Ok(out)
}

/// Encodes one request into a frame payload.
pub fn encode_request(id: u64, req: &Request) -> Vec<u8> {
    let mut e = Enc::new();
    e.u64(id);
    match req {
        Request::Hello { version } => {
            e.u8(1);
            e.u32(*version);
        }
        Request::CreateTenant { name, durable } => {
            e.u8(2);
            e.str(name);
            e.boolean(*durable);
        }
        Request::ListTenants => e.u8(3),
        Request::RegisterRule { tenant, source } => {
            e.u8(4);
            e.str(tenant);
            e.str(source);
        }
        Request::Commit { tenant, ops } => {
            e.u8(5);
            e.str(tenant);
            e.len(ops.len());
            for op in ops {
                put_bytes(&mut e, &encode_logical_op(op));
            }
        }
        Request::Query {
            tenant,
            text,
            params,
        } => {
            e.u8(6);
            e.str(tenant);
            e.str(text);
            e.len(params.len());
            for p in params {
                put_value(&mut e, p);
            }
        }
        Request::Snapshot { tenant } => {
            e.u8(7);
            e.str(tenant);
        }
        Request::Firings { tenant, from } => {
            e.u8(8);
            e.str(tenant);
            e.u64(*from);
        }
        Request::SubscribeFirings { tenant } => {
            e.u8(9);
            e.str(tenant);
        }
        Request::TenantStats { tenant } => {
            e.u8(10);
            e.str(tenant);
        }
        Request::Metrics { format } => {
            e.u8(11);
            e.u8(match format {
                MetricsFormat::Prometheus => 0,
                MetricsFormat::Json => 1,
            });
        }
        Request::Shutdown => e.u8(12),
        Request::CommitBatch { tenant, ops } => {
            e.u8(13);
            e.str(tenant);
            e.len(ops.len());
            for op in ops {
                put_bytes(&mut e, &encode_logical_op(op));
            }
        }
        Request::CommitAt {
            tenant,
            arrival,
            valid,
            ops,
        } => {
            e.u8(14);
            e.str(tenant);
            put_timestamp(&mut e, *arrival);
            put_timestamp(&mut e, *valid);
            e.len(ops.len());
            for op in ops {
                put_write_op(&mut e, op);
            }
        }
        Request::CreateVtTenant {
            name,
            durable,
            max_delay,
        } => {
            e.u8(15);
            e.str(name);
            e.boolean(*durable);
            e.i64(*max_delay);
        }
    }
    e.into_bytes()
}

/// Decodes a frame payload as a request.
pub fn decode_request(payload: &[u8]) -> std::result::Result<(u64, Request), ProtocolError> {
    let mut d = Dec::new(payload);
    let id = d.u64("request id").map_err(dec_err)?;
    let tag = d.u8("request tag").map_err(dec_err)?;
    let req = match tag {
        1 => Request::Hello {
            version: d.u32("hello version").map_err(dec_err)?,
        },
        2 => Request::CreateTenant {
            name: d.str("tenant name").map_err(dec_err)?,
            durable: d.boolean("durable flag").map_err(dec_err)?,
        },
        3 => Request::ListTenants,
        4 => Request::RegisterRule {
            tenant: d.str("tenant name").map_err(dec_err)?,
            source: d.str("rule source").map_err(dec_err)?,
        },
        5 => {
            let tenant = d.str("tenant name").map_err(dec_err)?;
            let n = d.seq_len("ops", 9).map_err(dec_err)?;
            let mut ops = Vec::with_capacity(n);
            for _ in 0..n {
                let bytes = get_bytes(&mut d, "op bytes")?;
                ops.push(decode_logical_op(&bytes).map_err(dec_err)?);
            }
            Request::Commit { tenant, ops }
        }
        6 => {
            let tenant = d.str("tenant name").map_err(dec_err)?;
            let text = d.str("query text").map_err(dec_err)?;
            let n = d.seq_len("query params", 1).map_err(dec_err)?;
            let mut params = Vec::with_capacity(n);
            for _ in 0..n {
                params.push(get_value(&mut d).map_err(dec_err)?);
            }
            Request::Query {
                tenant,
                text,
                params,
            }
        }
        7 => Request::Snapshot {
            tenant: d.str("tenant name").map_err(dec_err)?,
        },
        8 => Request::Firings {
            tenant: d.str("tenant name").map_err(dec_err)?,
            from: d.u64("firing index").map_err(dec_err)?,
        },
        9 => Request::SubscribeFirings {
            tenant: d.str("tenant name").map_err(dec_err)?,
        },
        10 => Request::TenantStats {
            tenant: d.str("tenant name").map_err(dec_err)?,
        },
        11 => Request::Metrics {
            format: match d.u8("metrics format").map_err(dec_err)? {
                0 => MetricsFormat::Prometheus,
                1 => MetricsFormat::Json,
                other => {
                    return Err(ProtocolError::Decode(format!(
                        "unknown metrics format {other}"
                    )))
                }
            },
        },
        12 => Request::Shutdown,
        13 => {
            let tenant = d.str("tenant name").map_err(dec_err)?;
            let n = d.seq_len("batch ops", 9).map_err(dec_err)?;
            let mut ops = Vec::with_capacity(n);
            for _ in 0..n {
                let bytes = get_bytes(&mut d, "op bytes")?;
                ops.push(decode_logical_op(&bytes).map_err(dec_err)?);
            }
            Request::CommitBatch { tenant, ops }
        }
        14 => {
            let tenant = d.str("tenant name").map_err(dec_err)?;
            let arrival = get_timestamp(&mut d).map_err(dec_err)?;
            let valid = get_timestamp(&mut d).map_err(dec_err)?;
            let n = d.seq_len("commit-at ops", 2).map_err(dec_err)?;
            let mut ops = Vec::with_capacity(n);
            for _ in 0..n {
                ops.push(get_write_op(&mut d).map_err(dec_err)?);
            }
            Request::CommitAt {
                tenant,
                arrival,
                valid,
                ops,
            }
        }
        15 => Request::CreateVtTenant {
            name: d.str("tenant name").map_err(dec_err)?,
            durable: d.boolean("durable flag").map_err(dec_err)?,
            max_delay: d.i64("max delay").map_err(dec_err)?,
        },
        other => {
            return Err(ProtocolError::Decode(format!(
                "unknown request tag {other}"
            )))
        }
    };
    d.finish("request payload").map_err(dec_err)?;
    Ok((id, req))
}

/// Encodes one response into a frame payload.
pub fn encode_response(id: u64, resp: &Response) -> Vec<u8> {
    let mut e = Enc::new();
    e.u64(id);
    match resp {
        Response::HelloOk { version } => {
            e.u8(32);
            e.u32(*version);
        }
        Response::TenantCreated => e.u8(33),
        Response::Tenants { names } => {
            e.u8(34);
            put_string_vec(&mut e, names);
        }
        Response::RulesRegistered {
            registered,
            findings,
        } => {
            e.u8(35);
            put_string_vec(&mut e, registered);
            put_string_vec(&mut e, findings);
        }
        Response::Committed { outcomes, firings } => {
            e.u8(36);
            e.len(outcomes.len());
            for o in outcomes {
                match o {
                    Ok(()) => e.u8(0),
                    Err(m) => {
                        e.u8(1);
                        e.str(m);
                    }
                }
            }
            e.len(firings.len());
            for f in firings {
                put_firing(&mut e, f);
            }
        }
        Response::Rows { relation } => {
            e.u8(37);
            put_relation(&mut e, relation);
        }
        Response::SnapshotData { bytes } => {
            e.u8(38);
            put_bytes(&mut e, bytes);
        }
        Response::FiringsList { from, records } => {
            e.u8(39);
            e.u64(*from);
            e.len(records.len());
            for f in records {
                put_firing(&mut e, f);
            }
        }
        Response::Subscribed => e.u8(40),
        Response::Firing { record } => {
            e.u8(41);
            put_firing(&mut e, record);
        }
        Response::Stats {
            states,
            rules,
            firings,
            retained,
            now,
            wal_bytes,
            batch_safety,
        } => {
            e.u8(42);
            e.u64(*states);
            e.u64(*rules);
            e.u64(*firings);
            e.u64(*retained);
            put_timestamp(&mut e, *now);
            e.u64(*wal_bytes);
            e.i64(*batch_safety);
        }
        Response::MetricsText { text } => {
            e.u8(43);
            e.str(text);
        }
        Response::ShuttingDown => e.u8(44),
        Response::Error { code, message } => {
            e.u8(45);
            e.u8(code.to_u8());
            e.str(message);
        }
        Response::VtFiring { event } => {
            e.u8(46);
            put_vt_event(&mut e, event);
        }
        Response::VtCommitted { watermark, events } => {
            e.u8(47);
            put_timestamp(&mut e, *watermark);
            e.len(events.len());
            for ev in events {
                put_vt_event(&mut e, ev);
            }
        }
    }
    e.into_bytes()
}

/// Decodes a frame payload as a response.
pub fn decode_response(payload: &[u8]) -> std::result::Result<(u64, Response), ProtocolError> {
    let mut d = Dec::new(payload);
    let id = d.u64("response id").map_err(dec_err)?;
    let tag = d.u8("response tag").map_err(dec_err)?;
    let resp = match tag {
        32 => Response::HelloOk {
            version: d.u32("hello version").map_err(dec_err)?,
        },
        33 => Response::TenantCreated,
        34 => Response::Tenants {
            names: get_string_vec(&mut d, "tenant names")?,
        },
        35 => Response::RulesRegistered {
            registered: get_string_vec(&mut d, "registered rules")?,
            findings: get_string_vec(&mut d, "lint findings")?,
        },
        36 => {
            let n = d.seq_len("op outcomes", 1).map_err(dec_err)?;
            let mut outcomes = Vec::with_capacity(n);
            for _ in 0..n {
                outcomes.push(match d.u8("outcome tag").map_err(dec_err)? {
                    0 => Ok(()),
                    1 => Err(d.str("outcome message").map_err(dec_err)?),
                    other => {
                        return Err(ProtocolError::Decode(format!(
                            "unknown outcome tag {other}"
                        )))
                    }
                });
            }
            let n = d.seq_len("firings", 8).map_err(dec_err)?;
            let mut firings = Vec::with_capacity(n);
            for _ in 0..n {
                firings.push(get_firing(&mut d).map_err(dec_err)?);
            }
            Response::Committed { outcomes, firings }
        }
        37 => Response::Rows {
            relation: get_relation(&mut d).map_err(dec_err)?,
        },
        38 => Response::SnapshotData {
            bytes: get_bytes(&mut d, "snapshot bytes")?,
        },
        39 => {
            let from = d.u64("firing index").map_err(dec_err)?;
            let n = d.seq_len("firings", 8).map_err(dec_err)?;
            let mut records = Vec::with_capacity(n);
            for _ in 0..n {
                records.push(get_firing(&mut d).map_err(dec_err)?);
            }
            Response::FiringsList { from, records }
        }
        40 => Response::Subscribed,
        41 => Response::Firing {
            record: get_firing(&mut d).map_err(dec_err)?,
        },
        42 => Response::Stats {
            states: d.u64("states").map_err(dec_err)?,
            rules: d.u64("rules").map_err(dec_err)?,
            firings: d.u64("firings").map_err(dec_err)?,
            retained: d.u64("retained").map_err(dec_err)?,
            now: get_timestamp(&mut d).map_err(dec_err)?,
            wal_bytes: d.u64("wal bytes").map_err(dec_err)?,
            batch_safety: d.i64("batch safety").map_err(dec_err)?,
        },
        43 => Response::MetricsText {
            text: d.str("metrics text").map_err(dec_err)?,
        },
        44 => Response::ShuttingDown,
        45 => {
            let code = d.u8("error code").map_err(dec_err)?;
            let code = ErrorCode::from_u8(code)
                .ok_or_else(|| ProtocolError::Decode(format!("unknown error code {code}")))?;
            Response::Error {
                code,
                message: d.str("error message").map_err(dec_err)?,
            }
        }
        46 => Response::VtFiring {
            event: get_vt_event(&mut d)?,
        },
        47 => {
            let watermark = get_timestamp(&mut d).map_err(dec_err)?;
            let n = d.seq_len("vt events", 2).map_err(dec_err)?;
            let mut events = Vec::with_capacity(n);
            for _ in 0..n {
                events.push(get_vt_event(&mut d)?);
            }
            Response::VtCommitted { watermark, events }
        }
        other => {
            return Err(ProtocolError::Decode(format!(
                "unknown response tag {other}"
            )))
        }
    };
    d.finish("response payload").map_err(dec_err)?;
    Ok((id, resp))
}

#[cfg(test)]
#[allow(clippy::disallowed_methods)] // tests may unwrap
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip() {
        let payload = encode_request(7, &Request::Hello { version: 1 });
        let mut buf = Vec::new();
        write_frame(&mut buf, &payload).unwrap();
        let mut r = &buf[..];
        let got = read_frame(&mut r).unwrap();
        assert_eq!(got, payload);
        assert!(matches!(
            read_frame(&mut r).unwrap_err(),
            ProtocolError::Closed
        ));
    }

    #[test]
    fn corrupt_frame_is_checksum_error() {
        let payload = encode_request(1, &Request::ListTenants);
        let mut buf = Vec::new();
        write_frame(&mut buf, &payload).unwrap();
        let last = buf.len() - 1;
        buf[last] ^= 0x40;
        assert!(matches!(
            read_frame(&mut &buf[..]).unwrap_err(),
            ProtocolError::Checksum
        ));
    }

    #[test]
    fn oversized_header_rejected_without_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME + 1).to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        assert!(matches!(
            read_frame(&mut &buf[..]).unwrap_err(),
            ProtocolError::Oversized { .. }
        ));
    }

    #[test]
    fn scratch_reuses_one_allocation_across_frames() {
        let mut buf = Vec::new();
        for i in 0..4u64 {
            write_frame(&mut buf, &encode_request(i, &Request::ListTenants)).unwrap();
        }
        let mut scratch = FrameScratch::new();
        let mut r = &buf[..];
        let mut caps = Vec::new();
        for i in 0..4u64 {
            let payload = read_frame_into(&mut r, &mut scratch).unwrap();
            let (id, req) = decode_request(payload).unwrap();
            assert_eq!((id, req), (i, Request::ListTenants));
            caps.push(scratch.capacity());
        }
        assert!(
            caps.windows(2).all(|w| w[0] == w[1]),
            "no regrowth: {caps:?}"
        );
        assert!(matches!(
            read_frame_into(&mut r, &mut scratch).unwrap_err(),
            ProtocolError::Closed
        ));
    }

    #[test]
    fn scratch_evicts_after_oversized_frame() {
        let big = Request::RegisterRule {
            tenant: "t".into(),
            source: "x".repeat(2 * SCRATCH_EVICT),
        };
        let mut buf = Vec::new();
        write_frame(&mut buf, &encode_request(1, &big)).unwrap();
        write_frame(&mut buf, &encode_request(2, &Request::ListTenants)).unwrap();
        let mut scratch = FrameScratch::new();
        let mut r = &buf[..];
        read_frame_into(&mut r, &mut scratch).unwrap();
        assert!(scratch.capacity() > SCRATCH_EVICT);
        read_frame_into(&mut r, &mut scratch).unwrap();
        assert!(
            scratch.capacity() <= SCRATCH_EVICT,
            "capacity {} still pinned",
            scratch.capacity()
        );
    }

    #[test]
    fn assembler_reassembles_byte_at_a_time() {
        let mut stream = Vec::new();
        for i in 0..3u64 {
            write_frame(
                &mut stream,
                &encode_request(i, &Request::Hello { version: 1 }),
            )
            .unwrap();
        }
        let mut asm = FrameAssembler::new();
        let mut got = Vec::new();
        for b in &stream {
            asm.ingest(std::slice::from_ref(b));
            while let Some(payload) = asm.next_frame().unwrap() {
                got.push(decode_request(payload).unwrap().0);
            }
        }
        assert_eq!(got, vec![0, 1, 2]);
        assert_eq!(asm.buffered(), 0);
    }

    #[test]
    fn assembler_surfaces_corruption_and_oversize() {
        let mut stream = Vec::new();
        write_frame(&mut stream, &encode_request(1, &Request::ListTenants)).unwrap();
        let last = stream.len() - 1;
        stream[last] ^= 0x01;
        let mut asm = FrameAssembler::new();
        asm.ingest(&stream);
        assert!(matches!(
            asm.next_frame().unwrap_err(),
            ProtocolError::Checksum
        ));

        let mut asm = FrameAssembler::new();
        let mut head = Vec::new();
        head.extend_from_slice(&(MAX_FRAME + 1).to_le_bytes());
        head.extend_from_slice(&0u32.to_le_bytes());
        asm.ingest(&head);
        assert!(matches!(
            asm.next_frame().unwrap_err(),
            ProtocolError::Oversized { .. }
        ));
    }

    #[test]
    fn vt_messages_roundtrip() {
        let reqs = vec![
            Request::CommitAt {
                tenant: "vt".into(),
                arrival: Timestamp(12),
                valid: Timestamp(9),
                ops: vec![WriteOp::SetItem {
                    item: "level".into(),
                    value: Value::Int(11),
                }],
            },
            Request::CreateVtTenant {
                name: "vt".into(),
                durable: true,
                max_delay: 5,
            },
        ];
        for req in reqs {
            let payload = encode_request(3, &req);
            assert_eq!(decode_request(&payload).unwrap(), (3, req));
        }
        let record = FiringRecord {
            rule: "spike".into(),
            state_index: 4,
            time: Timestamp(9),
            env: [("x".to_string(), Value::Int(1))].into_iter().collect(),
        };
        let resps = vec![
            Response::VtFiring {
                event: VtFiringEvent {
                    phase: VtPhase::Retracted,
                    record: record.clone(),
                },
            },
            Response::VtCommitted {
                watermark: Timestamp(7),
                events: vec![
                    VtFiringEvent {
                        phase: VtPhase::Tentative,
                        record: record.clone(),
                    },
                    VtFiringEvent {
                        phase: VtPhase::Confirmed,
                        record,
                    },
                ],
            },
        ];
        for resp in resps {
            let payload = encode_response(8, &resp);
            assert_eq!(decode_response(&payload).unwrap(), (8, resp));
        }
    }

    #[test]
    fn trailing_garbage_is_decode_error() {
        let mut payload = encode_request(1, &Request::ListTenants);
        payload.push(0);
        assert!(matches!(
            decode_request(&payload).unwrap_err(),
            ProtocolError::Decode(_)
        ));
    }
}
