//! One tenant: a [`Shard`] plus its durability root and rule-source store.
//!
//! Rules cross the wire as rule-file *text* (the `tdb-analysis` format) —
//! core actions can embed host closures (`Action::Program`), which cannot
//! be serialized, so the wire speaks the closed textual subset and
//! [`rule_from_parsed`] maps it onto core rules:
//!
//! * `abort` (alone) → [`Rule::constraint`] — the paper's integrity
//!   constraint desugaring;
//! * `set` / `insert` / `delete` → [`Action::DbOps`];
//! * `notify` → [`Action::Notify`] (and is implied when combined with
//!   database operations — every firing is recorded regardless);
//! * `signal` / `program` → a typed `Unsupported` error: the wire cannot
//!   ship a host program, and signaling foreign events from actions is not
//!   part of the server's execution model.
//!
//! A durable tenant owns one directory: the WAL + checkpoints managed by
//! [`FileStorage`], plus `rules.tdbr` — an append-only file of every rule
//! source ever registered. The source is appended and synced *before* the
//! `AddRule` op reaches the WAL, so recovery can always rebuild a catalog
//! that is a superset of the ops it will replay (a crash between the two
//! leaves an unused catalog entry, never a dangling `AddRule`).

use std::io::Write as _;
use std::path::{Path, PathBuf};

use tdb_analysis::{parse_rule_file_full, ParsedAction, ParsedRule};
use tdb_core::manager::ManagerConfig;
use tdb_core::rules::{Action, ActionOp, Rule};
use tdb_core::shard::{ApplyOutcome, Shard, ShardStats};
use tdb_core::storage::LogicalOp;
use tdb_relation::{parse_query, Relation, Value};
use tdb_storage::{CheckpointPolicy, FileStorage, RecoveryReport};

use crate::wire::ErrorCode;
use crate::{Result, ServerError};

/// File (inside a durable tenant's directory) accumulating registered rule
/// sources, one newline-separated block per registration.
pub const RULES_FILE: &str = "rules.tdbr";

/// Maps one parsed rule onto a core [`Rule`]. See the module docs for the
/// action mapping.
pub fn rule_from_parsed(p: &ParsedRule) -> Result<Rule> {
    let name = &p.input.name;
    let mut ops: Vec<ActionOp> = Vec::new();
    let mut abort = false;
    let mut notify = false;
    for a in &p.actions {
        match a {
            ParsedAction::Set { item, value } => ops.push(ActionOp::SetItem {
                item: item.clone(),
                value: value.clone(),
            }),
            ParsedAction::Insert { relation, tuple } => ops.push(ActionOp::Insert {
                relation: relation.clone(),
                tuple: tuple.clone(),
            }),
            ParsedAction::Delete { relation, tuple } => ops.push(ActionOp::Delete {
                relation: relation.clone(),
                tuple: tuple.clone(),
            }),
            ParsedAction::Notify => notify = true,
            ParsedAction::Abort => abort = true,
            ParsedAction::Signal { event } => {
                return Err(ServerError::Remote {
                    code: ErrorCode::Unsupported,
                    message: format!(
                        "rule `{name}`: `signal {event}` is not executable over the wire"
                    ),
                });
            }
            ParsedAction::Program { name: prog } => {
                return Err(ServerError::Remote {
                    code: ErrorCode::Unsupported,
                    message: format!(
                        "rule `{name}`: `program {prog}` embeds a host closure and cannot \
                         be shipped over the wire"
                    ),
                });
            }
        }
    }
    if abort {
        if !ops.is_empty() || notify {
            return Err(ServerError::Remote {
                code: ErrorCode::Unsupported,
                message: format!(
                    "rule `{name}`: `abort` makes the rule an integrity constraint and \
                     cannot be combined with other actions"
                ),
            });
        }
        return Ok(Rule::constraint(name.clone(), p.input.condition.clone()));
    }
    let action = if ops.is_empty() {
        Action::Notify
    } else {
        Action::DbOps(ops)
    };
    Ok(Rule::trigger(name.clone(), p.input.condition.clone(), action).recording_executed())
}

/// Parses rule-file text into core rules, rejecting unsupported actions.
pub fn rules_from_source(source: &str) -> Result<Vec<Rule>> {
    let parsed = parse_rule_file_full(source).map_err(|e| ServerError::Remote {
        code: ErrorCode::Parse,
        message: e.to_string(),
    })?;
    parsed.rules.iter().map(rule_from_parsed).collect()
}

/// One tenant: shard + (for durable tenants) its directory.
#[derive(Debug)]
pub struct Tenant {
    name: String,
    shard: Shard,
    /// `Some` for durable tenants: the directory holding WAL segments,
    /// checkpoints and `rules.tdbr`.
    dir: Option<PathBuf>,
    /// How the tenant came back, when it was recovered from disk.
    pub recovery: Option<RecoveryReport>,
}

impl Tenant {
    /// A fresh in-memory tenant.
    pub fn volatile(name: impl Into<String>, cfg: ManagerConfig) -> Tenant {
        Tenant {
            name: name.into(),
            shard: Shard::volatile(tdb_relation::Database::new(), cfg),
            dir: None,
            recovery: None,
        }
    }

    /// Creates a durable tenant under `dir` (which must not already hold
    /// one) — or, when `dir` contains a previous incarnation, recovers it:
    /// re-parses `rules.tdbr` into the catalog, replays checkpoint + WAL,
    /// and resumes appending.
    pub fn durable(
        name: impl Into<String>,
        dir: &Path,
        cfg: ManagerConfig,
        policy: CheckpointPolicy,
    ) -> Result<Tenant> {
        let name = name.into();
        let rules_path = dir.join(RULES_FILE);
        if rules_path.exists() {
            return Tenant::reopen(name, dir, cfg, policy);
        }
        std::fs::create_dir_all(dir).map_err(|e| storage_err(dir, e))?;
        let storage = FileStorage::create(dir, policy)
            .map_err(|e| ServerError::Storage(format!("{}: {e}", dir.display())))?;
        std::fs::write(&rules_path, b"").map_err(|e| storage_err(dir, e))?;
        let shard = Shard::durable(tdb_relation::Database::new(), cfg, Box::new(storage))?;
        Ok(Tenant {
            name,
            shard,
            dir: Some(dir.to_path_buf()),
            recovery: None,
        })
    }

    fn reopen(
        name: String,
        dir: &Path,
        cfg: ManagerConfig,
        policy: CheckpointPolicy,
    ) -> Result<Tenant> {
        let source =
            std::fs::read_to_string(dir.join(RULES_FILE)).map_err(|e| storage_err(dir, e))?;
        // The persisted catalog may be a superset of the replayed `AddRule`
        // ops (crash between rule-file sync and WAL append) — that is fine:
        // recovery resolves ops against it by name.
        let catalog = rules_from_source(&source)?;
        let recovered = tdb_storage::recover_durable(dir, &catalog, cfg, policy)
            .map_err(|e| ServerError::Storage(format!("{}: {e}", dir.display())))?;
        Ok(Tenant {
            name,
            shard: Shard::new(recovered.adb, catalog),
            dir: Some(dir.to_path_buf()),
            recovery: Some(recovered.report),
        })
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn durable_dir(&self) -> Option<&Path> {
        self.dir.as_deref()
    }

    pub fn shard(&self) -> &Shard {
        &self.shard
    }

    pub fn shard_mut(&mut self) -> &mut Shard {
        &mut self.shard
    }

    /// Registers every rule in `source`, returning the registered names and
    /// any lint findings recorded for them (rendered as text). For durable
    /// tenants the source is appended to `rules.tdbr` and synced *before*
    /// the first registration logs its `AddRule`.
    pub fn register_rules(&mut self, source: &str) -> Result<(Vec<String>, Vec<String>)> {
        let rules = rules_from_source(source)?;
        if rules.is_empty() {
            return Err(ServerError::Remote {
                code: ErrorCode::Parse,
                message: "rule source contains no rules".into(),
            });
        }
        if let Some(dir) = &self.dir {
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(dir.join(RULES_FILE))
                .map_err(|e| storage_err(dir, e))?;
            f.write_all(source.as_bytes())
                .and_then(|()| f.write_all(b"\n"))
                .and_then(|()| f.sync_all())
                .map_err(|e| storage_err(dir, e))?;
        }
        let findings_before = self.shard.adb().lint_findings().len();
        let mut registered = Vec::with_capacity(rules.len());
        for rule in rules {
            let name = rule.name.clone();
            self.shard.add_rule(rule).map_err(|e| match e {
                tdb_core::CoreError::LintDenied { .. } => ServerError::Remote {
                    code: ErrorCode::Lint,
                    message: e.to_string(),
                },
                other => ServerError::Core(other),
            })?;
            registered.push(name);
        }
        let mut findings: Vec<String> = self.shard.adb().lint_findings()[findings_before..]
            .iter()
            .map(|d| d.to_string())
            .collect();
        // Every registration re-certifies batch safety for the whole rule
        // set; report the post-registration certificate with the findings so
        // clients learn what group commits may fuse.
        findings.push(format!(
            "batch-safety: {}",
            self.shard.adb().batch_certificate()
        ));
        Ok((registered, findings))
    }

    /// The tenant's current batch-safety certificate.
    pub fn batch_certificate(&self) -> tdb_core::BatchCertificate {
        self.shard.adb().batch_certificate()
    }

    /// Applies one logical op (see [`Shard::apply`]).
    pub fn apply(&mut self, op: &LogicalOp) -> Result<ApplyOutcome> {
        self.shard.apply(op).map_err(ServerError::Core)
    }

    /// Applies `ops` as one atomic group commit (see [`Shard::apply_batch`]):
    /// one WAL record, one fsync, one evaluation slice. Returns one outcome
    /// per op, firings attributed to the op whose state produced them.
    pub fn apply_batch(&mut self, ops: &[LogicalOp]) -> Result<Vec<ApplyOutcome>> {
        self.shard.apply_batch(ops).map_err(ServerError::Core)
    }

    /// Evaluates ad-hoc query text against the tenant's current database.
    pub fn query(&self, text: &str, params: &[Value]) -> Result<Relation> {
        let q = parse_query(text).map_err(|e| ServerError::Remote {
            code: ErrorCode::Parse,
            message: e.to_string(),
        })?;
        q.eval(self.shard.adb().db(), params)
            .map_err(|e| ServerError::Remote {
                code: ErrorCode::Internal,
                message: e.to_string(),
            })
    }

    /// Total bytes under the tenant's durable directory (0 when volatile).
    pub fn wal_bytes(&self) -> u64 {
        let Some(dir) = &self.dir else { return 0 };
        let Ok(entries) = std::fs::read_dir(dir) else {
            return 0;
        };
        entries
            .flatten()
            .filter_map(|e| e.metadata().ok())
            .filter(|m| m.is_file())
            .map(|m| m.len())
            .sum()
    }

    pub fn stats(&self) -> ShardStats {
        self.shard.stats()
    }
}

fn storage_err(dir: &Path, e: std::io::Error) -> ServerError {
    ServerError::Storage(format!("{}: {e}", dir.display()))
}

#[cfg(test)]
#[allow(clippy::disallowed_methods)] // tests may unwrap
mod tests {
    use super::*;
    use tdb_core::rules::RuleKind;
    use tdb_engine::WriteOp;

    const SRC: &str = "rule watch { when n() >= 5; then notify; }\n\
                       rule cap { when n() <= 10; then abort; }\n";

    fn seed_ops() -> Vec<LogicalOp> {
        vec![
            LogicalOp::SetItem {
                name: "n".into(),
                value: Value::Int(0),
            },
            LogicalOp::DefineQuery {
                name: "n".into(),
                def: tdb_relation::QueryDef::new(0, parse_query("item n").unwrap()),
            },
        ]
    }

    #[test]
    fn maps_actions_onto_core_rules() {
        let rules = rules_from_source(SRC).unwrap();
        assert_eq!(rules[0].kind, RuleKind::Trigger);
        assert!(matches!(rules[0].action, Action::Notify));
        assert_eq!(rules[1].kind, RuleKind::Constraint);

        let dbops =
            rules_from_source("rule r { when n() > 0; then set m := n() + 1, insert log(time); }")
                .unwrap();
        match &dbops[0].action {
            Action::DbOps(ops) => assert_eq!(ops.len(), 2),
            other => panic!("expected DbOps, got {other:?}"),
        }
    }

    #[test]
    fn unsupported_actions_are_typed_errors() {
        for (src, frag) in [
            ("rule r { when true; then program p; }", "program"),
            ("rule r { when true; then signal s; }", "signal"),
            ("rule r { when true; then notify, abort; }", "abort"),
        ] {
            match rules_from_source(src).unwrap_err() {
                ServerError::Remote { code, message } => {
                    assert_eq!(code, ErrorCode::Unsupported, "{message}");
                    assert!(message.contains(frag), "{message}");
                }
                other => panic!("expected remote error, got {other}"),
            }
        }
    }

    #[test]
    fn durable_tenant_recovers_rules_and_firings() {
        let dir = std::env::temp_dir().join(format!("tdb-tenant-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let policy = CheckpointPolicy {
            sync: tdb_core::SyncPolicy::Always,
            ..Default::default()
        };

        let mut t = Tenant::durable("acme", &dir, ManagerConfig::default(), policy).unwrap();
        for op in seed_ops() {
            assert!(t.apply(&op).unwrap().ok());
        }
        let (names, _) = t.register_rules(SRC).unwrap();
        assert_eq!(names, vec!["watch".to_string(), "cap".to_string()]);
        t.apply(&LogicalOp::AdvanceClock { delta: 1 }).unwrap();
        let out = t
            .apply(&LogicalOp::Update {
                ops: vec![WriteOp::SetItem {
                    item: "n".into(),
                    value: Value::Int(7),
                }],
            })
            .unwrap();
        assert_eq!(out.firings.len(), 1);
        let firings = t.shard().firings_from(0);
        assert!(t.wal_bytes() > 0);
        drop(t);

        let t2 = Tenant::durable("acme", &dir, ManagerConfig::default(), policy).unwrap();
        assert!(t2.recovery.is_some());
        assert_eq!(t2.shard().catalog().len(), 2);
        assert_eq!(t2.shard().firings_from(0), firings);
        assert_eq!(
            t2.query("item n", &[]).unwrap(),
            Relation::scalar(Value::Int(7))
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
