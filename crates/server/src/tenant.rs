//! One tenant: a [`Shard`] plus its durability root and rule-source store.
//!
//! Rules cross the wire as rule-file *text* (the `tdb-analysis` format) —
//! core actions can embed host closures (`Action::Program`), which cannot
//! be serialized, so the wire speaks the closed textual subset and
//! [`rule_from_parsed`] maps it onto core rules:
//!
//! * `abort` (alone) → [`Rule::constraint`] — the paper's integrity
//!   constraint desugaring;
//! * `set` / `insert` / `delete` → [`Action::DbOps`];
//! * `notify` → [`Action::Notify`] (and is implied when combined with
//!   database operations — every firing is recorded regardless);
//! * `signal` / `program` → a typed `Unsupported` error: the wire cannot
//!   ship a host program, and signaling foreign events from actions is not
//!   part of the server's execution model.
//!
//! A durable tenant owns one directory: the WAL + checkpoints managed by
//! [`FileStorage`], plus `rules.tdbr` — an append-only file of every rule
//! source ever registered. The source is appended and synced *before* the
//! `AddRule` op reaches the WAL, so recovery can always rebuild a catalog
//! that is a superset of the ops it will replay (a crash between the two
//! leaves an unused catalog entry, never a dangling `AddRule`).

use std::io::Write as _;
use std::path::{Path, PathBuf};

use tdb_analysis::{parse_rule_file_full, ParsedAction, ParsedRule};
use tdb_core::manager::ManagerConfig;
use tdb_core::rules::{Action, ActionOp, FiringRecord, Rule};
use tdb_core::shard::{ApplyOutcome, Shard, ShardStats};
use tdb_core::storage::LogicalOp;
use tdb_core::{SyncPolicy, VtFiringEvent};
use tdb_engine::WriteOp;
use tdb_relation::{parse_query, Relation, Timestamp, Value};
use tdb_storage::{CheckpointPolicy, FileStorage, RecoveryReport};

use crate::vtshard::{VtShard, VT_META_FILE};
use crate::wire::ErrorCode;
use crate::{Result, ServerError};

/// File (inside a durable tenant's directory) accumulating registered rule
/// sources, one newline-separated block per registration.
pub const RULES_FILE: &str = "rules.tdbr";

/// Maps one parsed rule onto a core [`Rule`]. See the module docs for the
/// action mapping.
pub fn rule_from_parsed(p: &ParsedRule) -> Result<Rule> {
    let name = &p.input.name;
    let mut ops: Vec<ActionOp> = Vec::new();
    let mut abort = false;
    let mut notify = false;
    for a in &p.actions {
        match a {
            ParsedAction::Set { item, value } => ops.push(ActionOp::SetItem {
                item: item.clone(),
                value: value.clone(),
            }),
            ParsedAction::Insert { relation, tuple } => ops.push(ActionOp::Insert {
                relation: relation.clone(),
                tuple: tuple.clone(),
            }),
            ParsedAction::Delete { relation, tuple } => ops.push(ActionOp::Delete {
                relation: relation.clone(),
                tuple: tuple.clone(),
            }),
            ParsedAction::Notify => notify = true,
            ParsedAction::Abort => abort = true,
            ParsedAction::Signal { event } => {
                return Err(ServerError::Remote {
                    code: ErrorCode::Unsupported,
                    message: format!(
                        "rule `{name}`: `signal {event}` is not executable over the wire"
                    ),
                });
            }
            ParsedAction::Program { name: prog } => {
                return Err(ServerError::Remote {
                    code: ErrorCode::Unsupported,
                    message: format!(
                        "rule `{name}`: `program {prog}` embeds a host closure and cannot \
                         be shipped over the wire"
                    ),
                });
            }
        }
    }
    if abort {
        if !ops.is_empty() || notify {
            return Err(ServerError::Remote {
                code: ErrorCode::Unsupported,
                message: format!(
                    "rule `{name}`: `abort` makes the rule an integrity constraint and \
                     cannot be combined with other actions"
                ),
            });
        }
        return Ok(Rule::constraint(name.clone(), p.input.condition.clone()));
    }
    let action = if ops.is_empty() {
        Action::Notify
    } else {
        Action::DbOps(ops)
    };
    Ok(Rule::trigger(name.clone(), p.input.condition.clone(), action).recording_executed())
}

/// Parses rule-file text into core rules, rejecting unsupported actions.
pub fn rules_from_source(source: &str) -> Result<Vec<Rule>> {
    let parsed = parse_rule_file_full(source).map_err(|e| ServerError::Remote {
        code: ErrorCode::Parse,
        message: e.to_string(),
    })?;
    parsed.rules.iter().map(rule_from_parsed).collect()
}

/// Which execution model backs a tenant: the transaction-time [`Shard`]
/// (checkpointed WAL, in-order commits) or the valid-time [`VtShard`]
/// (watermarked out-of-order stream ingest).
// Tenants are few and map-owned; the Plain/Vt size gap is not worth a
// double indirection on every request dispatch.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
enum Backend {
    Plain(Shard),
    Vt(VtShard),
}

/// One tenant: shard + (for durable tenants) its directory.
#[derive(Debug)]
pub struct Tenant {
    name: String,
    backend: Backend,
    /// `Some` for durable tenants: the directory holding WAL segments,
    /// checkpoints and `rules.tdbr`.
    dir: Option<PathBuf>,
    /// How the tenant came back, when it was recovered from disk.
    pub recovery: Option<RecoveryReport>,
}

impl Tenant {
    /// A fresh in-memory tenant.
    pub fn volatile(name: impl Into<String>, cfg: ManagerConfig) -> Tenant {
        Tenant {
            name: name.into(),
            backend: Backend::Plain(Shard::volatile(tdb_relation::Database::new(), cfg)),
            dir: None,
            recovery: None,
        }
    }

    /// A fresh in-memory *valid-time* tenant with disorder bound Δ.
    pub fn volatile_vt(name: impl Into<String>, max_delay: i64) -> Tenant {
        Tenant {
            name: name.into(),
            backend: Backend::Vt(VtShard::volatile(max_delay)),
            dir: None,
            recovery: None,
        }
    }

    /// Creates a durable tenant under `dir` (which must not already hold
    /// one) — or, when `dir` contains a previous incarnation, recovers it:
    /// re-parses `rules.tdbr` into the catalog, replays checkpoint + WAL,
    /// and resumes appending. A directory marked by `vt.meta` reopens as a
    /// valid-time tenant (the kind is a property of the data, not of the
    /// request that happened to trigger the reopen).
    pub fn durable(
        name: impl Into<String>,
        dir: &Path,
        cfg: ManagerConfig,
        policy: CheckpointPolicy,
    ) -> Result<Tenant> {
        let name = name.into();
        if dir.join(VT_META_FILE).exists() {
            // Δ comes from the marker file; the argument 0 is ignored.
            return Tenant::reopen_vt(name, dir, policy.sync);
        }
        let rules_path = dir.join(RULES_FILE);
        if rules_path.exists() {
            return Tenant::reopen(name, dir, cfg, policy);
        }
        std::fs::create_dir_all(dir).map_err(|e| storage_err(dir, e))?;
        let storage = FileStorage::create(dir, policy)
            .map_err(|e| ServerError::Storage(format!("{}: {e}", dir.display())))?;
        std::fs::write(&rules_path, b"").map_err(|e| storage_err(dir, e))?;
        let shard = Shard::durable(tdb_relation::Database::new(), cfg, Box::new(storage))?;
        Ok(Tenant {
            name,
            backend: Backend::Plain(shard),
            dir: Some(dir.to_path_buf()),
            recovery: None,
        })
    }

    /// Creates (or reopens) a durable *valid-time* tenant under `dir`.
    pub fn durable_vt(
        name: impl Into<String>,
        dir: &Path,
        max_delay: i64,
        sync: SyncPolicy,
    ) -> Result<Tenant> {
        Ok(Tenant {
            name: name.into(),
            backend: Backend::Vt(VtShard::durable(dir, max_delay, sync)?),
            dir: Some(dir.to_path_buf()),
            recovery: None,
        })
    }

    fn reopen_vt(name: String, dir: &Path, sync: SyncPolicy) -> Result<Tenant> {
        Ok(Tenant {
            name,
            backend: Backend::Vt(VtShard::durable(dir, 0, sync)?),
            dir: Some(dir.to_path_buf()),
            recovery: None,
        })
    }

    fn reopen(
        name: String,
        dir: &Path,
        cfg: ManagerConfig,
        policy: CheckpointPolicy,
    ) -> Result<Tenant> {
        let source =
            std::fs::read_to_string(dir.join(RULES_FILE)).map_err(|e| storage_err(dir, e))?;
        // The persisted catalog may be a superset of the replayed `AddRule`
        // ops (crash between rule-file sync and WAL append) — that is fine:
        // recovery resolves ops against it by name.
        let catalog = rules_from_source(&source)?;
        let recovered = tdb_storage::recover_durable(dir, &catalog, cfg, policy)
            .map_err(|e| ServerError::Storage(format!("{}: {e}", dir.display())))?;
        Ok(Tenant {
            name,
            backend: Backend::Plain(Shard::new(recovered.adb, catalog)),
            dir: Some(dir.to_path_buf()),
            recovery: Some(recovered.report),
        })
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn durable_dir(&self) -> Option<&Path> {
        self.dir.as_deref()
    }

    /// Whether this is a valid-time (watermarked stream) tenant.
    pub fn is_vt(&self) -> bool {
        matches!(self.backend, Backend::Vt(_))
    }

    /// The valid-time backend, when this is a valid-time tenant.
    pub fn vt(&self) -> Option<&VtShard> {
        match &self.backend {
            Backend::Vt(v) => Some(v),
            Backend::Plain(_) => None,
        }
    }

    /// The transaction-time shard. Panics on a valid-time tenant — callers
    /// on mixed paths must branch on [`Tenant::is_vt`] first.
    pub fn shard(&self) -> &Shard {
        match &self.backend {
            Backend::Plain(s) => s,
            Backend::Vt(_) => panic!("valid-time tenant has no transaction-time shard"),
        }
    }

    /// See [`Tenant::shard`].
    pub fn shard_mut(&mut self) -> &mut Shard {
        match &mut self.backend {
            Backend::Plain(s) => s,
            Backend::Vt(_) => panic!("valid-time tenant has no transaction-time shard"),
        }
    }

    /// Registers every rule in `source`, returning the registered names and
    /// any lint findings recorded for them (rendered as text). For durable
    /// tenants the source is appended to `rules.tdbr` and synced *before*
    /// the first registration logs its `AddRule`.
    pub fn register_rules(&mut self, source: &str) -> Result<(Vec<String>, Vec<String>)> {
        let rules = rules_from_source(source)?;
        if rules.is_empty() {
            return Err(ServerError::Remote {
                code: ErrorCode::Parse,
                message: "rule source contains no rules".into(),
            });
        }
        if let Some(dir) = &self.dir {
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(dir.join(RULES_FILE))
                .map_err(|e| storage_err(dir, e))?;
            f.write_all(source.as_bytes())
                .and_then(|()| f.write_all(b"\n"))
                .and_then(|()| f.sync_all())
                .map_err(|e| storage_err(dir, e))?;
        }
        match &mut self.backend {
            Backend::Vt(v) => {
                let registered = v.register_rules(rules)?;
                // Valid-time rules skip the transaction-time lint pass; the
                // stream's confirm/retract protocol is the safety story.
                let findings = vec![format!(
                    "valid-time: {} rule(s) registered as tentative stream rules (Δ = {})",
                    registered.len(),
                    v.max_delay()
                )];
                Ok((registered, findings))
            }
            Backend::Plain(shard) => {
                let findings_before = shard.adb().lint_findings().len();
                let mut registered = Vec::with_capacity(rules.len());
                for rule in rules {
                    let name = rule.name.clone();
                    shard.add_rule(rule).map_err(|e| match e {
                        tdb_core::CoreError::LintDenied { .. } => ServerError::Remote {
                            code: ErrorCode::Lint,
                            message: e.to_string(),
                        },
                        other => ServerError::Core(other),
                    })?;
                    registered.push(name);
                }
                let mut findings: Vec<String> = shard.adb().lint_findings()[findings_before..]
                    .iter()
                    .map(|d| d.to_string())
                    .collect();
                // Every registration re-certifies batch safety for the whole
                // rule set; report the post-registration certificate with the
                // findings so clients learn what group commits may fuse.
                findings.push(format!("batch-safety: {}", shard.adb().batch_certificate()));
                Ok((registered, findings))
            }
        }
    }

    /// The tenant's current batch-safety certificate. Valid-time commits
    /// are never certified for fused evaluation, so the coalescer keeps
    /// its window closed on vt tenants.
    pub fn batch_certificate(&self) -> tdb_core::BatchCertificate {
        match &self.backend {
            Backend::Plain(s) => s.adb().batch_certificate(),
            Backend::Vt(_) => tdb_core::BatchCertificate::CascadeRequired,
        }
    }

    /// Applies one logical op (see [`Shard::apply`]).
    pub fn apply(&mut self, op: &LogicalOp) -> Result<ApplyOutcome> {
        match &mut self.backend {
            Backend::Plain(s) => s.apply(op).map_err(ServerError::Core),
            Backend::Vt(v) => v.apply(op),
        }
    }

    /// Applies `ops` as one atomic group commit (see [`Shard::apply_batch`]):
    /// one WAL record, one fsync, one evaluation slice. Returns one outcome
    /// per op, firings attributed to the op whose state produced them.
    pub fn apply_batch(&mut self, ops: &[LogicalOp]) -> Result<Vec<ApplyOutcome>> {
        match &mut self.backend {
            Backend::Plain(s) => s.apply_batch(ops).map_err(ServerError::Core),
            Backend::Vt(v) => v.apply_batch(ops),
        }
    }

    /// The streaming ingest path (valid-time tenants only): clock to the
    /// arrival instant, ingest at the explicit valid time, return the new
    /// watermark plus the phase-tagged stream events.
    pub fn commit_at(
        &mut self,
        arrival: Timestamp,
        valid: Timestamp,
        ops: Vec<WriteOp>,
    ) -> Result<(Timestamp, Vec<VtFiringEvent>)> {
        match &mut self.backend {
            Backend::Vt(v) => v.commit_at(arrival, valid, ops),
            Backend::Plain(_) => Err(ServerError::Remote {
                code: ErrorCode::Unsupported,
                message: format!(
                    "tenant `{}` is not a valid-time tenant; CommitAt needs CreateVtTenant",
                    self.name
                ),
            }),
        }
    }

    /// The watermark `W = now − Δ`, when this is a valid-time tenant.
    pub fn watermark(&self) -> Option<Timestamp> {
        match &self.backend {
            Backend::Vt(v) => Some(v.watermark()),
            Backend::Plain(_) => None,
        }
    }

    /// Drains stream events buffered by generic applies on a valid-time
    /// tenant (empty on plain tenants).
    pub fn drain_vt_events(&mut self) -> Vec<VtFiringEvent> {
        match &mut self.backend {
            Backend::Vt(v) => v.drain_events(),
            Backend::Plain(_) => Vec::new(),
        }
    }

    /// The firing log from index `from`: executed triggers on plain
    /// tenants, the *confirmed* (definite) stream on valid-time tenants.
    pub fn firings_from(&self, from: usize) -> Vec<FiringRecord> {
        match &self.backend {
            Backend::Plain(s) => s.firings_from(from),
            Backend::Vt(v) => v.firings_from(from),
        }
    }

    /// Graceful-shutdown persistence: cut a checkpoint on a durable plain
    /// tenant, fsync the log on a durable valid-time one.
    pub fn checkpoint_now(&mut self) -> Result<()> {
        match &mut self.backend {
            Backend::Plain(s) => {
                if self.dir.is_some() {
                    s.adb_mut().checkpoint_now().map_err(ServerError::Core)?;
                }
                Ok(())
            }
            Backend::Vt(v) => v.sync(),
        }
    }

    /// Ops drained by batch-fence waits (always 0 on valid-time tenants —
    /// they have no fence machinery).
    pub fn batch_fence_drains(&self) -> u64 {
        match &self.backend {
            Backend::Plain(s) => s.adb().batch_fence_drains(),
            Backend::Vt(_) => 0,
        }
    }

    /// Evaluates ad-hoc query text against the tenant's current database.
    pub fn query(&self, text: &str, params: &[Value]) -> Result<Relation> {
        let db = match &self.backend {
            Backend::Plain(s) => s.adb().db(),
            Backend::Vt(_) => {
                return Err(ServerError::Remote {
                    code: ErrorCode::Unsupported,
                    message: format!(
                        "tenant `{}` is a valid-time tenant; ad-hoc queries over the \
                         versioned history are not served over the wire",
                        self.name
                    ),
                })
            }
        };
        let q = parse_query(text).map_err(|e| ServerError::Remote {
            code: ErrorCode::Parse,
            message: e.to_string(),
        })?;
        q.eval(db, params).map_err(|e| ServerError::Remote {
            code: ErrorCode::Internal,
            message: e.to_string(),
        })
    }

    /// Total bytes under the tenant's durable directory (0 when volatile).
    pub fn wal_bytes(&self) -> u64 {
        let Some(dir) = &self.dir else { return 0 };
        let Ok(entries) = std::fs::read_dir(dir) else {
            return 0;
        };
        entries
            .flatten()
            .filter_map(|e| e.metadata().ok())
            .filter(|m| m.is_file())
            .map(|m| m.len())
            .sum()
    }

    pub fn stats(&self) -> ShardStats {
        match &self.backend {
            Backend::Plain(s) => s.stats(),
            Backend::Vt(v) => v.stats(),
        }
    }
}

fn storage_err(dir: &Path, e: std::io::Error) -> ServerError {
    ServerError::Storage(format!("{}: {e}", dir.display()))
}

#[cfg(test)]
#[allow(clippy::disallowed_methods)] // tests may unwrap
mod tests {
    use super::*;
    use tdb_core::rules::RuleKind;
    use tdb_engine::WriteOp;

    const SRC: &str = "rule watch { when n() >= 5; then notify; }\n\
                       rule cap { when n() <= 10; then abort; }\n";

    fn seed_ops() -> Vec<LogicalOp> {
        vec![
            LogicalOp::SetItem {
                name: "n".into(),
                value: Value::Int(0),
            },
            LogicalOp::DefineQuery {
                name: "n".into(),
                def: tdb_relation::QueryDef::new(0, parse_query("item n").unwrap()),
            },
        ]
    }

    #[test]
    fn maps_actions_onto_core_rules() {
        let rules = rules_from_source(SRC).unwrap();
        assert_eq!(rules[0].kind, RuleKind::Trigger);
        assert!(matches!(rules[0].action, Action::Notify));
        assert_eq!(rules[1].kind, RuleKind::Constraint);

        let dbops =
            rules_from_source("rule r { when n() > 0; then set m := n() + 1, insert log(time); }")
                .unwrap();
        match &dbops[0].action {
            Action::DbOps(ops) => assert_eq!(ops.len(), 2),
            other => panic!("expected DbOps, got {other:?}"),
        }
    }

    #[test]
    fn unsupported_actions_are_typed_errors() {
        for (src, frag) in [
            ("rule r { when true; then program p; }", "program"),
            ("rule r { when true; then signal s; }", "signal"),
            ("rule r { when true; then notify, abort; }", "abort"),
        ] {
            match rules_from_source(src).unwrap_err() {
                ServerError::Remote { code, message } => {
                    assert_eq!(code, ErrorCode::Unsupported, "{message}");
                    assert!(message.contains(frag), "{message}");
                }
                other => panic!("expected remote error, got {other}"),
            }
        }
    }

    #[test]
    fn durable_tenant_recovers_rules_and_firings() {
        let dir = std::env::temp_dir().join(format!("tdb-tenant-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let policy = CheckpointPolicy {
            sync: tdb_core::SyncPolicy::Always,
            ..Default::default()
        };

        let mut t = Tenant::durable("acme", &dir, ManagerConfig::default(), policy).unwrap();
        for op in seed_ops() {
            assert!(t.apply(&op).unwrap().ok());
        }
        let (names, _) = t.register_rules(SRC).unwrap();
        assert_eq!(names, vec!["watch".to_string(), "cap".to_string()]);
        t.apply(&LogicalOp::AdvanceClock { delta: 1 }).unwrap();
        let out = t
            .apply(&LogicalOp::Update {
                ops: vec![WriteOp::SetItem {
                    item: "n".into(),
                    value: Value::Int(7),
                }],
            })
            .unwrap();
        assert_eq!(out.firings.len(), 1);
        let firings = t.shard().firings_from(0);
        assert!(t.wal_bytes() > 0);
        drop(t);

        let t2 = Tenant::durable("acme", &dir, ManagerConfig::default(), policy).unwrap();
        assert!(t2.recovery.is_some());
        assert_eq!(t2.shard().catalog().len(), 2);
        assert_eq!(t2.shard().firings_from(0), firings);
        assert_eq!(
            t2.query("item n", &[]).unwrap(),
            Relation::scalar(Value::Int(7))
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
