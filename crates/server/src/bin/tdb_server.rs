//! The tdb-server daemon.
//!
//! ```text
//! tdb-server [--addr HOST:PORT] [--workers N] [--data-dir DIR]
//!            [--lint allow|warn|deny] [--no-sync]
//!            [--conn-mode poll|thread] [--coalesce-window USEC]
//!            [--max-delay TICKS] [--no-adaptive] [--no-rebalance] [--quiet]
//! ```
//!
//! Prints `listening on <addr>` (the resolved address — port 0 works) once
//! the listener is up and every durable tenant under `--data-dir` has been
//! recovered, then serves until a client sends `Shutdown` (durable tenants
//! are checkpointed on the way out).

use std::process::ExitCode;

use tdb_analysis::LintLevel;
use tdb_server::{ConnMode, Server, ServerConfig};

fn usage() -> ! {
    eprintln!(
        "usage: tdb-server [--addr HOST:PORT] [--workers N] [--data-dir DIR] \
         [--lint allow|warn|deny] [--no-sync] [--conn-mode poll|thread] \
         [--coalesce-window USEC] [--max-delay TICKS] [--no-adaptive] \
         [--no-rebalance] [--quiet]"
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut cfg = ServerConfig::default();
    let mut quiet = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |what: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{arg} needs a {what}");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--addr" => cfg.addr = value("host:port"),
            "--workers" => match value("count").parse() {
                Ok(n) if n > 0 => cfg.workers = n,
                _ => usage(),
            },
            "--data-dir" => cfg.data_dir = Some(value("directory").into()),
            "--lint" => {
                cfg.lint = match value("level").as_str() {
                    "allow" => LintLevel::Allow,
                    "warn" => LintLevel::Warn,
                    "deny" => LintLevel::Deny,
                    _ => usage(),
                }
            }
            "--no-sync" => cfg.checkpoint.sync = tdb_core::SyncPolicy::Never,
            "--conn-mode" => {
                cfg.conn_mode = match value("mode").as_str() {
                    "poll" => ConnMode::Poll,
                    "thread" => ConnMode::Thread,
                    _ => usage(),
                }
            }
            // A fixed window disables the adaptive coalescer (manual
            // override); 0 restores the adaptive default.
            "--coalesce-window" => match value("microseconds").parse() {
                Ok(us) => cfg.coalesce_window_us = us,
                Err(_) => usage(),
            },
            // Default disorder bound Δ for valid-time tenants created
            // without an explicit one (watermark W = now − Δ).
            "--max-delay" => match value("ticks").parse() {
                Ok(d) if d >= 0 => cfg.max_delay = d,
                _ => usage(),
            },
            "--no-adaptive" => cfg.adaptive_coalesce = false,
            "--no-rebalance" => cfg.rebalance = false,
            "--quiet" => quiet = true,
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }

    tdb_obs::set_enabled(true);
    let handle = match Server::start(cfg) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("tdb-server: {e}");
            return ExitCode::FAILURE;
        }
    };
    // The smoke script and the crash-recovery test parse this line.
    println!("listening on {}", handle.addr());
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    if !quiet {
        eprintln!("tdb-server: ready (send Shutdown to stop)");
    }
    handle.wait();
    handle.stop();
    ExitCode::SUCCESS
}
