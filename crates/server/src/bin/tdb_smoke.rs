//! Multi-tenant smoke driver for a running tdb-server (used by CI).
//!
//! ```text
//! tdb-smoke --addr HOST:PORT [--tenants N] [--commits K]
//! ```
//!
//! One thread per tenant, each on its own connection: create the tenant,
//! register a watch rule and a cap constraint, subscribe to firings, drive
//! `K` commits, then check (a) every expected firing arrived both in the
//! commit responses and on the subscription stream, (b) the final queried
//! value is right, (c) the constraint vetoed the out-of-range op, and
//! (d) the metrics exposition carries the server families. Exits non-zero
//! on any mismatch.

use std::process::ExitCode;

use tdb_core::storage::LogicalOp;
use tdb_engine::WriteOp;
use tdb_relation::{parse_query, QueryDef, Relation, Value};
use tdb_server::wire::MetricsFormat;
use tdb_server::Client;

const RULES: &str = "rule watch { when n() >= 5; then notify; }\n\
                     rule cap { when n() <= 100; then abort; }\n";

fn drive(addr: &str, tenant: &str, commits: i64) -> Result<usize, String> {
    let e =
        |what: &'static str| move |err: tdb_server::ServerError| format!("{tenant}: {what}: {err}");
    let mut c = Client::connect(addr).map_err(e("connect"))?;
    c.create_tenant(tenant, false).map_err(e("create"))?;
    let seed = c
        .commit(
            tenant,
            vec![
                LogicalOp::SetItem {
                    name: "n".into(),
                    value: Value::Int(0),
                },
                LogicalOp::DefineQuery {
                    name: "n".into(),
                    def: QueryDef::new(0, parse_query("item n").map_err(|e| e.to_string())?),
                },
            ],
        )
        .map_err(e("seed"))?;
    if !seed.all_ok() {
        return Err(format!("{tenant}: seed ops rejected: {:?}", seed.outcomes));
    }
    let (names, _) = c.register_rules(tenant, RULES).map_err(e("register"))?;
    if names != ["watch", "cap"] {
        return Err(format!("{tenant}: registered {names:?}"));
    }
    let sub = c.subscribe(tenant).map_err(e("subscribe"))?;

    let mut expected_firings = 0usize;
    for i in 1..=commits {
        let out = c
            .commit(
                tenant,
                vec![
                    LogicalOp::AdvanceClock { delta: 1 },
                    LogicalOp::Update {
                        ops: vec![WriteOp::SetItem {
                            item: "n".into(),
                            value: Value::Int(i),
                        }],
                    },
                ],
            )
            .map_err(e("commit"))?;
        if !out.all_ok() {
            return Err(format!("{tenant}: commit {i} rejected: {:?}", out.outcomes));
        }
        // `watch` is edge-triggered: it fires once, when n first reaches 5.
        if i == 5 {
            expected_firings += 1;
            if out.firings.len() != 1 || out.firings[0].rule != "watch" {
                return Err(format!("{tenant}: commit {i} firings {:?}", out.firings));
            }
        } else if !out.firings.is_empty() {
            return Err(format!("{tenant}: unexpected firings at {i}"));
        }
    }

    // The cap constraint vetoes an out-of-range write: op-level Err, value
    // unchanged.
    let veto = c
        .commit(
            tenant,
            vec![
                LogicalOp::AdvanceClock { delta: 1 },
                LogicalOp::Update {
                    ops: vec![WriteOp::SetItem {
                        item: "n".into(),
                        value: Value::Int(500),
                    }],
                },
            ],
        )
        .map_err(e("veto commit"))?;
    if veto.outcomes[1].is_ok() {
        return Err(format!("{tenant}: constraint did not veto"));
    }

    let rel = c.query(tenant, "item n", vec![]).map_err(e("query"))?;
    if rel != Relation::scalar(Value::Int(commits)) {
        return Err(format!("{tenant}: final value {rel:?}, wanted {commits}"));
    }

    // Every expected firing must also have been streamed to the
    // subscription (plus the constraint firing from the veto).
    c.set_read_timeout(Some(std::time::Duration::from_secs(10)))
        .map_err(e("timeout"))?;
    let mut streamed = 0usize;
    for _ in 0..expected_firings {
        let (id, rec) = c.recv_firing().map_err(e("recv_firing"))?;
        if id != sub || rec.rule != "watch" {
            return Err(format!("{tenant}: streamed ({id}, {})", rec.rule));
        }
        streamed += 1;
    }
    let (_, cap_rec) = c.recv_firing().map_err(e("recv cap firing"))?;
    if cap_rec.rule != "cap" {
        return Err(format!(
            "{tenant}: expected cap firing, got {}",
            cap_rec.rule
        ));
    }

    let stats = c.tenant_stats(tenant).map_err(e("stats"))?;
    if stats.rules != 2 || stats.firings == 0 {
        return Err(format!("{tenant}: stats {stats:?}"));
    }
    Ok(streamed)
}

fn main() -> ExitCode {
    let mut addr = String::new();
    let mut tenants = 4usize;
    let mut commits = 8i64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = || {
            args.next().unwrap_or_else(|| {
                eprintln!("missing value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--addr" => addr = value(),
            "--tenants" => tenants = value().parse().unwrap_or(4),
            "--commits" => commits = value().parse().unwrap_or(8).max(6),
            _ => {
                eprintln!("usage: tdb-smoke --addr HOST:PORT [--tenants N] [--commits K]");
                return ExitCode::from(2);
            }
        }
    }
    if addr.is_empty() {
        eprintln!("usage: tdb-smoke --addr HOST:PORT [--tenants N] [--commits K]");
        return ExitCode::from(2);
    }

    let handles: Vec<_> = (0..tenants)
        .map(|i| {
            let addr = addr.clone();
            std::thread::spawn(move || drive(&addr, &format!("smoke-{i}"), commits))
        })
        .collect();
    let mut failures = 0;
    let mut streamed = 0;
    for h in handles {
        match h.join() {
            Ok(Ok(n)) => streamed += n,
            Ok(Err(msg)) => {
                eprintln!("FAIL {msg}");
                failures += 1;
            }
            Err(_) => {
                eprintln!("FAIL driver thread panicked");
                failures += 1;
            }
        }
    }

    // The shared exposition must carry the server families.
    match Client::connect(&addr).and_then(|mut c| c.metrics(MetricsFormat::Prometheus)) {
        Ok(text) => {
            for family in ["tdb_server_requests_total", "tdb_server_tenant_states"] {
                if !text.contains(family) {
                    eprintln!("FAIL metrics exposition missing {family}");
                    failures += 1;
                }
            }
        }
        Err(e) => {
            eprintln!("FAIL metrics scrape: {e}");
            failures += 1;
        }
    }

    if failures == 0 {
        println!("SMOKE OK tenants={tenants} commits={commits} streamed_firings={streamed}");
        ExitCode::SUCCESS
    } else {
        eprintln!("SMOKE FAILED ({failures} failure(s))");
        ExitCode::FAILURE
    }
}
