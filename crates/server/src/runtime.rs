//! The shard pool: a fixed set of OS worker threads, each owning the
//! tenants routed to it, fed through per-worker MPSC queues.
//!
//! Ownership model (see `DESIGN.md` §12/§15): a tenant lives on exactly one
//! worker thread at a time — the worker's queue serializes every op against
//! it, so a tenant's firing log is as deterministic as a single-process
//! library run. Tenants on *different* workers share no mutable state (the
//! residual interning arena and compiled-program cache are process-wide but
//! internally synchronized and bounded), so workers never contend beyond
//! the global metrics registry.
//!
//! Requests travel as [`Job`]s inside [`Envelope`]s: the envelope carries a
//! per-tenant pending guard so the router always knows whether a tenant has
//! queued or in-flight work. That is what makes *re-pinning* safe: an idle
//! tenant (pending count zero, observed under the route lock) can be moved
//! from the hottest worker to the coldest with an `Expect`/`Extract`/
//! `Install` handshake that preserves the per-tenant FIFO (§15 argues the
//! ordering). Per-worker queue-depth and busy EWMAs ([`WorkerLoad`]) feed
//! the rebalance planner and the `tdb_server_worker_*` gauges.
//!
//! Commits coalesce in one of two modes: a fixed window
//! (`--coalesce-window`, the E18 behavior) or — the default — an *adaptive*
//! window sized per tenant from the observed group-apply latency and
//! discounted by the batch-safety certificate (`CascadeRequired` → no
//! window, `Stratified` → discounted by the observed fence-hit rate). An
//! adaptive window only opens while the worker queue is non-empty, so a
//! lone serial client never pays window latency.

use std::collections::HashMap;
use std::io::Write;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use tdb_analysis::LintLevel;
use tdb_core::manager::{CascadeMode, ManagerConfig};
use tdb_core::rules::FiringRecord;
use tdb_core::storage::LogicalOp;
use tdb_core::BatchCertificate;
use tdb_core::{ShardStats, SyncPolicy};
use tdb_obs::global;
use tdb_relation::{Relation, Value};
use tdb_storage::codec::encode_snapshot;
use tdb_storage::CheckpointPolicy;

use crate::conn::{DEFAULT_OUTBUF_HARD, DEFAULT_OUTBUF_SOFT};
use crate::metrics::{publish_tenant_gauges, publish_vt_watermark, ServerMetrics};
use crate::tenant::Tenant;
use crate::wire::{
    encode_response, write_frame, ErrorCode, MetricsFormat, Request, Response, PROTOCOL_VERSION,
};
use crate::{Result, ServerError};

/// How the front end owns client sockets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnMode {
    /// One poller thread owns every socket via `poll(2)` readiness;
    /// complete frames are handed to the shard pool (the default).
    Poll,
    /// One OS thread per connection (the pre-poller baseline, kept for
    /// comparison benchmarks).
    Thread,
}

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// TCP listen address; use port 0 to let the OS pick (tests).
    pub addr: String,
    /// Worker threads in the shard pool.
    pub workers: usize,
    /// Root directory for durable tenants (one subdirectory each). `None`
    /// makes `CreateTenant { durable: true }` a typed error.
    pub data_dir: Option<PathBuf>,
    /// Registration-time lint level applied to every tenant's manager.
    pub lint: LintLevel,
    /// Checkpoint/sync policy for durable tenants. The default syncs on
    /// every append: an acked commit survives `SIGKILL`.
    pub checkpoint: CheckpointPolicy,
    /// Fixed group-commit window in microseconds. When non-zero it
    /// overrides the adaptive coalescer: a worker that dequeues a commit
    /// keeps draining *consecutive commits for the same tenant* from its
    /// queue for up to this long and applies them as one batch — one WAL
    /// record, one fsync, one evaluation slice. `0` (the default) defers
    /// to `adaptive_coalesce`.
    pub coalesce_window_us: u64,
    /// Size each tenant's coalescing window from its observed group-apply
    /// latency and arrival pattern, ceiling-ed by the batch-safety
    /// certificate. Only consulted while `coalesce_window_us == 0`.
    pub adaptive_coalesce: bool,
    /// Connection-layer mode (readiness poller vs thread-per-connection).
    pub conn_mode: ConnMode,
    /// Move idle tenants off the hottest worker when load skews.
    pub rebalance: bool,
    /// Outbound queue backpressure thresholds per connection (poller
    /// mode): past `soft` a stall episode is counted, past `hard` the
    /// connection is killed instead of buffering without bound.
    pub outbuf_soft_limit: usize,
    pub outbuf_hard_limit: usize,
    /// Default disorder bound Δ for valid-time tenants created without an
    /// explicit one (`CreateVtTenant { max_delay: 0 }`): out-of-order
    /// `CommitAt` ingests may arrive up to Δ ticks after their valid time,
    /// and the watermark `W = now − Δ` trails the clock by the same bound.
    pub max_delay: i64,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:7171".into(),
            workers: 4,
            data_dir: None,
            lint: LintLevel::Warn,
            checkpoint: CheckpointPolicy {
                sync: SyncPolicy::Always,
                ..CheckpointPolicy::default()
            },
            coalesce_window_us: 0,
            adaptive_coalesce: true,
            conn_mode: ConnMode::Poll,
            rebalance: true,
            outbuf_soft_limit: DEFAULT_OUTBUF_SOFT,
            outbuf_hard_limit: DEFAULT_OUTBUF_HARD,
            max_delay: 32,
        }
    }
}

impl ServerConfig {
    fn manager_config(&self) -> ManagerConfig {
        ManagerConfig {
            lint: self.lint,
            // Tenants run the eager cascade mode: group commits (and the
            // coalescer) stay byte-identical to the per-op schedule for
            // every batch-safety certificate class — fences are inserted
            // only where the certificate says the fused slice could
            // diverge.
            cascade: CascadeMode::Eager,
            ..ManagerConfig::default()
        }
    }
}

/// What a connection's outbound half can do beyond `Write`: report that
/// the connection is already known dead, so workers can prune subscribers
/// without waiting for a push to fail. Thread-mode `TcpStream` writers
/// keep the default (death is only discovered by a failed write).
pub trait FrameSink: Write + Send {
    fn is_dead(&self) -> bool {
        false
    }
}

impl FrameSink for std::net::TcpStream {}

/// A connection's outbound half, shared between its request/response loop
/// and the workers pushing subscription frames at it. The mutex is the
/// per-connection write serialization point.
pub type SharedWriter = Arc<Mutex<dyn FrameSink>>;

// ---- adaptive coalescing ----------------------------------------------------

/// Widest window the adaptive coalescer will ever open.
const ADAPTIVE_MAX_WINDOW_US: u64 = 5_000;
/// First-commit bootstrap window (no latency observation yet).
const ADAPTIVE_BOOTSTRAP_US: u64 = 100;

/// Per-tenant observations driving the adaptive commit coalescer. Lives on
/// the owning worker (no locks) and migrates with the tenant.
#[derive(Debug, Clone, Default)]
pub(crate) struct AdaptiveState {
    /// EWMA of ns one group apply takes — dominated by the WAL fsync for
    /// durable tenants, by the evaluation slice for volatile ones.
    apply_ns: u64,
    /// `batch_fence_drains()` value at the last observation.
    fences_at: u64,
    /// EWMA of fence drains per 1000 ops (the stratified discount).
    fence_permille: u64,
}

impl AdaptiveState {
    fn observe(&mut self, ops: u64, dt_ns: u64, fences_total: u64) {
        self.apply_ns = if self.apply_ns == 0 {
            dt_ns
        } else {
            (self.apply_ns * 3 + dt_ns) / 4
        };
        let delta = fences_total.saturating_sub(self.fences_at);
        self.fences_at = fences_total;
        if ops > 0 {
            let inst = delta
                .saturating_mul(1000)
                .checked_div(ops)
                .unwrap_or(0)
                .min(1000);
            self.fence_permille = (self.fence_permille * 3 + inst) / 4;
        }
    }

    /// The window this tenant's commits should coalesce over:
    /// `discount(certificate) × clamp(apply_ewma)`. Waiting about one
    /// group-apply time collects everything that would otherwise queue
    /// behind the fsync anyway, so the window buys batching without adding
    /// latency beyond what the slowest-path op already costs.
    fn window_us(&self, cert: &BatchCertificate) -> u64 {
        let discount_permille = match cert {
            BatchCertificate::CascadeRequired => return 0,
            BatchCertificate::Exact => 1000,
            // A stratified tenant loses fusion at every fence; discount
            // the window by the observed fence-hit rate.
            BatchCertificate::Stratified { .. } => 1000 - self.fence_permille.min(1000),
        };
        let base = if self.apply_ns == 0 {
            ADAPTIVE_BOOTSTRAP_US
        } else {
            (self.apply_ns / 1000).clamp(ADAPTIVE_BOOTSTRAP_US / 2, ADAPTIVE_MAX_WINDOW_US)
        };
        base * discount_permille / 1000
    }
}

// ---- load tracking ----------------------------------------------------------

/// One worker's load signals, shared lock-free between the worker, the
/// router, and the rebalance planner.
#[derive(Debug, Default)]
pub struct WorkerLoad {
    /// Envelopes enqueued and not yet dequeued.
    depth: AtomicI64,
    /// EWMA of the worker's busy fraction over ~100 ms buckets, ‰.
    busy_permille: AtomicU64,
}

impl WorkerLoad {
    pub fn queue_depth(&self) -> i64 {
        self.depth.load(Ordering::Acquire)
    }

    pub fn busy_permille(&self) -> u64 {
        self.busy_permille.load(Ordering::Relaxed)
    }
}

/// Busy/idle accumulator a worker folds into its [`WorkerLoad`] EWMA.
#[derive(Debug, Default)]
struct BusyMeter {
    busy: Duration,
    idle: Duration,
}

impl BusyMeter {
    fn flush_if_due(&mut self, load: &WorkerLoad) {
        if self.busy + self.idle >= Duration::from_millis(100) {
            self.flush(load);
        }
    }

    fn flush(&mut self, load: &WorkerLoad) {
        let total = self.busy + self.idle;
        if total.is_zero() {
            return;
        }
        let inst = (self.busy.as_nanos() * 1000 / total.as_nanos()) as u64;
        let old = load.busy_permille.load(Ordering::Relaxed);
        load.busy_permille
            .store((old * 3 + inst) / 4, Ordering::Relaxed);
        self.busy = Duration::ZERO;
        self.idle = Duration::ZERO;
    }
}

// ---- jobs -------------------------------------------------------------------

type CommitResult = Result<(Vec<std::result::Result<(), String>>, Vec<FiringRecord>)>;
type CommitReply = Sender<CommitResult>;

/// Where a create's answer goes: a rendezvous channel (in-process
/// callers, thread-mode connections) or straight onto a poller
/// connection. On the `Net` path the *worker* finishes the bookkeeping
/// the blocking caller would have done — rolling back the reserved route
/// on failure, bumping the tenant gauge on success — so the poller never
/// waits on the shard pool.
enum CreateSink {
    Channel(Sender<Result<()>>),
    Net {
        id: u64,
        writer: SharedWriter,
        t0: Option<Instant>,
    },
}

/// One unit of work for a shard worker. Replies are rendezvous channels;
/// a dropped reply receiver just discards the answer.
enum Job {
    /// Create (or, at startup, reopen) a tenant on this worker.
    /// `vt: Some(Δ)` creates a valid-time tenant with that (already
    /// resolved) disorder bound.
    Create {
        name: String,
        durable: bool,
        vt: Option<i64>,
        reply: CreateSink,
    },
    Register {
        tenant: String,
        source: String,
        reply: Sender<Result<(Vec<String>, Vec<String>)>>,
    },
    Commit {
        tenant: String,
        ops: Vec<LogicalOp>,
        reply: CommitReply,
    },
    /// Streaming ingest on a valid-time tenant: writes at an explicit
    /// valid time ≤ the arrival instant. Replies with the watermark and
    /// the phase-tagged stream events the ingest produced.
    CommitAt {
        tenant: String,
        arrival: tdb_relation::Timestamp,
        valid: tdb_relation::Timestamp,
        ops: Vec<tdb_engine::WriteOp>,
        reply: Sender<Result<(tdb_relation::Timestamp, Vec<tdb_core::VtFiringEvent>)>>,
    },
    /// Group commit: `ops` become one WAL record / one fsync / one
    /// evaluation slice (see `ActiveDatabase::commit_batch`).
    CommitBatch {
        tenant: String,
        ops: Vec<LogicalOp>,
        reply: CommitReply,
    },
    Query {
        tenant: String,
        text: String,
        params: Vec<Value>,
        reply: Sender<Result<Relation>>,
    },
    Snapshot {
        tenant: String,
        reply: Sender<Result<Vec<u8>>>,
    },
    Firings {
        tenant: String,
        from: usize,
        reply: Sender<Result<Vec<FiringRecord>>>,
    },
    Subscribe {
        tenant: String,
        id: u64,
        writer: SharedWriter,
        reply: Sender<Result<()>>,
    },
    Stats {
        tenant: String,
        reply: Sender<Result<(ShardStats, u64)>>,
    },
    /// A request arriving through the poller: the worker services it and
    /// writes the response frame to the connection itself (no rendezvous,
    /// the poller never blocks on the shard pool).
    Net {
        id: u64,
        req: Request,
        writer: SharedWriter,
        t0: Option<Instant>,
    },
    /// Migration, step 1 (to the destination worker): buffer every job for
    /// `tenant` until its shard arrives via `Install`.
    Expect { tenant: String },
    /// Migration, step 2 (to the source worker): remove the tenant and
    /// ship it to `dest`.
    Extract {
        tenant: String,
        dest: Sender<Envelope>,
        dest_load: Arc<WorkerLoad>,
        /// The route's in-flight-migration latch; cleared once `Install`
        /// lands (or here, if the handoff cannot be shipped).
        migrating: Arc<AtomicBool>,
    },
    /// Migration, step 3 (back on the destination): install the shard and
    /// drain the jobs buffered since `Expect`.
    Install { transfer: Box<TenantTransfer> },
    /// Periodic housekeeping: drop subscribers whose connection is
    /// already known dead (poll-mode killed queues), so a tenant that
    /// stops firing doesn't pin dead buffers or inflate the gauge.
    Sweep,
}

/// Everything that moves with a tenant during re-pinning.
pub(crate) struct TenantTransfer {
    name: String,
    /// `None` only if the source worker no longer had the shard (a bug
    /// upstream); the destination then answers `NoSuchTenant` naturally.
    tenant: Option<Tenant>,
    subscribers: Vec<(u64, SharedWriter)>,
    adaptive: Option<AdaptiveState>,
    migrating: Arc<AtomicBool>,
}

impl Job {
    /// The tenant whose per-tenant order this job participates in — used
    /// to buffer jobs during migration. Control jobs and `Create` (whose
    /// route was fixed at reservation time) return `None`.
    fn tenant(&self) -> Option<&str> {
        match self {
            Job::Register { tenant, .. }
            | Job::Commit { tenant, .. }
            | Job::CommitAt { tenant, .. }
            | Job::CommitBatch { tenant, .. }
            | Job::Query { tenant, .. }
            | Job::Snapshot { tenant, .. }
            | Job::Firings { tenant, .. }
            | Job::Subscribe { tenant, .. }
            | Job::Stats { tenant, .. } => Some(tenant),
            Job::Net { req, .. } => request_tenant(req),
            Job::Create { .. }
            | Job::Expect { .. }
            | Job::Extract { .. }
            | Job::Install { .. }
            | Job::Sweep => None,
        }
    }
}

impl std::fmt::Debug for Job {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let kind = match self {
            Job::Create { .. } => "Create",
            Job::Register { .. } => "Register",
            Job::Commit { .. } => "Commit",
            Job::CommitAt { .. } => "CommitAt",
            Job::CommitBatch { .. } => "CommitBatch",
            Job::Query { .. } => "Query",
            Job::Snapshot { .. } => "Snapshot",
            Job::Firings { .. } => "Firings",
            Job::Subscribe { .. } => "Subscribe",
            Job::Stats { .. } => "Stats",
            Job::Net { .. } => "Net",
            Job::Expect { .. } => "Expect",
            Job::Extract { .. } => "Extract",
            Job::Install { .. } => "Install",
            Job::Sweep => "Sweep",
        };
        write!(f, "Job::{kind}")
    }
}

/// Decrements a tenant's pending count when dropped — the router's "no
/// queued or in-flight work" signal that gates re-pinning.
struct PendingGuard(Arc<AtomicU64>);

impl PendingGuard {
    fn acquire(pending: &Arc<AtomicU64>) -> PendingGuard {
        pending.fetch_add(1, Ordering::AcqRel);
        PendingGuard(Arc::clone(pending))
    }
}

impl Drop for PendingGuard {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::AcqRel);
    }
}

/// What actually travels a worker queue: the job plus its tenant's pending
/// guard (held until the worker finishes the job).
struct Envelope {
    job: Job,
    _guard: Option<PendingGuard>,
}

/// Where a commit's answer goes: a rendezvous channel (in-process callers,
/// thread-mode connections) or straight onto a poller connection.
enum CommitSink {
    Channel(CommitReply),
    Net {
        id: u64,
        writer: SharedWriter,
        t0: Option<Instant>,
    },
}

impl CommitSink {
    fn respond(self, metrics: &ServerMetrics, r: CommitResult) {
        match self {
            CommitSink::Channel(tx) => {
                let _ = tx.send(r);
            }
            CommitSink::Net { id, writer, t0 } => {
                let resp = r
                    .map(|(outcomes, firings)| Response::Committed { outcomes, firings })
                    .unwrap_or_else(error_response);
                let ok = !matches!(resp, Response::Error { .. });
                metrics.observe_request("commit", t0, ok);
                send_response(&writer, id, &resp);
            }
        }
    }
}

// ---- routing ----------------------------------------------------------------

/// Where a tenant lives, plus the signals the rebalance planner needs.
#[derive(Debug)]
struct TenantRoute {
    worker: usize,
    /// Queued + in-flight jobs for this tenant (see [`PendingGuard`]).
    pending: Arc<AtomicU64>,
    /// `ms` (since runtime start) of the last job submitted.
    last_active: AtomicU64,
    /// Set by [`Runtime::repin`] when a migration starts and cleared only
    /// once the destination worker processes `Install`. The pending count
    /// cannot gate this window: `Expect`/`Extract`/`Install` are control
    /// jobs without guards, so without the latch a second re-pin accepted
    /// mid-handoff would make the second `Extract` find no shard and
    /// strand the tenant wherever the first `Install` put it.
    migrating: Arc<AtomicBool>,
}

/// The routing table, shared with workers so an async (`Net`-path) create
/// can roll back its reserved entry on failure without blocking the
/// poller on a rendezvous.
type RouteTable = Arc<Mutex<HashMap<String, TenantRoute>>>;

/// Don't re-pin again within this long of the last move.
const REBALANCE_COOLDOWN: Duration = Duration::from_millis(500);
/// Busy thresholds (‰) for the hottest/coldest worker pair.
const REBALANCE_HOT_PERMILLE: u64 = 600;
const REBALANCE_COLD_PERMILLE: u64 = 200;

/// The shard pool. Cheap to share (`Arc` it); [`Runtime::shutdown`]
/// consumes the last owner, drains the queues, checkpoints durable tenants
/// and joins the workers.
#[derive(Debug)]
pub struct Runtime {
    cfg: ServerConfig,
    queues: Vec<Sender<Envelope>>,
    workers: Vec<JoinHandle<()>>,
    /// tenant name → route. Entries are reserved before the Create job
    /// runs (and rolled back on failure) so two racing creates of one
    /// name serialize here, not on the worker.
    route: RouteTable,
    next_worker: AtomicUsize,
    loads: Vec<Arc<WorkerLoad>>,
    epoch: Instant,
    last_repin: Mutex<Option<Instant>>,
    pub metrics: ServerMetrics,
}

impl Runtime {
    /// Spawns the pool and reopens any durable tenants found under
    /// `data_dir` (each subdirectory is one tenant, recovered via
    /// checkpoint + WAL replay before the server accepts connections).
    pub fn start(cfg: ServerConfig) -> Result<Runtime> {
        let workers = cfg.workers.max(1);
        let route: RouteTable = Arc::new(Mutex::new(HashMap::new()));
        let mut queues = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        let mut loads = Vec::with_capacity(workers);
        for i in 0..workers {
            let (tx, rx) = channel::<Envelope>();
            let load = Arc::new(WorkerLoad::default());
            let wcfg = cfg.clone();
            let wload = Arc::clone(&load);
            let wroute = Arc::clone(&route);
            let handle = std::thread::Builder::new()
                .name(format!("tdb-shard-{i}"))
                .spawn(move || worker_loop(rx, wcfg, wload, wroute))
                .map_err(|e| ServerError::Storage(format!("spawning worker: {e}")))?;
            queues.push(tx);
            handles.push(handle);
            loads.push(load);
        }
        let rt = Runtime {
            cfg,
            queues,
            workers: handles,
            route,
            next_worker: AtomicUsize::new(0),
            loads,
            epoch: Instant::now(),
            last_repin: Mutex::new(None),
            metrics: ServerMetrics::resolve(),
        };
        rt.reopen_existing()?;
        Ok(rt)
    }

    /// Recovers every tenant directory under `data_dir`.
    fn reopen_existing(&self) -> Result<()> {
        let Some(root) = self.cfg.data_dir.clone() else {
            return Ok(());
        };
        if !root.exists() {
            std::fs::create_dir_all(&root)
                .map_err(|e| ServerError::Storage(format!("{}: {e}", root.display())))?;
            return Ok(());
        }
        let mut names: Vec<String> = std::fs::read_dir(&root)
            .map_err(|e| ServerError::Storage(format!("{}: {e}", root.display())))?
            .flatten()
            .filter(|e| e.path().is_dir())
            .filter_map(|e| e.file_name().to_str().map(String::from))
            .collect();
        names.sort();
        for name in names {
            self.create_tenant(&name, true)?;
        }
        Ok(())
    }

    /// The configuration the pool was started with.
    pub fn config(&self) -> &ServerConfig {
        &self.cfg
    }

    fn now_ms(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_millis()).unwrap_or(u64::MAX)
    }

    /// Validates the name and reserves a route entry for a new tenant.
    /// The reservation makes two racing creates of one name serialize on
    /// the route lock, not on a worker; the caller must roll the entry
    /// back if the worker-side create fails.
    fn reserve_route(&self, name: &str, durable: bool) -> Result<(usize, PendingGuard)> {
        validate_tenant_name(name)?;
        if durable && self.cfg.data_dir.is_none() {
            return Err(ServerError::Remote {
                code: ErrorCode::Storage,
                message: "server started without --data-dir; durable tenants unavailable".into(),
            });
        }
        // The routing table has no multi-step invariants (single
        // insert/remove per holder), so a poisoned lock — a panic on
        // some other connection thread — leaves it fully usable.
        let mut route = self.route.lock().unwrap_or_else(PoisonError::into_inner);
        if route.contains_key(name) {
            return Err(ServerError::Remote {
                code: ErrorCode::TenantExists,
                message: format!("tenant `{name}` already exists"),
            });
        }
        let w = self.next_worker.fetch_add(1, Ordering::Relaxed) % self.queues.len();
        let pending = Arc::new(AtomicU64::new(0));
        let guard = PendingGuard::acquire(&pending);
        route.insert(
            name.to_string(),
            TenantRoute {
                worker: w,
                pending,
                last_active: AtomicU64::new(self.now_ms()),
                migrating: Arc::new(AtomicBool::new(false)),
            },
        );
        Ok((w, guard))
    }

    /// Creates a tenant (or reopens a durable one — creation is idempotent
    /// against a directory left by a previous incarnation, which is how
    /// restart recovery works; a *live* duplicate name is a typed error).
    pub fn create_tenant(&self, name: &str, durable: bool) -> Result<()> {
        self.create_any(name, durable, None)
    }

    /// Creates a valid-time tenant: `CommitAt` ingests instead of in-order
    /// commits, watermark `W = now − Δ`. `max_delay <= 0` takes the
    /// server-wide default (`--max-delay`).
    pub fn create_vt_tenant(&self, name: &str, durable: bool, max_delay: i64) -> Result<()> {
        self.create_any(name, durable, Some(self.resolve_max_delay(max_delay)))
    }

    fn resolve_max_delay(&self, max_delay: i64) -> i64 {
        if max_delay <= 0 {
            self.cfg.max_delay
        } else {
            max_delay
        }
    }

    fn create_any(&self, name: &str, durable: bool, vt: Option<i64>) -> Result<()> {
        let (worker, guard) = self.reserve_route(name, durable)?;
        let (tx, rx) = channel();
        let sent = self.enqueue(
            worker,
            Job::Create {
                name: name.to_string(),
                durable,
                vt,
                reply: CreateSink::Channel(tx),
            },
            Some(guard),
        );
        let result = match sent {
            Ok(()) => recv_reply(rx),
            Err(e) => Err(e),
        };
        if result.is_err() {
            self.route
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .remove(name);
        } else {
            self.metrics.tenants.add(1);
        }
        result
    }

    /// Live tenant names, sorted.
    pub fn tenants(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .route
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .keys()
            .cloned()
            .collect();
        names.sort();
        names
    }

    fn enqueue(&self, worker: usize, job: Job, guard: Option<PendingGuard>) -> Result<()> {
        self.loads[worker].depth.fetch_add(1, Ordering::AcqRel);
        self.queues[worker]
            .send(Envelope { job, _guard: guard })
            .map_err(|_| {
                self.loads[worker].depth.fetch_sub(1, Ordering::AcqRel);
                internal("worker queue closed")
            })
    }

    fn send(&self, tenant: &str, job: Job) -> Result<()> {
        let (worker, guard) = {
            let route = self.route.lock().unwrap_or_else(PoisonError::into_inner);
            match route.get(tenant) {
                Some(r) => {
                    r.last_active.store(self.now_ms(), Ordering::Relaxed);
                    (r.worker, PendingGuard::acquire(&r.pending))
                }
                None => {
                    return Err(ServerError::Remote {
                        code: ErrorCode::NoSuchTenant,
                        message: format!("no tenant `{tenant}`"),
                    })
                }
            }
        };
        self.enqueue(worker, job, Some(guard))
    }

    pub fn register_rules(&self, tenant: &str, source: &str) -> Result<(Vec<String>, Vec<String>)> {
        let (tx, rx) = channel();
        self.send(
            tenant,
            Job::Register {
                tenant: tenant.to_string(),
                source: source.to_string(),
                reply: tx,
            },
        )?;
        recv_reply(rx)
    }

    #[allow(clippy::type_complexity)]
    pub fn commit(
        &self,
        tenant: &str,
        ops: Vec<LogicalOp>,
    ) -> Result<(Vec<std::result::Result<(), String>>, Vec<FiringRecord>)> {
        let (tx, rx) = channel();
        self.send(
            tenant,
            Job::Commit {
                tenant: tenant.to_string(),
                ops,
                reply: tx,
            },
        )?;
        recv_reply(rx)
    }

    /// Streaming ingest on a valid-time tenant: applies `ops` at the
    /// explicit valid time `valid`, with the tenant clock advanced to
    /// `arrival` first. Returns the post-ingest watermark and the
    /// phase-tagged stream events (tentative announcements, confirmations,
    /// retractions) the ingest produced.
    #[allow(clippy::type_complexity)]
    pub fn commit_at(
        &self,
        tenant: &str,
        arrival: tdb_relation::Timestamp,
        valid: tdb_relation::Timestamp,
        ops: Vec<tdb_engine::WriteOp>,
    ) -> Result<(tdb_relation::Timestamp, Vec<tdb_core::VtFiringEvent>)> {
        let (tx, rx) = channel();
        self.send(
            tenant,
            Job::CommitAt {
                tenant: tenant.to_string(),
                arrival,
                valid,
                ops,
                reply: tx,
            },
        )?;
        recv_reply(rx)
    }

    /// Applies `ops` as one atomic group commit on the tenant's worker:
    /// one WAL record, one fsync, one batched evaluation slice.
    #[allow(clippy::type_complexity)]
    pub fn commit_batch(
        &self,
        tenant: &str,
        ops: Vec<LogicalOp>,
    ) -> Result<(Vec<std::result::Result<(), String>>, Vec<FiringRecord>)> {
        let (tx, rx) = channel();
        self.send(
            tenant,
            Job::CommitBatch {
                tenant: tenant.to_string(),
                ops,
                reply: tx,
            },
        )?;
        recv_reply(rx)
    }

    pub fn query(&self, tenant: &str, text: &str, params: Vec<Value>) -> Result<Relation> {
        let (tx, rx) = channel();
        self.send(
            tenant,
            Job::Query {
                tenant: tenant.to_string(),
                text: text.to_string(),
                params,
                reply: tx,
            },
        )?;
        recv_reply(rx)
    }

    pub fn snapshot(&self, tenant: &str) -> Result<Vec<u8>> {
        let (tx, rx) = channel();
        self.send(
            tenant,
            Job::Snapshot {
                tenant: tenant.to_string(),
                reply: tx,
            },
        )?;
        recv_reply(rx)
    }

    pub fn firings(&self, tenant: &str, from: usize) -> Result<Vec<FiringRecord>> {
        let (tx, rx) = channel();
        self.send(
            tenant,
            Job::Firings {
                tenant: tenant.to_string(),
                from,
                reply: tx,
            },
        )?;
        recv_reply(rx)
    }

    /// Registers `writer` for push-streamed firings of `tenant`,
    /// correlated by request id `id`.
    pub fn subscribe(&self, tenant: &str, id: u64, writer: SharedWriter) -> Result<()> {
        let (tx, rx) = channel();
        self.send(
            tenant,
            Job::Subscribe {
                tenant: tenant.to_string(),
                id,
                writer,
                reply: tx,
            },
        )?;
        recv_reply(rx)?;
        self.metrics.subscriptions.add(1);
        Ok(())
    }

    pub fn stats(&self, tenant: &str) -> Result<(ShardStats, u64)> {
        let (tx, rx) = channel();
        self.send(
            tenant,
            Job::Stats {
                tenant: tenant.to_string(),
                reply: tx,
            },
        )?;
        recv_reply(rx)
    }

    /// Routes one poller-decoded request. Cheap tenant-free requests are
    /// answered inline (`Some`); tenant-scoped requests are dispatched as
    /// [`Job::Net`] — the owning worker writes the response itself and the
    /// poller never blocks on the shard pool (`None`).
    pub fn submit_net(
        &self,
        id: u64,
        req: Request,
        writer: &SharedWriter,
        t0: Option<Instant>,
    ) -> Option<Response> {
        match req {
            Request::Hello { version } => Some(if version == PROTOCOL_VERSION {
                Response::HelloOk {
                    version: PROTOCOL_VERSION,
                }
            } else {
                Response::Error {
                    code: ErrorCode::Protocol,
                    message: format!(
                        "protocol version {version} not supported (server speaks {PROTOCOL_VERSION})"
                    ),
                }
            }),
            Request::ListTenants => Some(Response::Tenants {
                names: self.tenants(),
            }),
            Request::Metrics { format } => {
                let snap = global().snapshot();
                let text = match format {
                    MetricsFormat::Prometheus => snap.render_prometheus(),
                    MetricsFormat::Json => snap.to_json(),
                };
                Some(Response::MetricsText { text })
            }
            Request::Shutdown => Some(Response::ShuttingDown),
            // Creates go through the worker asynchronously like every
            // other tenant-scoped request: `create_tenant` would block on
            // a rendezvous with a shard worker, and a create queued behind
            // a deep worker queue (or a slow durable recovery) must not
            // stall the poller for every connection. The route entry is
            // reserved here; the worker rolls it back on failure and
            // writes the response itself.
            Request::CreateTenant { name, durable } => {
                self.submit_net_create(id, name, durable, None, writer, t0)
            }
            Request::CreateVtTenant {
                name,
                durable,
                max_delay,
            } => {
                let vt = Some(self.resolve_max_delay(max_delay));
                self.submit_net_create(id, name, durable, vt, writer, t0)
            }
            other => {
                let Some(tenant) = request_tenant(&other).map(String::from) else {
                    return Some(error_response(internal("request is not worker-routable")));
                };
                match self.send(
                    &tenant,
                    Job::Net {
                        id,
                        req: other,
                        writer: Arc::clone(writer),
                        t0,
                    },
                ) {
                    Ok(()) => None,
                    Err(e) => Some(error_response(e)),
                }
            }
        }
    }

    /// The async half of `CreateTenant`/`CreateVtTenant`: reserve the
    /// route here, let the worker answer (rolling the entry back on
    /// failure) so the poller never blocks on the shard pool.
    fn submit_net_create(
        &self,
        id: u64,
        name: String,
        durable: bool,
        vt: Option<i64>,
        writer: &SharedWriter,
        t0: Option<Instant>,
    ) -> Option<Response> {
        match self.reserve_route(&name, durable) {
            Ok((worker, guard)) => {
                let job = Job::Create {
                    name: name.clone(),
                    durable,
                    vt,
                    reply: CreateSink::Net {
                        id,
                        writer: Arc::clone(writer),
                        t0,
                    },
                };
                match self.enqueue(worker, job, Some(guard)) {
                    Ok(()) => None,
                    Err(e) => {
                        self.route
                            .lock()
                            .unwrap_or_else(PoisonError::into_inner)
                            .remove(&name);
                        Some(error_response(e))
                    }
                }
            }
            Err(e) => Some(error_response(e)),
        }
    }

    /// Per-worker load signals (planner, gauges, tests).
    pub fn worker_loads(&self) -> &[Arc<WorkerLoad>] {
        &self.loads
    }

    /// Publishes the `tdb_server_worker_*` gauges.
    pub fn publish_worker_gauges(&self) {
        let r = global();
        for (i, load) in self.loads.iter().enumerate() {
            let label = i.to_string();
            let labels: &[(&str, &str)] = &[("worker", &label)];
            r.gauge_with("tdb_server_worker_queue_depth", labels)
                .set(load.queue_depth());
            r.gauge_with("tdb_server_worker_busy_permille", labels)
                .set(i64::try_from(load.busy_permille()).unwrap_or(i64::MAX));
        }
    }

    /// Asks every worker to drop subscribers whose connection is already
    /// known dead. Without this, a dead subscriber of a tenant that stops
    /// firing would be detected only by a failed push — pinning its
    /// killed outbound buffer and inflating the subscriptions gauge
    /// indefinitely. Called from the connection layer's planner tick.
    pub fn sweep_subscribers(&self) {
        for w in 0..self.queues.len() {
            let _ = self.enqueue(w, Job::Sweep, None);
        }
    }

    /// Moves `tenant` to worker `to` at a safe boundary. Refuses (typed
    /// error) while the tenant has queued or in-flight work — the caller
    /// retries on a later tick. See `DESIGN.md` §15 for why the
    /// `Expect`/`Extract`/`Install` handshake preserves per-tenant order.
    pub fn repin(&self, tenant: &str, to: usize) -> Result<()> {
        if to >= self.queues.len() {
            return Err(internal("no such worker"));
        }
        let mut route = self.route.lock().unwrap_or_else(PoisonError::into_inner);
        let Some(r) = route.get_mut(tenant) else {
            return Err(ServerError::Remote {
                code: ErrorCode::NoSuchTenant,
                message: format!("no tenant `{tenant}`"),
            });
        };
        if r.worker == to {
            return Ok(());
        }
        if r.pending.load(Ordering::Acquire) != 0 {
            return Err(internal(
                "tenant has queued or in-flight work; re-pin refused",
            ));
        }
        // The pending count only covers guarded (tenant-scoped) jobs; the
        // previous move's Expect/Extract/Install control jobs may still be
        // queued — a saturated source worker can hold Extract past any
        // wall-clock cooldown. Accepting a second move in that window
        // would make its Extract find no shard (TenantTransfer { tenant:
        // None }) and strand the data on the first move's destination
        // while the route points elsewhere. The latch closes that window:
        // set here, cleared by the destination worker once Install lands.
        if r.migrating.swap(true, Ordering::AcqRel) {
            return Err(internal("tenant migration in flight; re-pin refused"));
        }
        let from = r.worker;
        let migrating = Arc::clone(&r.migrating);
        // Order matters, and the route lock is held across all three
        // steps: `Expect` reaches the destination queue before the route
        // flips, so every job submitted after the flip queues behind it
        // and gets buffered until `Install` delivers the shard. The source
        // queue holds no job for this tenant (pending == 0), so `Extract`
        // is its next and last touch there.
        let sent = self
            .enqueue(
                to,
                Job::Expect {
                    tenant: tenant.to_string(),
                },
                None,
            )
            .and_then(|()| {
                self.enqueue(
                    from,
                    Job::Extract {
                        tenant: tenant.to_string(),
                        dest: self.queues[to].clone(),
                        dest_load: Arc::clone(&self.loads[to]),
                        migrating: Arc::clone(&migrating),
                    },
                    None,
                )
            });
        if let Err(e) = sent {
            // Queues only close at shutdown; release the latch so the
            // error is not sticky.
            migrating.store(false, Ordering::Release);
            return Err(e);
        }
        r.worker = to;
        self.metrics.repins.inc();
        Ok(())
    }

    /// One planner tick: if the busiest worker is saturated and the
    /// calmest one is idle, move the longest-idle tenant (no queued or
    /// in-flight work) from hot to cold. Called periodically by the
    /// connection layer; cheap when balanced.
    pub fn maybe_rebalance(&self) {
        if !self.cfg.rebalance || self.queues.len() < 2 {
            return;
        }
        {
            let last = self
                .last_repin
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            if let Some(t) = *last {
                if t.elapsed() < REBALANCE_COOLDOWN {
                    return;
                }
            }
        }
        let busy: Vec<u64> = self.loads.iter().map(|l| l.busy_permille()).collect();
        let (mut hot, mut cold) = (0usize, 0usize);
        for i in 1..busy.len() {
            if busy[i] > busy[hot] {
                hot = i;
            }
            if busy[i] < busy[cold] {
                cold = i;
            }
        }
        if hot == cold || busy[hot] < REBALANCE_HOT_PERMILLE || busy[cold] > REBALANCE_COLD_PERMILLE
        {
            return;
        }
        let victim = {
            let route = self.route.lock().unwrap_or_else(PoisonError::into_inner);
            let on_hot = route.values().filter(|r| r.worker == hot).count();
            if on_hot < 2 {
                // Moving the only tenant just relocates the hotspot.
                return;
            }
            route
                .iter()
                .filter(|(_, r)| {
                    r.worker == hot
                        && r.pending.load(Ordering::Acquire) == 0
                        && !r.migrating.load(Ordering::Acquire)
                })
                .min_by(|(an, ar), (bn, br)| {
                    ar.last_active
                        .load(Ordering::Relaxed)
                        .cmp(&br.last_active.load(Ordering::Relaxed))
                        .then_with(|| an.cmp(bn))
                })
                .map(|(name, _)| name.clone())
        };
        let Some(victim) = victim else { return };
        if self.repin(&victim, cold).is_ok() {
            *self
                .last_repin
                .lock()
                .unwrap_or_else(PoisonError::into_inner) = Some(Instant::now());
        }
    }

    /// Drains every queue, checkpoints durable tenants, joins the workers.
    pub fn shutdown(self) {
        drop(self.queues);
        for h in self.workers {
            let _ = h.join();
        }
    }
}

fn internal(msg: &str) -> ServerError {
    ServerError::Remote {
        code: ErrorCode::Internal,
        message: msg.into(),
    }
}

fn recv_reply<T>(rx: Receiver<Result<T>>) -> Result<T> {
    rx.recv()
        .unwrap_or_else(|_| Err(internal("worker dropped the request")))
}

/// Tenant names become directory names; keep them path-safe.
fn validate_tenant_name(name: &str) -> Result<()> {
    let ok = !name.is_empty()
        && name.len() <= 64
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-');
    if ok {
        Ok(())
    } else {
        Err(ServerError::Remote {
            code: ErrorCode::Protocol,
            message: format!("invalid tenant name `{name}`: use 1-64 chars of [A-Za-z0-9_-]"),
        })
    }
}

/// The tenant a wire request addresses, if any.
pub(crate) fn request_tenant(req: &Request) -> Option<&str> {
    match req {
        Request::RegisterRule { tenant, .. }
        | Request::Commit { tenant, .. }
        | Request::CommitAt { tenant, .. }
        | Request::CommitBatch { tenant, .. }
        | Request::Query { tenant, .. }
        | Request::Snapshot { tenant }
        | Request::Firings { tenant, .. }
        | Request::SubscribeFirings { tenant }
        | Request::TenantStats { tenant } => Some(tenant),
        _ => None,
    }
}

/// The per-kind label a request is observed under.
pub(crate) fn request_kind(req: &Request) -> &'static str {
    match req {
        Request::Hello { .. } => "hello",
        Request::CreateTenant { .. } => "create_tenant",
        Request::CreateVtTenant { .. } => "create_vt_tenant",
        Request::ListTenants => "list_tenants",
        Request::RegisterRule { .. } => "register_rule",
        Request::Commit { .. } => "commit",
        Request::CommitAt { .. } => "commit_at",
        Request::CommitBatch { .. } => "commit_batch",
        Request::Query { .. } => "query",
        Request::Snapshot { .. } => "snapshot",
        Request::Firings { .. } => "firings",
        Request::SubscribeFirings { .. } => "subscribe",
        Request::TenantStats { .. } => "tenant_stats",
        Request::Metrics { .. } => "metrics",
        Request::Shutdown => "shutdown",
    }
}

/// Maps a [`ServerError`] onto the wire's error vocabulary.
pub(crate) fn error_response(e: ServerError) -> Response {
    let (code, message) = match e {
        ServerError::Remote { code, message } => (code, message),
        ServerError::Protocol(p) => (ErrorCode::Protocol, p.to_string()),
        ServerError::Core(c) => {
            let code = match &c {
                tdb_core::CoreError::LintDenied { .. } => ErrorCode::Lint,
                tdb_core::CoreError::Storage(_) => ErrorCode::Storage,
                _ => ErrorCode::Internal,
            };
            (code, c.to_string())
        }
        ServerError::Storage(m) => (ErrorCode::Storage, m),
        ServerError::Invalid(m) => (ErrorCode::Protocol, m),
    };
    Response::Error { code, message }
}

/// Writes one response frame under the connection's writer lock.
pub(crate) fn send_response(writer: &SharedWriter, id: u64, resp: &Response) -> bool {
    let payload = encode_response(id, resp);
    let mut w = match writer.lock() {
        Ok(w) => w,
        Err(_) => return false,
    };
    write_frame(&mut *w, &payload).is_ok() && w.flush().is_ok()
}

// ---- worker -----------------------------------------------------------------

struct WorkerState {
    cfg: ServerConfig,
    tenants: HashMap<String, Tenant>,
    /// Per-tenant firing subscribers: (subscription request id, writer).
    subscribers: HashMap<String, Vec<(u64, SharedWriter)>>,
    /// Per-tenant adaptive-coalescing observations.
    adaptive: HashMap<String, AdaptiveState>,
    /// Tenants migrating *to* this worker: jobs buffered until `Install`.
    expected: HashMap<String, Vec<Envelope>>,
    load: Arc<WorkerLoad>,
    /// Shared routing table — only touched to roll back a reserved entry
    /// when an async (`Net`-path) create fails.
    route: RouteTable,
    metrics: ServerMetrics,
}

fn worker_loop(
    rx: Receiver<Envelope>,
    cfg: ServerConfig,
    load: Arc<WorkerLoad>,
    route: RouteTable,
) {
    let fixed_us = cfg.coalesce_window_us;
    let adaptive = fixed_us == 0 && cfg.adaptive_coalesce;
    let mut st = WorkerState {
        cfg,
        tenants: HashMap::new(),
        subscribers: HashMap::new(),
        adaptive: HashMap::new(),
        expected: HashMap::new(),
        load: Arc::clone(&load),
        route,
        metrics: ServerMetrics::resolve(),
    };
    // When coalescing, a non-matching envelope dequeued while a group was
    // open carries over to the next iteration instead of being dropped.
    let mut carry: Option<Envelope> = None;
    let mut meter = BusyMeter::default();
    loop {
        let env = match carry.take() {
            Some(e) => e,
            None => {
                let t_wait = Instant::now();
                // A bounded wait keeps the busy EWMA fresh even while the
                // worker sits idle (the planner must see it as cold).
                match rx.recv_timeout(Duration::from_millis(100)) {
                    Ok(e) => {
                        load.depth.fetch_sub(1, Ordering::AcqRel);
                        meter.idle += t_wait.elapsed();
                        e
                    }
                    Err(RecvTimeoutError::Timeout) => {
                        meter.idle += t_wait.elapsed();
                        meter.flush(&load);
                        continue;
                    }
                    Err(RecvTimeoutError::Disconnected) => break,
                }
            }
        };
        // Jobs for a tenant whose shard has not arrived yet wait in the
        // buffer; `Install` drains them in arrival order.
        if let Some(t) = env.job.tenant() {
            if let Some(buf) = st.expected.get_mut(t) {
                buf.push(env);
                continue;
            }
        }
        let t_busy = Instant::now();
        let Envelope { job, _guard } = env;
        match job {
            Job::Commit { tenant, ops, reply } => {
                let window = st.commit_window_us(&tenant, fixed_us, adaptive);
                if window > 0 {
                    carry =
                        st.coalesced_commit(&rx, window, tenant, ops, CommitSink::Channel(reply));
                } else {
                    let r = st.commit(&tenant, &ops);
                    let _ = reply.send(r);
                }
            }
            Job::Net {
                id,
                req: Request::Commit { tenant, ops },
                writer,
                t0,
            } => {
                let window = st.commit_window_us(&tenant, fixed_us, adaptive);
                let sink = CommitSink::Net { id, writer, t0 };
                if window > 0 {
                    carry = st.coalesced_commit(&rx, window, tenant, ops, sink);
                } else {
                    let r = st.commit(&tenant, &ops);
                    sink.respond(&st.metrics.clone(), r);
                }
            }
            other => st.handle(other),
        }
        meter.busy += t_busy.elapsed();
        meter.flush_if_due(&load);
    }
    // Queue closed: graceful shutdown. Checkpoint durable tenants so the
    // next start recovers from a fresh snapshot instead of a long replay
    // (valid-time tenants just fsync — their log is their state).
    for tenant in st.tenants.values_mut() {
        if tenant.durable_dir().is_some() {
            let _ = tenant.checkpoint_now();
        }
    }
}

impl WorkerState {
    fn tenant_mut(&mut self, name: &str) -> Result<&mut Tenant> {
        self.tenants
            .get_mut(name)
            .ok_or_else(|| ServerError::Remote {
                code: ErrorCode::NoSuchTenant,
                message: format!("no tenant `{name}`"),
            })
    }

    /// How long this commit should linger collecting followers: a fixed
    /// window if configured, else the tenant's adaptive window — but only
    /// while other work is queued (an empty queue means a window is pure
    /// added latency for a serial client).
    fn commit_window_us(&mut self, tenant: &str, fixed_us: u64, adaptive: bool) -> u64 {
        if fixed_us > 0 {
            return fixed_us;
        }
        if !adaptive || self.load.queue_depth() <= 0 {
            return 0;
        }
        let Some(t) = self.tenants.get(tenant) else {
            return 0;
        };
        let cert = t.batch_certificate();
        self.adaptive
            .get(tenant)
            .cloned()
            .unwrap_or_default()
            .window_us(&cert)
    }

    fn handle(&mut self, job: Job) {
        match job {
            Job::Create {
                name,
                durable,
                vt,
                reply,
            } => {
                let r = self.create(&name, durable, vt);
                match reply {
                    CreateSink::Channel(tx) => {
                        // The blocking caller (`create_tenant`) does the
                        // route rollback / gauge bookkeeping itself.
                        let _ = tx.send(r);
                    }
                    CreateSink::Net { id, writer, t0 } => {
                        let ok = r.is_ok();
                        if ok {
                            self.metrics.tenants.add(1);
                        } else {
                            self.route
                                .lock()
                                .unwrap_or_else(PoisonError::into_inner)
                                .remove(&name);
                        }
                        let resp = r
                            .map(|()| Response::TenantCreated)
                            .unwrap_or_else(error_response);
                        self.metrics.observe_request("create_tenant", t0, ok);
                        send_response(&writer, id, &resp);
                    }
                }
            }
            Job::Register {
                tenant,
                source,
                reply,
            } => {
                let r = self
                    .tenant_mut(&tenant)
                    .and_then(|t| t.register_rules(&source));
                let _ = reply.send(r);
            }
            Job::Commit { tenant, ops, reply } => {
                let r = self.commit(&tenant, &ops);
                let _ = reply.send(r);
            }
            Job::CommitAt {
                tenant,
                arrival,
                valid,
                ops,
                reply,
            } => {
                let r = self.commit_at(&tenant, arrival, valid, ops);
                let _ = reply.send(r);
            }
            Job::CommitBatch { tenant, ops, reply } => {
                let r = self.commit_batch(&tenant, &ops);
                let _ = reply.send(r);
            }
            Job::Query {
                tenant,
                text,
                params,
                reply,
            } => {
                let r = self
                    .tenant_mut(&tenant)
                    .and_then(|t| t.query(&text, &params));
                let _ = reply.send(r);
            }
            Job::Snapshot { tenant, reply } => {
                let r = self.snapshot(&tenant);
                let _ = reply.send(r);
            }
            Job::Firings {
                tenant,
                from,
                reply,
            } => {
                let r = self.tenant_mut(&tenant).map(|t| t.firings_from(from));
                let _ = reply.send(r);
            }
            Job::Subscribe {
                tenant,
                id,
                writer,
                reply,
            } => {
                let r = self.tenant_mut(&tenant).map(|_| ());
                if r.is_ok() {
                    self.subscribers
                        .entry(tenant)
                        .or_default()
                        .push((id, writer));
                }
                let _ = reply.send(r);
            }
            Job::Stats { tenant, reply } => {
                let r = self.stats(&tenant);
                let _ = reply.send(r);
            }
            Job::Net {
                id,
                req,
                writer,
                t0,
            } => self.service_net(id, req, writer, t0),
            Job::Expect { tenant } => {
                self.expected.entry(tenant).or_default();
            }
            Job::Extract {
                tenant,
                dest,
                dest_load,
                migrating,
            } => {
                let transfer = TenantTransfer {
                    name: tenant.clone(),
                    tenant: self.tenants.remove(&tenant),
                    subscribers: self.subscribers.remove(&tenant).unwrap_or_default(),
                    adaptive: self.adaptive.remove(&tenant),
                    migrating,
                };
                dest_load.depth.fetch_add(1, Ordering::AcqRel);
                if let Err(e) = dest.send(Envelope {
                    job: Job::Install {
                        transfer: Box::new(transfer),
                    },
                    _guard: None,
                }) {
                    dest_load.depth.fetch_sub(1, Ordering::AcqRel);
                    // Destination gone (shutdown): the move will never
                    // complete, so don't leave the latch stuck.
                    if let Envelope {
                        job: Job::Install { transfer },
                        ..
                    } = e.0
                    {
                        transfer.migrating.store(false, Ordering::Release);
                    }
                }
            }
            Job::Install { transfer } => {
                let TenantTransfer {
                    name,
                    tenant,
                    subscribers,
                    adaptive,
                    migrating,
                } = *transfer;
                if let Some(t) = tenant {
                    self.tenants.insert(name.clone(), t);
                }
                if !subscribers.is_empty() {
                    self.subscribers.insert(name.clone(), subscribers);
                }
                if let Some(a) = adaptive {
                    self.adaptive.insert(name.clone(), a);
                }
                if let Some(buffered) = self.expected.remove(&name) {
                    for env in buffered {
                        let Envelope { job, _guard } = env;
                        // Buffered jobs replay in arrival order; no
                        // coalescing inside the drain (it is short).
                        self.handle(job);
                    }
                }
                // The shard (and its buffered backlog) now lives here;
                // only now may the router accept the tenant's next move.
                migrating.store(false, Ordering::Release);
            }
            Job::Sweep => self.sweep_dead_subscribers(),
        }
    }

    /// Drops subscribers whose connection reports itself dead (poll-mode
    /// killed outbound queues), freeing their buffers and keeping the
    /// subscriptions gauge honest even for tenants that never fire again.
    fn sweep_dead_subscribers(&mut self) {
        let metrics = self.metrics.clone();
        self.subscribers.retain(|_, subs| {
            subs.retain(|(_, writer)| {
                let dead = match writer.lock() {
                    Ok(w) => w.is_dead(),
                    Err(_) => true,
                };
                if dead {
                    metrics.subscriptions.add(-1);
                }
                !dead
            });
            !subs.is_empty()
        });
    }

    /// Services a poller-dispatched request and writes the response frame.
    fn service_net(&mut self, id: u64, req: Request, writer: SharedWriter, t0: Option<Instant>) {
        let kind = request_kind(&req);
        let r: Result<Response> = match req {
            Request::RegisterRule { tenant, source } => self
                .tenant_mut(&tenant)
                .and_then(|t| t.register_rules(&source))
                .map(|(registered, findings)| Response::RulesRegistered {
                    registered,
                    findings,
                }),
            Request::Commit { tenant, ops } => self
                .commit(&tenant, &ops)
                .map(|(outcomes, firings)| Response::Committed { outcomes, firings }),
            Request::CommitAt {
                tenant,
                arrival,
                valid,
                ops,
            } => self
                .commit_at(&tenant, arrival, valid, ops)
                .map(|(watermark, events)| Response::VtCommitted { watermark, events }),
            Request::CommitBatch { tenant, ops } => self
                .commit_batch(&tenant, &ops)
                .map(|(outcomes, firings)| Response::Committed { outcomes, firings }),
            Request::Query {
                tenant,
                text,
                params,
            } => self
                .tenant_mut(&tenant)
                .and_then(|t| t.query(&text, &params))
                .map(|relation| Response::Rows { relation }),
            Request::Snapshot { tenant } => self
                .snapshot(&tenant)
                .map(|bytes| Response::SnapshotData { bytes }),
            Request::Firings { tenant, from } => self
                .tenant_mut(&tenant)
                .map(|t| t.firings_from(usize::try_from(from).unwrap_or(usize::MAX)))
                .map(|records| Response::FiringsList { from, records }),
            Request::SubscribeFirings { tenant } => {
                let r = self.tenant_mut(&tenant).map(|_| ());
                if r.is_ok() {
                    self.subscribers
                        .entry(tenant)
                        .or_default()
                        .push((id, Arc::clone(&writer)));
                    self.metrics.subscriptions.add(1);
                }
                r.map(|()| Response::Subscribed)
            }
            Request::TenantStats { tenant } => {
                self.stats(&tenant).map(|(s, wal_bytes)| Response::Stats {
                    states: s.states as u64,
                    rules: s.rules as u64,
                    firings: s.firings as u64,
                    retained: s.retained as u64,
                    now: s.now,
                    wal_bytes,
                    batch_safety: s.batch_safety.gauge_value(),
                })
            }
            other => Err(internal(&format!(
                "request `{}` is not worker-routable",
                request_kind(&other)
            ))),
        };
        let resp = r.unwrap_or_else(error_response);
        let ok = !matches!(resp, Response::Error { .. });
        self.metrics.observe_request(kind, t0, ok);
        send_response(&writer, id, &resp);
    }

    fn snapshot(&mut self, tenant: &str) -> Result<Vec<u8>> {
        self.tenant_mut(tenant).and_then(|t| {
            if t.is_vt() {
                return Err(ServerError::Remote {
                    code: ErrorCode::Unsupported,
                    message: format!(
                        "tenant `{tenant}` is a valid-time tenant; its log is its snapshot"
                    ),
                });
            }
            let snap = t.shard().adb().snapshot().map_err(ServerError::Core)?;
            Ok(encode_snapshot(&snap))
        })
    }

    fn stats(&mut self, tenant: &str) -> Result<(ShardStats, u64)> {
        let r = self.tenant_mut(tenant).map(|t| {
            let stats = t.stats();
            let wal = t.wal_bytes();
            (stats, wal, t.watermark())
        });
        if let Ok((stats, wal, watermark)) = &r {
            publish_tenant_gauges(tenant, stats, *wal);
            if let Some(wm) = watermark {
                publish_vt_watermark(tenant, *wm);
            }
        }
        r.map(|(stats, wal, _)| (stats, wal))
    }

    fn create(&mut self, name: &str, durable: bool, vt: Option<i64>) -> Result<()> {
        let mcfg = self.cfg.manager_config();
        let tenant = match (durable, vt) {
            (true, vt) => {
                let root = self
                    .cfg
                    .data_dir
                    .clone()
                    .ok_or_else(|| internal("durable create routed without data_dir"))?;
                let dir = root.join(name);
                match vt {
                    // `Tenant::durable` dispatches on the on-disk `vt.meta`
                    // marker itself, so startup recovery reopens valid-time
                    // tenants without knowing their kind in advance.
                    None => Tenant::durable(name, &dir, mcfg, self.cfg.checkpoint)?,
                    Some(delta) => Tenant::durable_vt(name, &dir, delta, self.cfg.checkpoint.sync)?,
                }
            }
            (false, None) => Tenant::volatile(name, mcfg),
            (false, Some(delta)) => Tenant::volatile_vt(name, delta),
        };
        self.tenants.insert(name.to_string(), tenant);
        Ok(())
    }

    /// Folds one group apply's duration and fence count into the tenant's
    /// adaptive state.
    fn observe_apply(&mut self, tenant: &str, ops: usize, dt: Duration) {
        let fences = self
            .tenants
            .get(tenant)
            .map(|t| t.batch_fence_drains())
            .unwrap_or(0);
        let dt_ns = u64::try_from(dt.as_nanos()).unwrap_or(u64::MAX);
        self.adaptive
            .entry(tenant.to_string())
            .or_default()
            .observe(ops as u64, dt_ns, fences);
    }

    #[allow(clippy::type_complexity)]
    fn commit(
        &mut self,
        tenant: &str,
        ops: &[LogicalOp],
    ) -> Result<(Vec<std::result::Result<(), String>>, Vec<FiringRecord>)> {
        let t0 = Instant::now();
        let t = self.tenant_mut(tenant)?;
        let mut outcomes = Vec::with_capacity(ops.len());
        let mut firings = Vec::new();
        for op in ops {
            let out = t.apply(op)?;
            outcomes.push(out.result);
            firings.extend(out.firings);
        }
        let stats = t.stats();
        let wal = t.wal_bytes();
        // On a valid-time tenant the subscriber stream is the phase-tagged
        // event stream; the outcome's confirmed records answer the request
        // but are not re-pushed as plain `Firing` frames.
        let is_vt = t.is_vt();
        let watermark = t.watermark();
        let events = t.drain_vt_events();
        publish_tenant_gauges(tenant, &stats, wal);
        if let Some(wm) = watermark {
            publish_vt_watermark(tenant, wm);
        }
        self.observe_apply(tenant, ops.len(), t0.elapsed());
        if !events.is_empty() {
            self.push_vt_events(tenant, &events);
        }
        if !is_vt && !firings.is_empty() {
            self.push_firings(tenant, &firings);
        }
        Ok((outcomes, firings))
    }

    /// The streaming ingest path: clock to the arrival instant, ingest at
    /// the explicit valid time, stream the phase-tagged events to
    /// subscribers, and answer with watermark + events.
    #[allow(clippy::type_complexity)]
    fn commit_at(
        &mut self,
        tenant: &str,
        arrival: tdb_relation::Timestamp,
        valid: tdb_relation::Timestamp,
        ops: Vec<tdb_engine::WriteOp>,
    ) -> Result<(tdb_relation::Timestamp, Vec<tdb_core::VtFiringEvent>)> {
        let t0 = Instant::now();
        let t = self.tenant_mut(tenant)?;
        let (watermark, events) = t.commit_at(arrival, valid, ops)?;
        let stats = t.stats();
        let wal = t.wal_bytes();
        publish_tenant_gauges(tenant, &stats, wal);
        publish_vt_watermark(tenant, watermark);
        self.observe_apply(tenant, 1, t0.elapsed());
        if !events.is_empty() {
            self.push_vt_events(tenant, &events);
        }
        Ok((watermark, events))
    }

    /// One group commit: `ops` ride a single WAL record and fsync, and are
    /// dispatched as one evaluation slice.
    #[allow(clippy::type_complexity)]
    fn commit_batch(
        &mut self,
        tenant: &str,
        ops: &[LogicalOp],
    ) -> Result<(Vec<std::result::Result<(), String>>, Vec<FiringRecord>)> {
        let t0 = Instant::now();
        let t = self.tenant_mut(tenant)?;
        let outs = t.apply_batch(ops)?;
        let mut outcomes = Vec::with_capacity(outs.len());
        let mut firings = Vec::new();
        for out in outs {
            outcomes.push(out.result);
            firings.extend(out.firings);
        }
        let stats = t.stats();
        let wal = t.wal_bytes();
        let is_vt = t.is_vt();
        let watermark = t.watermark();
        let events = t.drain_vt_events();
        publish_tenant_gauges(tenant, &stats, wal);
        if let Some(wm) = watermark {
            publish_vt_watermark(tenant, wm);
        }
        self.observe_apply(tenant, ops.len(), t0.elapsed());
        if !events.is_empty() {
            self.push_vt_events(tenant, &events);
        }
        if !is_vt && !firings.is_empty() {
            self.push_firings(tenant, &firings);
        }
        Ok((outcomes, firings))
    }

    /// Time-window coalescer: starting from one dequeued commit, keeps
    /// draining *consecutive commits for the same tenant* from the worker
    /// queue for up to `window_us`, applies them as one group commit, and
    /// answers each original request with its own slice of the outcomes and
    /// firings. The first non-matching envelope closes the group and is
    /// returned to the worker loop as carry-over.
    ///
    /// The coalescer consults the tenant's batch-safety certificate first:
    /// a `CascadeRequired` rule set gains nothing from a wider evaluation
    /// slice (the eager cascade mode re-enters dispatch after every
    /// state-producing op anyway), so the window is skipped and the commit
    /// applies immediately instead of buying only fsync amortization with
    /// added latency. `Exact` and `Stratified` tenants coalesce normally.
    fn coalesced_commit(
        &mut self,
        rx: &Receiver<Envelope>,
        window_us: u64,
        tenant: String,
        ops: Vec<LogicalOp>,
        sink: CommitSink,
    ) -> Option<Envelope> {
        let mut all_ops = ops;
        let mut group: Vec<(usize, CommitSink)> = vec![(all_ops.len(), sink)];
        // Members' pending guards stay alive until their replies are sent,
        // so the router keeps seeing the tenant as busy.
        let mut guards: Vec<Option<PendingGuard>> = Vec::new();
        let mut carry = None;
        let coalescable = !matches!(
            self.tenants.get(&tenant).map(|t| t.batch_certificate()),
            Some(BatchCertificate::CascadeRequired)
        );
        let deadline = Instant::now() + Duration::from_micros(window_us);
        if coalescable {
            loop {
                let left = deadline.saturating_duration_since(Instant::now());
                if left.is_zero() {
                    break;
                }
                match rx.recv_timeout(left) {
                    Ok(env) => {
                        self.load.depth.fetch_sub(1, Ordering::AcqRel);
                        if let Some(t) = env.job.tenant() {
                            if let Some(buf) = self.expected.get_mut(t) {
                                buf.push(env);
                                continue;
                            }
                        }
                        let Envelope { job, _guard } = env;
                        match job {
                            Job::Commit {
                                tenant: t2,
                                ops,
                                reply,
                            } if t2 == tenant => {
                                group.push((ops.len(), CommitSink::Channel(reply)));
                                all_ops.extend(ops);
                                guards.push(_guard);
                            }
                            Job::Net {
                                id,
                                req: Request::Commit { tenant: t2, ops },
                                writer,
                                t0,
                            } if t2 == tenant => {
                                group.push((ops.len(), CommitSink::Net { id, writer, t0 }));
                                all_ops.extend(ops);
                                guards.push(_guard);
                            }
                            other => {
                                carry = Some(Envelope { job: other, _guard });
                                break;
                            }
                        }
                    }
                    Err(_) => break,
                }
            }
        }
        let t0 = Instant::now();
        match self.apply_grouped(&tenant, &all_ops) {
            Ok(outs) => {
                self.observe_apply(&tenant, all_ops.len(), t0.elapsed());
                let mut firings = Vec::new();
                let mut iter = outs.into_iter();
                let metrics = self.metrics.clone();
                for (n, sink) in group {
                    let mut outcomes = Vec::with_capacity(n);
                    let mut job_firings = Vec::new();
                    for out in iter.by_ref().take(n) {
                        outcomes.push(out.result);
                        job_firings.extend(out.firings);
                    }
                    firings.extend_from_slice(&job_firings);
                    sink.respond(&metrics, Ok((outcomes, job_firings)));
                }
                // `apply_grouped` just succeeded, so the tenant exists; the
                // lookup stays fallible to keep this path panic-free.
                let mut is_vt = false;
                let mut events = Vec::new();
                if let Some(t) = self.tenants.get_mut(&tenant) {
                    let (stats, wal) = (t.stats(), t.wal_bytes());
                    publish_tenant_gauges(&tenant, &stats, wal);
                    is_vt = t.is_vt();
                    events = t.drain_vt_events();
                }
                if !events.is_empty() {
                    self.push_vt_events(&tenant, &events);
                }
                if !is_vt && !firings.is_empty() {
                    self.push_firings(&tenant, &firings);
                }
            }
            Err(e) => {
                // A structural failure fails every commit in the group; the
                // error is rendered once and fanned out as typed copies.
                let (code, message) = match e {
                    ServerError::Remote { code, message } => (code, message),
                    other => (ErrorCode::Internal, other.to_string()),
                };
                let metrics = self.metrics.clone();
                for (_, sink) in group {
                    sink.respond(
                        &metrics,
                        Err(ServerError::Remote {
                            code,
                            message: message.clone(),
                        }),
                    );
                }
            }
        }
        drop(guards);
        carry
    }

    fn apply_grouped(
        &mut self,
        tenant: &str,
        ops: &[LogicalOp],
    ) -> Result<Vec<tdb_core::ApplyOutcome>> {
        self.tenant_mut(tenant)?.apply_batch(ops)
    }

    /// Streams `firings` to every subscriber of `tenant`, dropping dead
    /// connections.
    fn push_firings(&mut self, tenant: &str, firings: &[FiringRecord]) {
        let Some(subs) = self.subscribers.get_mut(tenant) else {
            return;
        };
        let metrics = &self.metrics;
        subs.retain(|(id, writer)| {
            let mut w = match writer.lock() {
                Ok(w) => w,
                Err(_) => {
                    metrics.subscriptions.add(-1);
                    return false;
                }
            };
            for f in firings {
                let payload = encode_response(*id, &Response::Firing { record: f.clone() });
                if write_frame(&mut *w, &payload).is_err() {
                    metrics.subscriptions.add(-1);
                    return false;
                }
                metrics.firings_streamed.inc();
            }
            let _ = w.flush();
            true
        });
    }

    /// Streams phase-tagged valid-time events to every subscriber of
    /// `tenant` (the vt analogue of [`WorkerState::push_firings`]: one
    /// `VtFiring` frame per event), counting each phase.
    fn push_vt_events(&mut self, tenant: &str, events: &[tdb_core::VtFiringEvent]) {
        for e in events {
            match e.phase {
                tdb_core::VtPhase::Tentative => self.metrics.vt_tentative.inc(),
                tdb_core::VtPhase::Confirmed => self.metrics.vt_confirmed.inc(),
                tdb_core::VtPhase::Retracted => self.metrics.vt_retractions.inc(),
            }
        }
        let Some(subs) = self.subscribers.get_mut(tenant) else {
            return;
        };
        let metrics = &self.metrics;
        subs.retain(|(id, writer)| {
            let mut w = match writer.lock() {
                Ok(w) => w,
                Err(_) => {
                    metrics.subscriptions.add(-1);
                    return false;
                }
            };
            for e in events {
                let payload = encode_response(*id, &Response::VtFiring { event: e.clone() });
                if write_frame(&mut *w, &payload).is_err() {
                    metrics.subscriptions.add(-1);
                    return false;
                }
                metrics.firings_streamed.inc();
            }
            let _ = w.flush();
            true
        });
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods)] // tests may unwrap
mod tests {
    use super::*;
    use tdb_engine::WriteOp;
    use tdb_relation::QueryDef;

    fn seed(rt: &Runtime, tenant: &str) {
        rt.create_tenant(tenant, false).unwrap();
        let (outcomes, _) = rt
            .commit(
                tenant,
                vec![
                    LogicalOp::SetItem {
                        name: "n".into(),
                        value: Value::Int(0),
                    },
                    LogicalOp::DefineQuery {
                        name: "n".into(),
                        def: QueryDef::new(0, tdb_relation::parse_query("item n").unwrap()),
                    },
                ],
            )
            .unwrap();
        assert!(outcomes.iter().all(|o| o.is_ok()));
    }

    fn bump(v: i64) -> Vec<LogicalOp> {
        vec![
            LogicalOp::AdvanceClock { delta: 1 },
            LogicalOp::Update {
                ops: vec![WriteOp::SetItem {
                    item: "n".into(),
                    value: Value::Int(v),
                }],
            },
        ]
    }

    #[test]
    fn tenants_route_and_serialize_independently() {
        let rt = Runtime::start(ServerConfig {
            workers: 2,
            ..ServerConfig::default()
        })
        .unwrap();
        for name in ["a", "b", "c"] {
            seed(&rt, name);
            rt.register_rules(name, "rule watch { when n() >= 5; then notify; }")
                .unwrap();
        }
        assert_eq!(rt.tenants(), vec!["a", "b", "c"]);
        assert!(matches!(
            rt.create_tenant("a", false).unwrap_err(),
            ServerError::Remote {
                code: ErrorCode::TenantExists,
                ..
            }
        ));

        let (_, firings_a) = rt.commit("a", bump(7)).unwrap();
        assert_eq!(firings_a.len(), 1);
        let (_, firings_b) = rt.commit("b", bump(3)).unwrap();
        assert!(firings_b.is_empty(), "tenant b must not see a's state");
        assert_eq!(
            rt.query("a", "item n", vec![]).unwrap(),
            Relation::scalar(Value::Int(7))
        );
        assert_eq!(rt.firings("a", 0).unwrap().len(), 1);
        assert_eq!(rt.firings("b", 0).unwrap().len(), 0);
        let (stats, wal) = rt.stats("a").unwrap();
        assert_eq!(stats.rules, 1);
        assert_eq!(wal, 0);
        rt.shutdown();
    }

    /// With a coalescing window configured, a `CascadeRequired` tenant
    /// skips the window (no coalescing gain) but commits stay exact: the
    /// eager cascade mode re-enters dispatch mid-batch, so a self-writing
    /// rule fires at the state that satisfied it, not at batch end.
    #[test]
    fn coalescer_consults_certificate_and_stays_exact() {
        let rt = Runtime::start(ServerConfig {
            workers: 1,
            coalesce_window_us: 500,
            ..ServerConfig::default()
        })
        .unwrap();
        seed(&rt, "t");
        let (_, findings) = rt
            .register_rules("t", "rule bump { when n() = 1; then set n := 2; }")
            .unwrap();
        assert!(
            findings
                .iter()
                .any(|f| f.contains("batch-safety: cascade-required")),
            "register reports the certificate: {findings:?}"
        );
        let (outcomes, firings) = rt
            .commit(
                "t",
                vec![
                    LogicalOp::AdvanceClock { delta: 1 },
                    LogicalOp::Update {
                        ops: vec![WriteOp::SetItem {
                            item: "n".into(),
                            value: Value::Int(1),
                        }],
                    },
                ],
            )
            .unwrap();
        assert!(outcomes.iter().all(|o| o.is_ok()));
        assert_eq!(firings.len(), 1);
        assert_eq!(firings[0].rule, "bump");
        assert_eq!(
            rt.query("t", "item n", vec![]).unwrap(),
            Relation::scalar(Value::Int(2)),
            "the fired action's write applied"
        );
        let (stats, _) = rt.stats("t").unwrap();
        assert_eq!(stats.batch_safety.gauge_value(), -1);
        rt.shutdown();
    }

    #[test]
    fn subscriptions_receive_pushed_firing_frames() {
        let rt = Runtime::start(ServerConfig::default()).unwrap();
        seed(&rt, "t");
        rt.register_rules("t", "rule watch { when n() >= 5; then notify; }")
            .unwrap();
        let buf: Arc<Mutex<Vec<u8>>> = Arc::new(Mutex::new(Vec::new()));
        #[derive(Debug)]
        struct VecWriter(Arc<Mutex<Vec<u8>>>);
        impl Write for VecWriter {
            fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(b);
                Ok(b.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        impl FrameSink for VecWriter {}
        rt.subscribe("t", 99, Arc::new(Mutex::new(VecWriter(buf.clone()))))
            .unwrap();
        rt.commit("t", bump(9)).unwrap();
        let bytes = buf.lock().unwrap().clone();
        let payload = crate::wire::read_frame(&mut &bytes[..]).unwrap();
        let (id, resp) = crate::wire::decode_response(&payload).unwrap();
        assert_eq!(id, 99);
        match resp {
            Response::Firing { record } => assert_eq!(record.rule, "watch"),
            other => panic!("expected firing frame, got {other:?}"),
        }
        rt.shutdown();
    }

    /// Re-pinning a tenant across workers preserves results, firing order,
    /// and live subscriptions (the shard, its subscribers and its adaptive
    /// state all move together).
    #[test]
    fn repin_preserves_order_and_subscriptions() {
        let rt = Runtime::start(ServerConfig {
            workers: 2,
            ..ServerConfig::default()
        })
        .unwrap();
        seed(&rt, "mv");
        rt.register_rules("mv", "rule watch { when n() >= 5; then notify; }")
            .unwrap();
        // Firings are edge-triggered, so each commit drops n below the
        // threshold and then crosses it again: exactly one firing each.
        let toggle = |v: i64| {
            vec![
                LogicalOp::AdvanceClock { delta: 1 },
                LogicalOp::Update {
                    ops: vec![WriteOp::SetItem {
                        item: "n".into(),
                        value: Value::Int(-1),
                    }],
                },
                LogicalOp::Update {
                    ops: vec![WriteOp::SetItem {
                        item: "n".into(),
                        value: Value::Int(v),
                    }],
                },
            ]
        };
        let buf: Arc<Mutex<Vec<u8>>> = Arc::new(Mutex::new(Vec::new()));
        #[derive(Debug)]
        struct VecWriter(Arc<Mutex<Vec<u8>>>);
        impl Write for VecWriter {
            fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(b);
                Ok(b.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        impl FrameSink for VecWriter {}
        rt.subscribe("mv", 7, Arc::new(Mutex::new(VecWriter(buf.clone()))))
            .unwrap();

        // A reply races the worker's pending-guard drop by a few µs, so an
        // immediate re-pin can be (correctly) refused; the planner would
        // just retry next tick. Spin like the planner does.
        let repin = |tenant: &str, to: usize| {
            for _ in 0..1000 {
                match rt.repin(tenant, to) {
                    Ok(()) => return,
                    Err(_) => std::thread::sleep(Duration::from_millis(1)),
                }
            }
            panic!("re-pin of `{tenant}` to worker {to} never became safe");
        };

        let before = rt.metrics.repins.get();
        // Bounce the tenant between both workers, committing in between:
        // every commit must land on exactly one owner, in order.
        for (i, dst) in [(1usize, 1usize), (2, 0), (3, 1), (4, 0)] {
            repin("mv", dst);
            let (outcomes, firings) = rt.commit("mv", toggle(i as i64 * 10)).unwrap();
            assert!(outcomes.iter().all(|o| o.is_ok()), "after repin to {dst}");
            assert_eq!(firings.len(), 1);
        }
        assert_eq!(rt.metrics.repins.get(), before + 4);
        assert_eq!(
            rt.query("mv", "item n", vec![]).unwrap(),
            Relation::scalar(Value::Int(40))
        );
        let all = rt.firings("mv", 0).unwrap();
        assert_eq!(all.len(), 4, "one firing per post-repin commit");
        let times: Vec<_> = all.iter().map(|f| f.time).collect();
        let mut sorted = times.clone();
        sorted.sort();
        assert_eq!(times, sorted, "per-tenant firing order survived moves");

        // The subscriber moved with the shard: 4 pushed frames, in order.
        let bytes = buf.lock().unwrap().clone();
        let mut rd: &[u8] = &bytes;
        let mut pushed = Vec::new();
        while let Ok(payload) = crate::wire::read_frame(&mut rd) {
            let (id, resp) = crate::wire::decode_response(&payload).unwrap();
            assert_eq!(id, 7);
            match resp {
                Response::Firing { record } => pushed.push(record),
                other => panic!("expected firing, got {other:?}"),
            }
        }
        assert_eq!(pushed, all, "pushed stream matches the firing log");

        // Busy tenants refuse to move: simulate in-flight work.
        {
            let route = rt.route.lock().unwrap();
            route
                .get("mv")
                .unwrap()
                .pending
                .fetch_add(1, Ordering::SeqCst);
        }
        assert!(rt.repin("mv", 1).is_err());
        {
            let route = rt.route.lock().unwrap();
            route
                .get("mv")
                .unwrap()
                .pending
                .fetch_sub(1, Ordering::SeqCst);
        }

        // A migration already in flight also refuses: Expect/Extract/
        // Install carry no pending guard, so the latch is the only gate
        // against a second overlapping move stranding the shard.
        {
            let route = rt.route.lock().unwrap();
            route
                .get("mv")
                .unwrap()
                .migrating
                .store(true, Ordering::SeqCst);
        }
        assert!(rt.repin("mv", 1).is_err());
        {
            let route = rt.route.lock().unwrap();
            route
                .get("mv")
                .unwrap()
                .migrating
                .store(false, Ordering::SeqCst);
        }
        // Cleared latch: moves work again (Install released it after each
        // bounce above, or no successful repin could have followed).
        repin("mv", 1);
        rt.shutdown();
    }

    /// A subscriber whose connection is already dead is pruned by the
    /// periodic sweep, not only by the next failed firing push — so a
    /// tenant that stops firing doesn't pin dead writers or inflate the
    /// subscriptions gauge indefinitely.
    #[test]
    fn sweep_prunes_dead_subscribers_without_a_firing() {
        let rt = Runtime::start(ServerConfig {
            workers: 1,
            ..ServerConfig::default()
        })
        .unwrap();
        seed(&rt, "swp");
        #[derive(Debug)]
        struct DeadWriter;
        impl Write for DeadWriter {
            fn write(&mut self, _b: &[u8]) -> std::io::Result<usize> {
                Err(std::io::ErrorKind::BrokenPipe.into())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        impl FrameSink for DeadWriter {
            fn is_dead(&self) -> bool {
                true
            }
        }
        rt.subscribe("swp", 1, Arc::new(Mutex::new(DeadWriter)))
            .unwrap();
        let before = rt.metrics.subscriptions.get();
        rt.sweep_subscribers();
        // Rendezvous behind the sweep job so it has definitely run.
        let _ = rt.stats("swp").unwrap();
        assert_eq!(rt.metrics.subscriptions.get(), before - 1);
        rt.shutdown();
    }

    /// The adaptive window follows the certificate: cascade-required
    /// tenants never open one, stratified tenants discount by fence rate,
    /// exact tenants track the observed apply latency.
    #[test]
    fn adaptive_window_respects_certificate_and_latency() {
        let mut a = AdaptiveState::default();
        assert_eq!(
            a.window_us(&BatchCertificate::Exact),
            ADAPTIVE_BOOTSTRAP_US,
            "bootstrap before any observation"
        );
        assert_eq!(a.window_us(&BatchCertificate::CascadeRequired), 0);

        // Observe ~2ms applies with no fences: window tracks latency.
        for _ in 0..8 {
            a.observe(10, 2_000_000, 0);
        }
        let w = a.window_us(&BatchCertificate::Exact);
        assert!((1_000..=3_000).contains(&w), "window {w}µs tracks ~2ms");

        // Every op fences: a stratified tenant's window collapses.
        let mut fences = 0;
        for _ in 0..8 {
            fences += 10;
            a.observe(10, 2_000_000, fences);
        }
        let w = a.window_us(&BatchCertificate::Stratified { strata: 2 });
        assert!(
            w < 300,
            "fence-saturated stratified window should collapse, got {w}µs"
        );
        // Latency is capped so a pathological fsync can't freeze a worker.
        let mut b = AdaptiveState::default();
        b.observe(1, u64::MAX / 2, 0);
        assert!(b.window_us(&BatchCertificate::Exact) <= ADAPTIVE_MAX_WINDOW_US);
        rt_smoke_for_net_jobs();
    }

    /// `submit_net` services tenant-free requests inline and routes
    /// tenant-scoped ones to workers that answer on the wire.
    fn rt_smoke_for_net_jobs() {
        let rt = Runtime::start(ServerConfig {
            workers: 1,
            ..ServerConfig::default()
        })
        .unwrap();
        seed(&rt, "net");
        let buf: Arc<Mutex<Vec<u8>>> = Arc::new(Mutex::new(Vec::new()));
        #[derive(Debug)]
        struct VecWriter(Arc<Mutex<Vec<u8>>>);
        impl Write for VecWriter {
            fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(b);
                Ok(b.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        impl FrameSink for VecWriter {}
        let writer: SharedWriter = Arc::new(Mutex::new(VecWriter(buf.clone())));
        assert!(matches!(
            rt.submit_net(1, Request::ListTenants, &writer, None),
            Some(Response::Tenants { .. })
        ));
        // A tenant-scoped request is answered by the worker on the writer.
        let r = rt.submit_net(
            2,
            Request::Commit {
                tenant: "net".into(),
                ops: bump(5),
            },
            &writer,
            None,
        );
        assert!(r.is_none(), "worker owns the response");
        // Rendezvous behind it to make sure the Net job was serviced.
        let _ = rt.stats("net").unwrap();
        let bytes = buf.lock().unwrap().clone();
        let payload = crate::wire::read_frame(&mut &bytes[..]).unwrap();
        let (id, resp) = crate::wire::decode_response(&payload).unwrap();
        assert_eq!(id, 2);
        assert!(matches!(resp, Response::Committed { .. }), "{resp:?}");
        rt.shutdown();
    }
}
