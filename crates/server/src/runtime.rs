//! The shard pool: a fixed set of OS worker threads, each owning the
//! tenants routed to it, fed through per-worker MPSC queues.
//!
//! Ownership model (see `DESIGN.md` §12): a tenant lives on exactly one
//! worker thread for its whole life — the worker's queue serializes every
//! op against it, so a tenant's firing log is as deterministic as a
//! single-process library run. Tenants on *different* workers share no
//! mutable state (the residual interning arena and compiled-program cache
//! are process-wide but internally synchronized and bounded), so workers
//! never contend beyond the global metrics registry.
//!
//! Requests travel as [`Job`]s with a rendezvous reply channel; firing
//! subscriptions are push-based — after every commit the owning worker
//! writes `Response::Firing` frames straight to each subscribed
//! connection's shared writer.

use std::collections::HashMap;
use std::io::Write;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;

use tdb_analysis::LintLevel;
use tdb_core::manager::{CascadeMode, ManagerConfig};
use tdb_core::rules::FiringRecord;
use tdb_core::storage::LogicalOp;
use tdb_core::BatchCertificate;
use tdb_core::{ShardStats, SyncPolicy};
use tdb_relation::{Relation, Value};
use tdb_storage::codec::encode_snapshot;
use tdb_storage::CheckpointPolicy;

use crate::metrics::{publish_tenant_gauges, ServerMetrics};
use crate::tenant::Tenant;
use crate::wire::{encode_response, write_frame, ErrorCode, Response};
use crate::{Result, ServerError};

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// TCP listen address; use port 0 to let the OS pick (tests).
    pub addr: String,
    /// Worker threads in the shard pool.
    pub workers: usize,
    /// Root directory for durable tenants (one subdirectory each). `None`
    /// makes `CreateTenant { durable: true }` a typed error.
    pub data_dir: Option<PathBuf>,
    /// Registration-time lint level applied to every tenant's manager.
    pub lint: LintLevel,
    /// Checkpoint/sync policy for durable tenants. The default syncs on
    /// every append: an acked commit survives `SIGKILL`.
    pub checkpoint: CheckpointPolicy,
    /// Group-commit window in microseconds. When non-zero, a worker that
    /// dequeues a commit keeps draining *consecutive commits for the same
    /// tenant* from its queue for up to this long and applies them as one
    /// batch — one WAL record, one fsync, one evaluation slice. `0`
    /// disables coalescing (every commit is its own batch).
    pub coalesce_window_us: u64,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:7171".into(),
            workers: 4,
            data_dir: None,
            lint: LintLevel::Warn,
            checkpoint: CheckpointPolicy {
                sync: SyncPolicy::Always,
                ..CheckpointPolicy::default()
            },
            coalesce_window_us: 0,
        }
    }
}

impl ServerConfig {
    fn manager_config(&self) -> ManagerConfig {
        ManagerConfig {
            lint: self.lint,
            // Tenants run the eager cascade mode: group commits (and the
            // coalescer) stay byte-identical to the per-op schedule for
            // every batch-safety certificate class — fences are inserted
            // only where the certificate says the fused slice could
            // diverge.
            cascade: CascadeMode::Eager,
            ..ManagerConfig::default()
        }
    }
}

/// A connection's outbound half, shared between its request/response loop
/// and the workers pushing subscription frames at it. The mutex is the
/// per-connection write serialization point.
pub type SharedWriter = Arc<Mutex<dyn Write + Send>>;

/// One unit of work for a shard worker. Replies are rendezvous channels;
/// a dropped reply receiver just discards the answer.
enum Job {
    /// Create (or, at startup, reopen) a tenant on this worker.
    Create {
        name: String,
        durable: bool,
        reply: Sender<Result<()>>,
    },
    Register {
        tenant: String,
        source: String,
        reply: Sender<Result<(Vec<String>, Vec<String>)>>,
    },
    Commit {
        tenant: String,
        ops: Vec<LogicalOp>,
        #[allow(clippy::type_complexity)]
        reply: Sender<Result<(Vec<std::result::Result<(), String>>, Vec<FiringRecord>)>>,
    },
    /// Group commit: `ops` become one WAL record / one fsync / one
    /// evaluation slice (see `ActiveDatabase::commit_batch`).
    CommitBatch {
        tenant: String,
        ops: Vec<LogicalOp>,
        #[allow(clippy::type_complexity)]
        reply: Sender<Result<(Vec<std::result::Result<(), String>>, Vec<FiringRecord>)>>,
    },
    Query {
        tenant: String,
        text: String,
        params: Vec<Value>,
        reply: Sender<Result<Relation>>,
    },
    Snapshot {
        tenant: String,
        reply: Sender<Result<Vec<u8>>>,
    },
    Firings {
        tenant: String,
        from: usize,
        reply: Sender<Result<Vec<FiringRecord>>>,
    },
    Subscribe {
        tenant: String,
        id: u64,
        writer: SharedWriter,
        reply: Sender<Result<()>>,
    },
    Stats {
        tenant: String,
        reply: Sender<Result<(ShardStats, u64)>>,
    },
}

impl std::fmt::Debug for Job {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let kind = match self {
            Job::Create { .. } => "Create",
            Job::Register { .. } => "Register",
            Job::Commit { .. } => "Commit",
            Job::CommitBatch { .. } => "CommitBatch",
            Job::Query { .. } => "Query",
            Job::Snapshot { .. } => "Snapshot",
            Job::Firings { .. } => "Firings",
            Job::Subscribe { .. } => "Subscribe",
            Job::Stats { .. } => "Stats",
        };
        write!(f, "Job::{kind}")
    }
}

/// The shard pool. Cheap to share (`Arc` it); [`Runtime::shutdown`]
/// consumes the last owner, drains the queues, checkpoints durable tenants
/// and joins the workers.
#[derive(Debug)]
pub struct Runtime {
    cfg: ServerConfig,
    queues: Vec<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
    /// tenant name → worker index. Entries are reserved before the Create
    /// job runs (and rolled back on failure) so two racing creates of one
    /// name serialize here, not on the worker.
    route: Mutex<HashMap<String, usize>>,
    next_worker: AtomicUsize,
    pub metrics: ServerMetrics,
}

impl Runtime {
    /// Spawns the pool and reopens any durable tenants found under
    /// `data_dir` (each subdirectory is one tenant, recovered via
    /// checkpoint + WAL replay before the server accepts connections).
    pub fn start(cfg: ServerConfig) -> Result<Runtime> {
        let workers = cfg.workers.max(1);
        let mut queues = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for i in 0..workers {
            let (tx, rx) = channel::<Job>();
            let wcfg = cfg.clone();
            let handle = std::thread::Builder::new()
                .name(format!("tdb-shard-{i}"))
                .spawn(move || worker_loop(rx, wcfg))
                .map_err(|e| ServerError::Storage(format!("spawning worker: {e}")))?;
            queues.push(tx);
            handles.push(handle);
        }
        let rt = Runtime {
            cfg,
            queues,
            workers: handles,
            route: Mutex::new(HashMap::new()),
            next_worker: AtomicUsize::new(0),
            metrics: ServerMetrics::resolve(),
        };
        rt.reopen_existing()?;
        Ok(rt)
    }

    /// Recovers every tenant directory under `data_dir`.
    fn reopen_existing(&self) -> Result<()> {
        let Some(root) = self.cfg.data_dir.clone() else {
            return Ok(());
        };
        if !root.exists() {
            std::fs::create_dir_all(&root)
                .map_err(|e| ServerError::Storage(format!("{}: {e}", root.display())))?;
            return Ok(());
        }
        let mut names: Vec<String> = std::fs::read_dir(&root)
            .map_err(|e| ServerError::Storage(format!("{}: {e}", root.display())))?
            .flatten()
            .filter(|e| e.path().is_dir())
            .filter_map(|e| e.file_name().to_str().map(String::from))
            .collect();
        names.sort();
        for name in names {
            self.create_tenant(&name, true)?;
        }
        Ok(())
    }

    /// Creates a tenant (or reopens a durable one — creation is idempotent
    /// against a directory left by a previous incarnation, which is how
    /// restart recovery works; a *live* duplicate name is a typed error).
    pub fn create_tenant(&self, name: &str, durable: bool) -> Result<()> {
        validate_tenant_name(name)?;
        if durable && self.cfg.data_dir.is_none() {
            return Err(ServerError::Remote {
                code: ErrorCode::Storage,
                message: "server started without --data-dir; durable tenants unavailable".into(),
            });
        }
        let worker = {
            // The routing table has no multi-step invariants (single
            // insert/remove per holder), so a poisoned lock — a panic on
            // some other connection thread — leaves it fully usable.
            let mut route = self.route.lock().unwrap_or_else(PoisonError::into_inner);
            if route.contains_key(name) {
                return Err(ServerError::Remote {
                    code: ErrorCode::TenantExists,
                    message: format!("tenant `{name}` already exists"),
                });
            }
            let w = self.next_worker.fetch_add(1, Ordering::Relaxed) % self.queues.len();
            route.insert(name.to_string(), w);
            w
        };
        let (tx, rx) = channel();
        let sent = self.queues[worker].send(Job::Create {
            name: name.to_string(),
            durable,
            reply: tx,
        });
        let result = match sent {
            Ok(()) => recv_reply(rx),
            Err(_) => Err(internal("worker queue closed")),
        };
        if result.is_err() {
            self.route
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .remove(name);
        } else {
            self.metrics.tenants.add(1);
        }
        result
    }

    /// Live tenant names, sorted.
    pub fn tenants(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .route
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .keys()
            .cloned()
            .collect();
        names.sort();
        names
    }

    fn send(&self, tenant: &str, job: Job) -> Result<()> {
        let worker = {
            let route = self.route.lock().unwrap_or_else(PoisonError::into_inner);
            match route.get(tenant) {
                Some(&w) => w,
                None => {
                    return Err(ServerError::Remote {
                        code: ErrorCode::NoSuchTenant,
                        message: format!("no tenant `{tenant}`"),
                    })
                }
            }
        };
        self.queues[worker]
            .send(job)
            .map_err(|_| internal("worker queue closed"))
    }

    pub fn register_rules(&self, tenant: &str, source: &str) -> Result<(Vec<String>, Vec<String>)> {
        let (tx, rx) = channel();
        self.send(
            tenant,
            Job::Register {
                tenant: tenant.to_string(),
                source: source.to_string(),
                reply: tx,
            },
        )?;
        recv_reply(rx)
    }

    #[allow(clippy::type_complexity)]
    pub fn commit(
        &self,
        tenant: &str,
        ops: Vec<LogicalOp>,
    ) -> Result<(Vec<std::result::Result<(), String>>, Vec<FiringRecord>)> {
        let (tx, rx) = channel();
        self.send(
            tenant,
            Job::Commit {
                tenant: tenant.to_string(),
                ops,
                reply: tx,
            },
        )?;
        recv_reply(rx)
    }

    /// Applies `ops` as one atomic group commit on the tenant's worker:
    /// one WAL record, one fsync, one batched evaluation slice.
    #[allow(clippy::type_complexity)]
    pub fn commit_batch(
        &self,
        tenant: &str,
        ops: Vec<LogicalOp>,
    ) -> Result<(Vec<std::result::Result<(), String>>, Vec<FiringRecord>)> {
        let (tx, rx) = channel();
        self.send(
            tenant,
            Job::CommitBatch {
                tenant: tenant.to_string(),
                ops,
                reply: tx,
            },
        )?;
        recv_reply(rx)
    }

    pub fn query(&self, tenant: &str, text: &str, params: Vec<Value>) -> Result<Relation> {
        let (tx, rx) = channel();
        self.send(
            tenant,
            Job::Query {
                tenant: tenant.to_string(),
                text: text.to_string(),
                params,
                reply: tx,
            },
        )?;
        recv_reply(rx)
    }

    pub fn snapshot(&self, tenant: &str) -> Result<Vec<u8>> {
        let (tx, rx) = channel();
        self.send(
            tenant,
            Job::Snapshot {
                tenant: tenant.to_string(),
                reply: tx,
            },
        )?;
        recv_reply(rx)
    }

    pub fn firings(&self, tenant: &str, from: usize) -> Result<Vec<FiringRecord>> {
        let (tx, rx) = channel();
        self.send(
            tenant,
            Job::Firings {
                tenant: tenant.to_string(),
                from,
                reply: tx,
            },
        )?;
        recv_reply(rx)
    }

    /// Registers `writer` for push-streamed firings of `tenant`,
    /// correlated by request id `id`.
    pub fn subscribe(&self, tenant: &str, id: u64, writer: SharedWriter) -> Result<()> {
        let (tx, rx) = channel();
        self.send(
            tenant,
            Job::Subscribe {
                tenant: tenant.to_string(),
                id,
                writer,
                reply: tx,
            },
        )?;
        recv_reply(rx)?;
        self.metrics.subscriptions.add(1);
        Ok(())
    }

    pub fn stats(&self, tenant: &str) -> Result<(ShardStats, u64)> {
        let (tx, rx) = channel();
        self.send(
            tenant,
            Job::Stats {
                tenant: tenant.to_string(),
                reply: tx,
            },
        )?;
        recv_reply(rx)
    }

    /// Drains every queue, checkpoints durable tenants, joins the workers.
    pub fn shutdown(self) {
        drop(self.queues);
        for h in self.workers {
            let _ = h.join();
        }
    }
}

fn internal(msg: &str) -> ServerError {
    ServerError::Remote {
        code: ErrorCode::Internal,
        message: msg.into(),
    }
}

fn recv_reply<T>(rx: Receiver<Result<T>>) -> Result<T> {
    rx.recv()
        .unwrap_or_else(|_| Err(internal("worker dropped the request")))
}

/// Tenant names become directory names; keep them path-safe.
fn validate_tenant_name(name: &str) -> Result<()> {
    let ok = !name.is_empty()
        && name.len() <= 64
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-');
    if ok {
        Ok(())
    } else {
        Err(ServerError::Remote {
            code: ErrorCode::Protocol,
            message: format!("invalid tenant name `{name}`: use 1-64 chars of [A-Za-z0-9_-]"),
        })
    }
}

// ---- worker -----------------------------------------------------------------

struct WorkerState {
    cfg: ServerConfig,
    tenants: HashMap<String, Tenant>,
    /// Per-tenant firing subscribers: (subscription request id, writer).
    subscribers: HashMap<String, Vec<(u64, SharedWriter)>>,
    metrics: ServerMetrics,
}

fn worker_loop(rx: Receiver<Job>, cfg: ServerConfig) {
    let window_us = cfg.coalesce_window_us;
    let mut st = WorkerState {
        cfg,
        tenants: HashMap::new(),
        subscribers: HashMap::new(),
        metrics: ServerMetrics::resolve(),
    };
    // When coalescing, a non-matching job dequeued while a group was open
    // carries over to the next iteration instead of being dropped.
    let mut carry: Option<Job> = None;
    loop {
        let job = match carry.take() {
            Some(j) => j,
            None => match rx.recv() {
                Ok(j) => j,
                Err(_) => break,
            },
        };
        match job {
            Job::Commit { tenant, ops, reply } if window_us > 0 => {
                carry = st.coalesced_commit(&rx, window_us, tenant, ops, reply);
            }
            other => st.handle(other),
        }
    }
    // Queue closed: graceful shutdown. Checkpoint durable tenants so the
    // next start recovers from a fresh snapshot instead of a long replay.
    for tenant in st.tenants.values_mut() {
        if tenant.durable_dir().is_some() {
            let _ = tenant.shard_mut().adb_mut().checkpoint_now();
        }
    }
}

impl WorkerState {
    fn tenant_mut(&mut self, name: &str) -> Result<&mut Tenant> {
        self.tenants
            .get_mut(name)
            .ok_or_else(|| ServerError::Remote {
                code: ErrorCode::NoSuchTenant,
                message: format!("no tenant `{name}`"),
            })
    }

    fn handle(&mut self, job: Job) {
        match job {
            Job::Create {
                name,
                durable,
                reply,
            } => {
                let r = self.create(&name, durable);
                let _ = reply.send(r);
            }
            Job::Register {
                tenant,
                source,
                reply,
            } => {
                let r = self
                    .tenant_mut(&tenant)
                    .and_then(|t| t.register_rules(&source));
                let _ = reply.send(r);
            }
            Job::Commit { tenant, ops, reply } => {
                let r = self.commit(&tenant, &ops);
                let _ = reply.send(r);
            }
            Job::CommitBatch { tenant, ops, reply } => {
                let r = self.commit_batch(&tenant, &ops);
                let _ = reply.send(r);
            }
            Job::Query {
                tenant,
                text,
                params,
                reply,
            } => {
                let r = self
                    .tenant_mut(&tenant)
                    .and_then(|t| t.query(&text, &params));
                let _ = reply.send(r);
            }
            Job::Snapshot { tenant, reply } => {
                let r = self.tenant_mut(&tenant).and_then(|t| {
                    let snap = t.shard().adb().snapshot().map_err(ServerError::Core)?;
                    Ok(encode_snapshot(&snap))
                });
                let _ = reply.send(r);
            }
            Job::Firings {
                tenant,
                from,
                reply,
            } => {
                let r = self
                    .tenant_mut(&tenant)
                    .map(|t| t.shard().firings_from(from));
                let _ = reply.send(r);
            }
            Job::Subscribe {
                tenant,
                id,
                writer,
                reply,
            } => {
                let r = self.tenant_mut(&tenant).map(|_| ());
                if r.is_ok() {
                    self.subscribers
                        .entry(tenant)
                        .or_default()
                        .push((id, writer));
                }
                let _ = reply.send(r);
            }
            Job::Stats { tenant, reply } => {
                let r = self.tenant_mut(&tenant).map(|t| {
                    let stats = t.stats();
                    let wal = t.wal_bytes();
                    (stats, wal)
                });
                if let Ok((stats, wal)) = &r {
                    publish_tenant_gauges(&tenant, stats, *wal);
                }
                let _ = reply.send(r);
            }
        }
    }

    fn create(&mut self, name: &str, durable: bool) -> Result<()> {
        let mcfg = self.cfg.manager_config();
        let tenant = if durable {
            let root = self
                .cfg
                .data_dir
                .clone()
                .ok_or_else(|| internal("durable create routed without data_dir"))?;
            Tenant::durable(name, &root.join(name), mcfg, self.cfg.checkpoint)?
        } else {
            Tenant::volatile(name, mcfg)
        };
        self.tenants.insert(name.to_string(), tenant);
        Ok(())
    }

    #[allow(clippy::type_complexity)]
    fn commit(
        &mut self,
        tenant: &str,
        ops: &[LogicalOp],
    ) -> Result<(Vec<std::result::Result<(), String>>, Vec<FiringRecord>)> {
        let t = self.tenant_mut(tenant)?;
        let mut outcomes = Vec::with_capacity(ops.len());
        let mut firings = Vec::new();
        for op in ops {
            let out = t.apply(op)?;
            outcomes.push(out.result);
            firings.extend(out.firings);
        }
        let stats = t.stats();
        let wal = t.wal_bytes();
        publish_tenant_gauges(tenant, &stats, wal);
        if !firings.is_empty() {
            self.push_firings(tenant, &firings);
        }
        Ok((outcomes, firings))
    }

    /// One group commit: `ops` ride a single WAL record and fsync, and are
    /// dispatched as one evaluation slice.
    #[allow(clippy::type_complexity)]
    fn commit_batch(
        &mut self,
        tenant: &str,
        ops: &[LogicalOp],
    ) -> Result<(Vec<std::result::Result<(), String>>, Vec<FiringRecord>)> {
        let t = self.tenant_mut(tenant)?;
        let outs = t.apply_batch(ops)?;
        let mut outcomes = Vec::with_capacity(outs.len());
        let mut firings = Vec::new();
        for out in outs {
            outcomes.push(out.result);
            firings.extend(out.firings);
        }
        let stats = t.stats();
        let wal = t.wal_bytes();
        publish_tenant_gauges(tenant, &stats, wal);
        if !firings.is_empty() {
            self.push_firings(tenant, &firings);
        }
        Ok((outcomes, firings))
    }

    /// Time-window coalescer: starting from one dequeued `Commit`, keeps
    /// draining *consecutive commits for the same tenant* from the worker
    /// queue for up to `window_us`, applies them as one group commit, and
    /// answers each original request with its own slice of the outcomes and
    /// firings. The first non-matching job closes the group and is returned
    /// to the worker loop as carry-over.
    ///
    /// The coalescer consults the tenant's batch-safety certificate first:
    /// a `CascadeRequired` rule set gains nothing from a wider evaluation
    /// slice (the eager cascade mode re-enters dispatch after every
    /// state-producing op anyway), so the window is skipped and the commit
    /// applies immediately instead of buying only fsync amortization with
    /// added latency. `Exact` and `Stratified` tenants coalesce normally.
    #[allow(clippy::type_complexity)]
    fn coalesced_commit(
        &mut self,
        rx: &Receiver<Job>,
        window_us: u64,
        tenant: String,
        ops: Vec<LogicalOp>,
        reply: Sender<Result<(Vec<std::result::Result<(), String>>, Vec<FiringRecord>)>>,
    ) -> Option<Job> {
        type CommitReply =
            Sender<Result<(Vec<std::result::Result<(), String>>, Vec<FiringRecord>)>>;
        let mut all_ops = ops;
        let mut group: Vec<(usize, CommitReply)> = vec![(all_ops.len(), reply)];
        let mut carry = None;
        let coalescable = !matches!(
            self.tenants.get(&tenant).map(|t| t.batch_certificate()),
            Some(BatchCertificate::CascadeRequired)
        );
        let deadline = std::time::Instant::now() + std::time::Duration::from_micros(window_us);
        if coalescable {
            loop {
                let left = deadline.saturating_duration_since(std::time::Instant::now());
                if left.is_zero() {
                    break;
                }
                match rx.recv_timeout(left) {
                    Ok(Job::Commit {
                        tenant: t2,
                        ops,
                        reply,
                    }) if t2 == tenant => {
                        group.push((ops.len(), reply));
                        all_ops.extend(ops);
                    }
                    Ok(other) => {
                        carry = Some(other);
                        break;
                    }
                    Err(_) => break,
                }
            }
        }
        match self.apply_grouped(&tenant, &all_ops) {
            Ok(outs) => {
                let mut firings = Vec::new();
                let mut iter = outs.into_iter();
                for (n, reply) in group {
                    let mut outcomes = Vec::with_capacity(n);
                    let mut job_firings = Vec::new();
                    for out in iter.by_ref().take(n) {
                        outcomes.push(out.result);
                        job_firings.extend(out.firings);
                    }
                    firings.extend_from_slice(&job_firings);
                    let _ = reply.send(Ok((outcomes, job_firings)));
                }
                // `apply_grouped` just succeeded, so the tenant exists; the
                // lookup stays fallible to keep this path panic-free.
                if let Some(t) = self.tenants.get(&tenant) {
                    let (stats, wal) = (t.stats(), t.wal_bytes());
                    publish_tenant_gauges(&tenant, &stats, wal);
                }
                if !firings.is_empty() {
                    self.push_firings(&tenant, &firings);
                }
            }
            Err(e) => {
                // A structural failure fails every commit in the group; the
                // error is rendered once and fanned out as typed copies.
                let (code, message) = match e {
                    ServerError::Remote { code, message } => (code, message),
                    other => (ErrorCode::Internal, other.to_string()),
                };
                for (_, reply) in group {
                    let _ = reply.send(Err(ServerError::Remote {
                        code,
                        message: message.clone(),
                    }));
                }
            }
        }
        carry
    }

    fn apply_grouped(
        &mut self,
        tenant: &str,
        ops: &[LogicalOp],
    ) -> Result<Vec<tdb_core::ApplyOutcome>> {
        self.tenant_mut(tenant)?.apply_batch(ops)
    }

    /// Streams `firings` to every subscriber of `tenant`, dropping dead
    /// connections.
    fn push_firings(&mut self, tenant: &str, firings: &[FiringRecord]) {
        let Some(subs) = self.subscribers.get_mut(tenant) else {
            return;
        };
        let metrics = &self.metrics;
        subs.retain(|(id, writer)| {
            let mut w = match writer.lock() {
                Ok(w) => w,
                Err(_) => {
                    metrics.subscriptions.add(-1);
                    return false;
                }
            };
            for f in firings {
                let payload = encode_response(*id, &Response::Firing { record: f.clone() });
                if write_frame(&mut *w, &payload).is_err() {
                    metrics.subscriptions.add(-1);
                    return false;
                }
                metrics.firings_streamed.inc();
            }
            true
        });
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods)] // tests may unwrap
mod tests {
    use super::*;
    use tdb_engine::WriteOp;
    use tdb_relation::QueryDef;

    fn seed(rt: &Runtime, tenant: &str) {
        rt.create_tenant(tenant, false).unwrap();
        let (outcomes, _) = rt
            .commit(
                tenant,
                vec![
                    LogicalOp::SetItem {
                        name: "n".into(),
                        value: Value::Int(0),
                    },
                    LogicalOp::DefineQuery {
                        name: "n".into(),
                        def: QueryDef::new(0, tdb_relation::parse_query("item n").unwrap()),
                    },
                ],
            )
            .unwrap();
        assert!(outcomes.iter().all(|o| o.is_ok()));
    }

    #[test]
    fn tenants_route_and_serialize_independently() {
        let rt = Runtime::start(ServerConfig {
            workers: 2,
            ..ServerConfig::default()
        })
        .unwrap();
        for name in ["a", "b", "c"] {
            seed(&rt, name);
            rt.register_rules(name, "rule watch { when n() >= 5; then notify; }")
                .unwrap();
        }
        assert_eq!(rt.tenants(), vec!["a", "b", "c"]);
        assert!(matches!(
            rt.create_tenant("a", false).unwrap_err(),
            ServerError::Remote {
                code: ErrorCode::TenantExists,
                ..
            }
        ));

        let bump = |v: i64| {
            vec![
                LogicalOp::AdvanceClock { delta: 1 },
                LogicalOp::Update {
                    ops: vec![WriteOp::SetItem {
                        item: "n".into(),
                        value: Value::Int(v),
                    }],
                },
            ]
        };
        let (_, firings_a) = rt.commit("a", bump(7)).unwrap();
        assert_eq!(firings_a.len(), 1);
        let (_, firings_b) = rt.commit("b", bump(3)).unwrap();
        assert!(firings_b.is_empty(), "tenant b must not see a's state");
        assert_eq!(
            rt.query("a", "item n", vec![]).unwrap(),
            Relation::scalar(Value::Int(7))
        );
        assert_eq!(rt.firings("a", 0).unwrap().len(), 1);
        assert_eq!(rt.firings("b", 0).unwrap().len(), 0);
        let (stats, wal) = rt.stats("a").unwrap();
        assert_eq!(stats.rules, 1);
        assert_eq!(wal, 0);
        rt.shutdown();
    }

    /// With a coalescing window configured, a `CascadeRequired` tenant
    /// skips the window (no coalescing gain) but commits stay exact: the
    /// eager cascade mode re-enters dispatch mid-batch, so a self-writing
    /// rule fires at the state that satisfied it, not at batch end.
    #[test]
    fn coalescer_consults_certificate_and_stays_exact() {
        let rt = Runtime::start(ServerConfig {
            workers: 1,
            coalesce_window_us: 500,
            ..ServerConfig::default()
        })
        .unwrap();
        seed(&rt, "t");
        let (_, findings) = rt
            .register_rules("t", "rule bump { when n() = 1; then set n := 2; }")
            .unwrap();
        assert!(
            findings
                .iter()
                .any(|f| f.contains("batch-safety: cascade-required")),
            "register reports the certificate: {findings:?}"
        );
        let (outcomes, firings) = rt
            .commit(
                "t",
                vec![
                    LogicalOp::AdvanceClock { delta: 1 },
                    LogicalOp::Update {
                        ops: vec![WriteOp::SetItem {
                            item: "n".into(),
                            value: Value::Int(1),
                        }],
                    },
                ],
            )
            .unwrap();
        assert!(outcomes.iter().all(|o| o.is_ok()));
        assert_eq!(firings.len(), 1);
        assert_eq!(firings[0].rule, "bump");
        assert_eq!(
            rt.query("t", "item n", vec![]).unwrap(),
            Relation::scalar(Value::Int(2)),
            "the fired action's write applied"
        );
        let (stats, _) = rt.stats("t").unwrap();
        assert_eq!(stats.batch_safety.gauge_value(), -1);
        rt.shutdown();
    }

    #[test]
    fn subscriptions_receive_pushed_firing_frames() {
        let rt = Runtime::start(ServerConfig::default()).unwrap();
        seed(&rt, "t");
        rt.register_rules("t", "rule watch { when n() >= 5; then notify; }")
            .unwrap();
        let buf: Arc<Mutex<Vec<u8>>> = Arc::new(Mutex::new(Vec::new()));
        #[derive(Debug)]
        struct VecWriter(Arc<Mutex<Vec<u8>>>);
        impl Write for VecWriter {
            fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(b);
                Ok(b.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        rt.subscribe("t", 99, Arc::new(Mutex::new(VecWriter(buf.clone()))))
            .unwrap();
        rt.commit(
            "t",
            vec![
                LogicalOp::AdvanceClock { delta: 1 },
                LogicalOp::Update {
                    ops: vec![WriteOp::SetItem {
                        item: "n".into(),
                        value: Value::Int(9),
                    }],
                },
            ],
        )
        .unwrap();
        let bytes = buf.lock().unwrap().clone();
        let payload = crate::wire::read_frame(&mut &bytes[..]).unwrap();
        let (id, resp) = crate::wire::decode_response(&payload).unwrap();
        assert_eq!(id, 99);
        match resp {
            Response::Firing { record } => assert_eq!(record.rule, "watch"),
            other => panic!("expected firing frame, got {other:?}"),
        }
        rt.shutdown();
    }
}
