//! A blocking client for the wire protocol.
//!
//! One [`Client`] is one connection. Requests are synchronous
//! (request/response, correlated by id); streamed firings from
//! [`Client::subscribe`] arrive on the same socket and are queued while a
//! response is awaited, then drained with [`Client::recv_firing`].

use std::collections::VecDeque;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use tdb_core::rules::FiringRecord;
use tdb_core::storage::LogicalOp;
use tdb_core::VtFiringEvent;
use tdb_engine::WriteOp;
use tdb_relation::{Relation, Timestamp, Value};

use crate::wire::{
    decode_response, encode_request, read_frame_into, write_frame, FrameScratch, MetricsFormat,
    Request, Response, PROTOCOL_VERSION,
};
use crate::{Result, ServerError};

/// What one `Commit` batch did.
#[derive(Debug, Clone, PartialEq)]
pub struct CommitOutcome {
    /// Per-op results in submission order (`Err` = op-level rejection,
    /// e.g. an integrity-constraint veto).
    pub outcomes: Vec<std::result::Result<(), String>>,
    /// Every firing the batch produced, in dispatch order.
    pub firings: Vec<FiringRecord>,
}

impl CommitOutcome {
    /// True when no op in the batch was rejected.
    pub fn all_ok(&self) -> bool {
        self.outcomes.iter().all(|o| o.is_ok())
    }
}

/// Per-tenant gauges as reported by `TenantStats`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantStats {
    pub states: u64,
    pub rules: u64,
    pub firings: u64,
    pub retained: u64,
    pub now: Timestamp,
    pub wal_bytes: u64,
    /// Batch-safety certificate, scalar-encoded: 0 = exact, k ≥ 1 =
    /// stratified with k strata, -1 = cascade-required.
    pub batch_safety: i64,
}

/// A blocking connection to a tdb-server.
#[derive(Debug)]
pub struct Client {
    reader: TcpStream,
    writer: TcpStream,
    next_id: u64,
    /// Streamed `Firing` frames that arrived while awaiting a response:
    /// `(subscription id, record)`.
    queued: VecDeque<(u64, FiringRecord)>,
    /// Streamed valid-time `VtFiring` frames, queued the same way.
    queued_vt: VecDeque<(u64, VtFiringEvent)>,
    /// Reusable frame-read buffer (grow-only with evict, see
    /// [`FrameScratch`]).
    scratch: FrameScratch,
}

impl Client {
    /// Connects and performs the version handshake.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let mut c = Client {
            writer: stream.try_clone()?,
            reader: stream,
            next_id: 1,
            queued: VecDeque::new(),
            queued_vt: VecDeque::new(),
            scratch: FrameScratch::new(),
        };
        match c.request(Request::Hello {
            version: PROTOCOL_VERSION,
        })? {
            Response::HelloOk { .. } => Ok(c),
            other => Err(unexpected("HelloOk", &other)),
        }
    }

    /// Read timeout for [`Client::recv_firing`] (and everything else).
    pub fn set_read_timeout(&self, dur: Option<Duration>) -> Result<()> {
        self.reader.set_read_timeout(dur)?;
        Ok(())
    }

    /// Sends `req` and waits for its response, queueing any streamed
    /// firing frames that arrive in between.
    pub fn request(&mut self, req: Request) -> Result<Response> {
        let id = self.next_id;
        self.next_id += 1;
        write_frame(&mut self.writer, &encode_request(id, &req))?;
        loop {
            let payload = read_frame_into(&mut self.reader, &mut self.scratch)?;
            let (rid, resp) = decode_response(payload)?;
            match resp {
                Response::Firing { record } => self.queued.push_back((rid, record)),
                Response::VtFiring { event } => self.queued_vt.push_back((rid, event)),
                Response::Error { code, message } if rid == id || rid == 0 => {
                    return Err(ServerError::Remote { code, message })
                }
                _ if rid == id => return Ok(resp),
                // A response to an id we never issued: protocol breakage.
                other => {
                    return Err(ServerError::Invalid(format!(
                        "response for unknown request id {rid}: {other:?}"
                    )))
                }
            }
        }
    }

    /// The next streamed firing: `(subscription id, record)`. Blocks until
    /// one arrives (subject to the read timeout).
    pub fn recv_firing(&mut self) -> Result<(u64, FiringRecord)> {
        if let Some(f) = self.queued.pop_front() {
            return Ok(f);
        }
        let payload = read_frame_into(&mut self.reader, &mut self.scratch)?;
        let (rid, resp) = decode_response(payload)?;
        match resp {
            Response::Firing { record } => Ok((rid, record)),
            Response::Error { code, message } => Err(ServerError::Remote { code, message }),
            other => Err(ServerError::Invalid(format!(
                "expected a streamed firing, got {other:?}"
            ))),
        }
    }

    pub fn create_tenant(&mut self, name: &str, durable: bool) -> Result<()> {
        match self.request(Request::CreateTenant {
            name: name.into(),
            durable,
        })? {
            Response::TenantCreated => Ok(()),
            other => Err(unexpected("TenantCreated", &other)),
        }
    }

    /// Creates a valid-time tenant: out-of-order `commit_at` ingests with
    /// disorder bound Δ = `max_delay` (`<= 0` takes the server default).
    pub fn create_vt_tenant(&mut self, name: &str, durable: bool, max_delay: i64) -> Result<()> {
        match self.request(Request::CreateVtTenant {
            name: name.into(),
            durable,
            max_delay,
        })? {
            Response::TenantCreated => Ok(()),
            other => Err(unexpected("TenantCreated", &other)),
        }
    }

    pub fn list_tenants(&mut self) -> Result<Vec<String>> {
        match self.request(Request::ListTenants)? {
            Response::Tenants { names } => Ok(names),
            other => Err(unexpected("Tenants", &other)),
        }
    }

    /// Registers rule-file text; returns `(registered names, lint
    /// findings)`.
    pub fn register_rules(
        &mut self,
        tenant: &str,
        source: &str,
    ) -> Result<(Vec<String>, Vec<String>)> {
        match self.request(Request::RegisterRule {
            tenant: tenant.into(),
            source: source.into(),
        })? {
            Response::RulesRegistered {
                registered,
                findings,
            } => Ok((registered, findings)),
            other => Err(unexpected("RulesRegistered", &other)),
        }
    }

    pub fn commit(&mut self, tenant: &str, ops: Vec<LogicalOp>) -> Result<CommitOutcome> {
        match self.request(Request::Commit {
            tenant: tenant.into(),
            ops,
        })? {
            Response::Committed { outcomes, firings } => Ok(CommitOutcome { outcomes, firings }),
            other => Err(unexpected("Committed", &other)),
        }
    }

    /// Streaming ingest on a valid-time tenant: applies `ops` at the
    /// explicit valid time `valid` (which may trail `arrival` by up to the
    /// tenant's Δ). Returns the post-ingest watermark and the phase-tagged
    /// stream events — tentative announcements, confirmations, retractions
    /// — the ingest produced.
    pub fn commit_at(
        &mut self,
        tenant: &str,
        arrival: Timestamp,
        valid: Timestamp,
        ops: Vec<WriteOp>,
    ) -> Result<(Timestamp, Vec<VtFiringEvent>)> {
        match self.request(Request::CommitAt {
            tenant: tenant.into(),
            arrival,
            valid,
            ops,
        })? {
            Response::VtCommitted { watermark, events } => Ok((watermark, events)),
            other => Err(unexpected("VtCommitted", &other)),
        }
    }

    /// Applies `ops` as one atomic group commit: the server writes a single
    /// WAL record, fsyncs once, and dispatches one evaluation slice. The
    /// `Ok` means the entire batch is durable; a crash mid-batch recovers
    /// none of it.
    pub fn commit_batch(&mut self, tenant: &str, ops: Vec<LogicalOp>) -> Result<CommitOutcome> {
        match self.request(Request::CommitBatch {
            tenant: tenant.into(),
            ops,
        })? {
            Response::Committed { outcomes, firings } => Ok(CommitOutcome { outcomes, firings }),
            other => Err(unexpected("Committed", &other)),
        }
    }

    pub fn query(&mut self, tenant: &str, text: &str, params: Vec<Value>) -> Result<Relation> {
        match self.request(Request::Query {
            tenant: tenant.into(),
            text: text.into(),
            params,
        })? {
            Response::Rows { relation } => Ok(relation),
            other => Err(unexpected("Rows", &other)),
        }
    }

    /// The tenant's encoded Theorem-1 snapshot
    /// (`tdb_storage::codec::decode_snapshot` reads it).
    pub fn snapshot(&mut self, tenant: &str) -> Result<Vec<u8>> {
        match self.request(Request::Snapshot {
            tenant: tenant.into(),
        })? {
            Response::SnapshotData { bytes } => Ok(bytes),
            other => Err(unexpected("SnapshotData", &other)),
        }
    }

    /// The next streamed valid-time event: `(subscription id, event)`.
    /// Blocks until one arrives (subject to the read timeout).
    pub fn recv_vt_event(&mut self) -> Result<(u64, VtFiringEvent)> {
        if let Some(e) = self.queued_vt.pop_front() {
            return Ok(e);
        }
        let payload = read_frame_into(&mut self.reader, &mut self.scratch)?;
        let (rid, resp) = decode_response(payload)?;
        match resp {
            Response::VtFiring { event } => Ok((rid, event)),
            Response::Firing { record } => {
                self.queued.push_back((rid, record));
                Err(ServerError::Invalid(
                    "expected a streamed valid-time event, got a plain firing (queued)".into(),
                ))
            }
            Response::Error { code, message } => Err(ServerError::Remote { code, message }),
            other => Err(ServerError::Invalid(format!(
                "expected a streamed valid-time event, got {other:?}"
            ))),
        }
    }

    pub fn firings(&mut self, tenant: &str, from: u64) -> Result<Vec<FiringRecord>> {
        match self.request(Request::Firings {
            tenant: tenant.into(),
            from,
        })? {
            Response::FiringsList { records, .. } => Ok(records),
            other => Err(unexpected("FiringsList", &other)),
        }
    }

    /// Subscribes this connection to the tenant's future firings; returns
    /// the subscription id streamed frames will carry.
    pub fn subscribe(&mut self, tenant: &str) -> Result<u64> {
        let id = self.next_id; // the id `request` will assign
        match self.request(Request::SubscribeFirings {
            tenant: tenant.into(),
        })? {
            Response::Subscribed => Ok(id),
            other => Err(unexpected("Subscribed", &other)),
        }
    }

    pub fn tenant_stats(&mut self, tenant: &str) -> Result<TenantStats> {
        match self.request(Request::TenantStats {
            tenant: tenant.into(),
        })? {
            Response::Stats {
                states,
                rules,
                firings,
                retained,
                now,
                wal_bytes,
                batch_safety,
            } => Ok(TenantStats {
                states,
                rules,
                firings,
                retained,
                now,
                wal_bytes,
                batch_safety,
            }),
            other => Err(unexpected("Stats", &other)),
        }
    }

    /// Metrics exposition from the server's shared registry.
    pub fn metrics(&mut self, format: MetricsFormat) -> Result<String> {
        match self.request(Request::Metrics { format })? {
            Response::MetricsText { text } => Ok(text),
            other => Err(unexpected("MetricsText", &other)),
        }
    }

    /// Asks the server to checkpoint and exit.
    pub fn shutdown(&mut self) -> Result<()> {
        match self.request(Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            other => Err(unexpected("ShuttingDown", &other)),
        }
    }
}

fn unexpected(wanted: &str, got: &Response) -> ServerError {
    ServerError::Invalid(format!("expected {wanted}, got {got:?}"))
}
