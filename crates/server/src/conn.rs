//! Per-connection state for the readiness-based connection layer: the
//! outbound byte queue with backpressure, the [`ConnTx`] writer handed to
//! shard workers, and the poller-side [`Conn`] record.
//!
//! Write path: everything destined for a connection — the poller's own
//! responses and subscription frames pushed by shard workers — goes through
//! one `Arc<Mutex<ConnTx>>` (coerced to [`SharedWriter`]). That outer mutex
//! is held across a whole `write_frame` call, so frames from different
//! threads never interleave. `ConnTx` appends into the connection's
//! [`ConnShared`] outbound buffer and wakes the poller; the poller drains
//! the buffer to the nonblocking socket, resuming partial writes when
//! `poll(2)` reports the fd writable again.
//!
//! Backpressure: crossing the *soft* limit opens a stall episode (counted
//! once per episode on `tdb_server_conn_backpressure_total`); crossing the
//! *hard* limit kills the queue — every further write errors, which makes
//! `push_firings` drop the subscription, and the poller closes the socket.
//! A slow consumer therefore costs one bounded buffer, never unbounded
//! memory.

use std::io::{self, Write};
use std::net::TcpStream;
use std::sync::{Arc, Mutex, PoisonError};

use tdb_obs::Counter;

use crate::poll::Waker;
use crate::runtime::{FrameSink, SharedWriter};
use crate::wire::FrameAssembler;

/// Default soft limit: pending outbound bytes beyond this count one
/// backpressure stall episode.
pub const DEFAULT_OUTBUF_SOFT: usize = 1 << 20;
/// Default hard limit: pending outbound bytes beyond this kill the
/// connection (typed disconnect instead of unbounded growth).
pub const DEFAULT_OUTBUF_HARD: usize = 8 << 20;
/// Keep at most this much drained capacity around between bursts.
const OUT_EVICT: usize = 1 << 20;
/// Compact the buffer once the drained prefix passes this.
const OUT_COMPACT: usize = 64 * 1024;

#[derive(Debug, Default)]
struct OutBuf {
    buf: Vec<u8>,
    /// Bytes `[..pos]` are already on the socket.
    pos: usize,
    /// Inside a backpressure episode (soft limit crossed, not yet drained).
    stalled: bool,
    killed: bool,
}

impl OutBuf {
    fn pending(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn compact(&mut self) {
        if self.pos == self.buf.len() {
            self.buf.clear();
            self.pos = 0;
            if self.buf.capacity() > OUT_EVICT {
                self.buf = Vec::new();
            }
        } else if self.pos > OUT_COMPACT && self.pos * 2 > self.buf.len() {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
    }
}

/// The half of a connection shared between writers (workers, the poller's
/// response path) and the poller's socket drain.
#[derive(Debug)]
pub struct ConnShared {
    out: Mutex<OutBuf>,
    waker: Waker,
    soft: usize,
    hard: usize,
    backpressure: Counter,
}

impl ConnShared {
    pub fn new(waker: Waker, soft: usize, hard: usize, backpressure: Counter) -> Arc<ConnShared> {
        Arc::new(ConnShared {
            out: Mutex::new(OutBuf::default()),
            waker,
            soft,
            hard: hard.max(soft),
            backpressure,
        })
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, OutBuf> {
        // Single-step appends/drains: a poisoned buffer is still coherent.
        self.out.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Queues `bytes` for the poller to drain. Fails (and kills the queue)
    /// once the hard limit would be crossed.
    fn push(&self, bytes: &[u8]) -> io::Result<()> {
        let mut out = self.lock();
        if out.killed {
            return Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "connection outbound queue killed",
            ));
        }
        if out.pending() + bytes.len() > self.hard {
            out.killed = true;
            self.waker.wake();
            return Err(io::Error::new(
                io::ErrorKind::WouldBlock,
                "connection outbound queue overflow (slow consumer)",
            ));
        }
        out.buf.extend_from_slice(bytes);
        if !out.stalled && out.pending() > self.soft {
            out.stalled = true;
            self.backpressure.inc();
        }
        Ok(())
    }

    /// Bytes queued and not yet written to the socket.
    pub fn pending(&self) -> usize {
        self.lock().pending()
    }

    /// Marks the queue dead: every later write errors. Used by the poller
    /// when the socket itself dies. Queued bytes are released immediately
    /// — nothing will ever drain them, and a dead subscriber's writer may
    /// outlive the socket until the next sweep.
    pub fn kill(&self) {
        let mut out = self.lock();
        out.killed = true;
        out.buf = Vec::new();
        out.pos = 0;
    }

    pub fn killed(&self) -> bool {
        self.lock().killed
    }

    /// Drains as much as the nonblocking socket accepts. Returns the bytes
    /// still pending afterwards; an `Err` means the socket is dead.
    pub fn flush_to(&self, stream: &mut TcpStream) -> io::Result<usize> {
        let mut out = self.lock();
        while out.pos < out.buf.len() {
            match stream.write(&out.buf[out.pos..]) {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(n) => out.pos += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        if out.stalled && out.pending() <= self.soft / 2 {
            out.stalled = false;
        }
        out.compact();
        Ok(out.pending())
    }
}

/// `io::Write` over a connection's outbound queue. Wrapped in
/// `Arc<Mutex<..>>` it *is* the connection's [`SharedWriter`], so worker
/// code (responses, `push_firings`) is identical across connection modes.
#[derive(Debug)]
pub struct ConnTx {
    shared: Arc<ConnShared>,
}

impl ConnTx {
    pub fn new(shared: Arc<ConnShared>) -> ConnTx {
        ConnTx { shared }
    }
}

impl Write for ConnTx {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.shared.push(buf)?;
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        self.shared.waker.wake();
        Ok(())
    }
}

impl FrameSink for ConnTx {
    /// A killed queue means the poller closed (or is about to close) the
    /// socket; the subscriber sweep uses this to prune without a write.
    fn is_dead(&self) -> bool {
        self.shared.killed()
    }
}

/// One live connection as the poller sees it.
pub struct Conn {
    pub stream: TcpStream,
    pub asm: FrameAssembler,
    pub shared: Arc<ConnShared>,
    /// Handed to workers for responses and subscription pushes.
    pub writer: SharedWriter,
    /// Stop reading; close once the outbound queue drains (set after a
    /// protocol error frame or a shutdown response).
    pub closing: bool,
}

impl std::fmt::Debug for Conn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Conn")
            .field("peer", &self.stream.peer_addr().ok())
            .field("closing", &self.closing)
            .finish_non_exhaustive()
    }
}

impl Conn {
    pub fn new(stream: TcpStream, shared: Arc<ConnShared>) -> Conn {
        let writer: SharedWriter = Arc::new(Mutex::new(ConnTx::new(Arc::clone(&shared))));
        Conn {
            stream,
            asm: FrameAssembler::new(),
            shared,
            writer,
            closing: false,
        }
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods)] // tests may unwrap
mod tests {
    use super::*;
    use crate::poll::WakePair;

    fn counter() -> Counter {
        tdb_obs::global().counter("tdb_server_conn_backpressure_total")
    }

    #[test]
    fn soft_limit_counts_one_stall_episode() {
        let pair = WakePair::new().unwrap();
        let c = counter();
        let before = c.get();
        let shared = ConnShared::new(pair.waker(), 64, 1 << 20, c.clone());
        let mut tx = ConnTx::new(Arc::clone(&shared));
        // Many small writes past the soft limit: exactly one episode.
        for _ in 0..32 {
            tx.write_all(&[0u8; 16]).unwrap();
        }
        assert_eq!(c.get(), before + 1, "one episode, not one per write");
        assert_eq!(shared.pending(), 32 * 16);
    }

    #[test]
    fn hard_limit_kills_the_queue_with_a_typed_error() {
        let pair = WakePair::new().unwrap();
        let shared = ConnShared::new(pair.waker(), 32, 128, counter());
        let mut tx = ConnTx::new(Arc::clone(&shared));
        tx.write_all(&[0u8; 100]).unwrap();
        let err = tx.write(&[0u8; 100]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::WouldBlock, "{err}");
        assert!(shared.killed());
        // Dead for good: the memory is bounded and writers learn it.
        let err = tx.write(&[1u8; 1]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::BrokenPipe, "{err}");
        assert_eq!(shared.pending(), 100, "overflowing write was not queued");
    }

    #[test]
    fn flush_to_resumes_partial_writes_and_clears_stall() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (mut server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let pair = WakePair::new().unwrap();
        let c = counter();
        let shared = ConnShared::new(pair.waker(), 1024, 64 << 20, c);
        let mut tx = ConnTx::new(Arc::clone(&shared));
        // Enough to overrun the kernel socket buffer: flush_to must stop at
        // WouldBlock and resume later without losing bytes.
        let payload = vec![7u8; 8 << 20];
        tx.write_all(&payload).unwrap();
        let mut drained = Vec::new();
        use std::io::Read as _;
        client.set_nonblocking(true).unwrap();
        let mut tmp = [0u8; 64 * 1024];
        loop {
            let left = shared.flush_to(&mut server).unwrap();
            loop {
                match client.read(&mut tmp) {
                    Ok(0) => break,
                    Ok(n) => drained.extend_from_slice(&tmp[..n]),
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) => panic!("{e}"),
                }
            }
            if left == 0 && drained.len() == payload.len() {
                break;
            }
        }
        assert_eq!(drained, payload);
        assert_eq!(shared.pending(), 0);
    }
}
