//! Rewriting derived operators into the core logic.
//!
//! The basic operators are `Since` and `Lasttime`; "other temporal
//! operators, such as Previously and Throughout the Past, can be expressed
//! in terms of the basic operators":
//!
//! * `Previously g  ≡  true Since g`
//! * `ThroughoutPast g  ≡  ¬(true Since ¬g)`
//!
//! The incremental evaluator operates on the core form, which keeps its
//! recurrences to exactly the cases the paper analyses.

use crate::formula::Formula;
use crate::term::{TemporalAgg, Term};

/// Rewrites `f` into core form: no `Previously` / `ThroughoutPast` nodes
/// remain, including inside aggregate sub-formulas.
pub fn to_core(f: &Formula) -> Formula {
    match f {
        Formula::True => Formula::True,
        Formula::False => Formula::False,
        Formula::Cmp(op, a, b) => Formula::Cmp(*op, core_term(a), core_term(b)),
        Formula::Member { source, pattern } => Formula::Member {
            source: crate::formula::QueryRef {
                name: source.name.clone(),
                args: source.args.iter().map(core_term).collect(),
            },
            pattern: pattern.iter().map(core_term).collect(),
        },
        Formula::Event { name, pattern } => Formula::Event {
            name: name.clone(),
            pattern: pattern.iter().map(core_term).collect(),
        },
        Formula::Not(g) => Formula::not(to_core(g)),
        Formula::And(gs) => Formula::And(gs.iter().map(to_core).collect()),
        Formula::Or(gs) => Formula::Or(gs.iter().map(to_core).collect()),
        Formula::Since(g, h) => Formula::since(to_core(g), to_core(h)),
        Formula::Lasttime(g) => Formula::lasttime(to_core(g)),
        Formula::Previously(g) => Formula::since(Formula::True, to_core(g)),
        Formula::ThroughoutPast(g) => {
            Formula::not(Formula::since(Formula::True, Formula::not(to_core(g))))
        }
        Formula::Assign { var, term, body } => {
            Formula::assign(var.clone(), core_term(term), to_core(body))
        }
    }
}

fn core_term(t: &Term) -> Term {
    match t {
        Term::Const(_) | Term::Var(_) | Term::Time => t.clone(),
        Term::Arith(op, a, b) => Term::arith(*op, core_term(a), core_term(b)),
        Term::Neg(a) => Term::Neg(Box::new(core_term(a))),
        Term::Abs(a) => Term::Abs(Box::new(core_term(a))),
        Term::Query { name, args } => Term::Query {
            name: name.clone(),
            args: args.iter().map(core_term).collect(),
        },
        Term::Agg(agg) => Term::Agg(Box::new(TemporalAgg {
            func: agg.func,
            query: core_term(&agg.query),
            start: to_core(&agg.start),
            sample: to_core(&agg.sample),
        })),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn previously_becomes_true_since() {
        let f = Formula::previously(Formula::event("e", vec![]));
        assert_eq!(
            to_core(&f),
            Formula::since(Formula::True, Formula::event("e", vec![]))
        );
    }

    #[test]
    fn throughout_past_becomes_negated_since() {
        let f = Formula::throughout_past(Formula::event("e", vec![]));
        assert_eq!(
            to_core(&f),
            Formula::not(Formula::since(
                Formula::True,
                Formula::not(Formula::event("e", vec![]))
            ))
        );
    }

    #[test]
    fn rewrites_inside_assignments_and_aggregates() {
        use tdb_relation::AggFunc;
        let agg = Term::agg(
            AggFunc::Sum,
            Term::lit(1i64),
            Formula::previously(Formula::True),
            Formula::True,
        );
        let f = Formula::assign(
            "x",
            agg,
            Formula::cmp(tdb_relation::CmpOp::Gt, Term::var("x"), Term::lit(0i64)),
        );
        let core = to_core(&f);
        let mut has_prev = false;
        core.visit(&mut |g| {
            if matches!(g, Formula::Previously(_)) {
                has_prev = true;
            }
        });
        assert!(!has_prev);
        // The aggregate's start formula was also rewritten.
        let start_rewritten = matches!(
            &core,
            Formula::Assign {
                term: Term::Agg(agg),
                ..
            } if matches!(agg.start, Formula::Since(..))
        );
        assert!(
            start_rewritten,
            "expected assignment over aggregate with a rewritten start formula, got {core}"
        );
    }

    #[test]
    fn core_form_is_idempotent() {
        let f = Formula::previously(Formula::lasttime(Formula::True));
        let once = to_core(&f);
        assert_eq!(to_core(&once), once);
    }
}
