//! PTL terms.
//!
//! "Every variable and constant is a term. If f is an n-ary function then
//! f(t1, …, tn) is a term." Function symbols cover both the standard
//! integer operations and names of database queries; we additionally embed
//! Section 6's temporal aggregate functions `f(q, φ, ψ)` as terms.

use std::fmt;

use tdb_relation::{AggFunc, ArithOp, Value};

use crate::formula::Formula;

/// A PTL term.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Term {
    /// A literal constant.
    Const(Value),
    /// A variable — free, or bound by an enclosing assignment operator.
    Var(String),
    /// The global clock, i.e. the `time` data item.
    Time,
    /// Arithmetic application of a standard function symbol.
    Arith(ArithOp, Box<Term>, Box<Term>),
    /// Arithmetic negation.
    Neg(Box<Term>),
    /// Absolute value.
    Abs(Box<Term>),
    /// A named database query applied to arguments — the paper's n-ary
    /// function symbol denoting a query (`price(x)`, `OVERPRICED()`).
    /// Scalar results stay scalar; multi-row/column results become
    /// relation-valued [`Value::Rel`].
    Query { name: String, args: Vec<Term> },
    /// A temporal aggregate `f(q, φ, ψ)` (Section 6).
    Agg(Box<TemporalAgg>),
}

/// A temporal aggregate: the aggregate `func` of the values of `query`,
/// taken at the sampling points where `sample` holds, starting from the
/// latest instant at which `start` held.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TemporalAgg {
    pub func: AggFunc,
    pub query: Term,
    /// The starting formula φ.
    pub start: Formula,
    /// The sampling formula ψ.
    pub sample: Formula,
}

impl Term {
    pub fn lit(v: impl Into<Value>) -> Term {
        Term::Const(v.into())
    }

    pub fn var(name: impl Into<String>) -> Term {
        Term::Var(name.into())
    }

    pub fn query(name: impl Into<String>, args: Vec<Term>) -> Term {
        Term::Query {
            name: name.into(),
            args,
        }
    }

    pub fn arith(op: ArithOp, a: Term, b: Term) -> Term {
        Term::Arith(op, Box::new(a), Box::new(b))
    }

    /// Builder named for the arithmetic symbol, not `std::ops::Add`.
    #[allow(clippy::should_implement_trait)]
    pub fn add(a: Term, b: Term) -> Term {
        Term::arith(ArithOp::Add, a, b)
    }

    #[allow(clippy::should_implement_trait)]
    pub fn sub(a: Term, b: Term) -> Term {
        Term::arith(ArithOp::Sub, a, b)
    }

    #[allow(clippy::should_implement_trait)]
    pub fn mul(a: Term, b: Term) -> Term {
        Term::arith(ArithOp::Mul, a, b)
    }

    pub fn agg(func: AggFunc, query: Term, start: Formula, sample: Formula) -> Term {
        Term::Agg(Box::new(TemporalAgg {
            func,
            query,
            start,
            sample,
        }))
    }

    /// Variables occurring in the term (including inside aggregate
    /// sub-formulas), in first-occurrence order.
    pub fn vars(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_vars(&mut out);
        out
    }

    pub(crate) fn collect_vars(&self, out: &mut Vec<String>) {
        match self {
            Term::Const(_) | Term::Time => {}
            Term::Var(v) => {
                if !out.contains(v) {
                    out.push(v.clone());
                }
            }
            Term::Arith(_, a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
            Term::Neg(a) | Term::Abs(a) => a.collect_vars(out),
            Term::Query { args, .. } => {
                for a in args {
                    a.collect_vars(out);
                }
            }
            Term::Agg(agg) => {
                agg.query.collect_vars(out);
                agg.start.collect_free_vars_into(out);
                agg.sample.collect_free_vars_into(out);
            }
        }
    }

    /// True if the term contains no variables at all (aggregates count as
    /// ground only if their query and formulas are variable-free).
    pub fn is_ground(&self) -> bool {
        self.vars().is_empty()
    }

    /// True if the term contains a temporal aggregate.
    pub fn has_aggregate(&self) -> bool {
        match self {
            Term::Agg(_) => true,
            Term::Const(_) | Term::Var(_) | Term::Time => false,
            Term::Arith(_, a, b) => a.has_aggregate() || b.has_aggregate(),
            Term::Neg(a) | Term::Abs(a) => a.has_aggregate(),
            Term::Query { args, .. } => args.iter().any(Term::has_aggregate),
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Const(v) => write!(f, "{v}"),
            Term::Var(v) => write!(f, "{v}"),
            Term::Time => write!(f, "time"),
            Term::Arith(op, a, b) => write!(f, "({a} {} {b})", op.symbol()),
            Term::Neg(a) => write!(f, "(-{a})"),
            Term::Abs(a) => write!(f, "abs({a})"),
            Term::Query { name, args } => {
                write!(f, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            Term::Agg(agg) => {
                write!(
                    f,
                    "{}({}; {}; {})",
                    agg.func, agg.query, agg.start, agg.sample
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vars_are_collected_once() {
        let t = Term::add(Term::var("x"), Term::mul(Term::var("x"), Term::var("y")));
        assert_eq!(t.vars(), vec!["x".to_string(), "y".into()]);
        assert!(!t.is_ground());
        assert!(Term::lit(3i64).is_ground());
    }

    #[test]
    fn query_args_contribute_vars() {
        let t = Term::query("price", vec![Term::var("stock")]);
        assert_eq!(t.vars(), vec!["stock".to_string()]);
    }

    #[test]
    fn display_forms() {
        let t = Term::sub(Term::Time, Term::lit(10i64));
        assert_eq!(t.to_string(), "(time - 10)");
        let q = Term::query("price", vec![Term::lit("IBM")]);
        assert_eq!(q.to_string(), "price(\"IBM\")");
    }

    #[test]
    fn aggregate_detection() {
        let a = Term::agg(
            AggFunc::Avg,
            Term::query("price", vec![Term::lit("IBM")]),
            Formula::True,
            Formula::True,
        );
        assert!(a.has_aggregate());
        assert!(Term::add(a, Term::lit(1i64)).has_aggregate());
        assert!(!Term::Time.has_aggregate());
    }
}
