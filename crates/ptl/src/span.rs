//! Source spans for parsed formulas.
//!
//! [`Formula`](crate::Formula) derives `Eq`/`Hash` and is memoized by
//! structure throughout the evaluators, so spans are **not** embedded in the
//! AST (two occurrences of `once @e` must stay equal regardless of where
//! they were written). Instead the parser builds a parallel [`SpanNode`]
//! tree whose shape mirrors the formula tree node for node: static analyses
//! walk the formula and the span tree in lockstep and can point a diagnostic
//! at the exact byte range of any subformula.

/// A half-open byte range `[start, end)` into the source text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Span {
    pub start: usize,
    pub end: usize,
}

impl Span {
    pub fn new(start: usize, end: usize) -> Span {
        Span { start, end }
    }

    /// The source slice this span covers, if it is in range.
    pub fn slice<'a>(&self, src: &'a str) -> Option<&'a str> {
        src.get(self.start..self.end)
    }

    /// 1-based `(line, column)` of the span start, counting bytes.
    pub fn line_col(&self, src: &str) -> (usize, usize) {
        let upto = &src.as_bytes()[..self.start.min(src.len())];
        let line = 1 + upto.iter().filter(|b| **b == b'\n').count();
        let col = 1 + upto.iter().rev().take_while(|b| **b != b'\n').count();
        (line, col)
    }
}

/// One node of the span tree built alongside a parsed [`Formula`]. The
/// children correspond to the formula node's subformulas, in order:
/// `Not`/`Lasttime`/`Previously`/`ThroughoutPast` have one child,
/// `And`/`Or` have one per conjunct/disjunct, `Since` has two (left, right),
/// `Assign` has one (the body), and atoms have none.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanNode {
    pub span: Span,
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    pub fn leaf(start: usize, end: usize) -> SpanNode {
        SpanNode {
            span: Span::new(start, end),
            children: Vec::new(),
        }
    }

    pub fn child(&self, i: usize) -> Option<&SpanNode> {
        self.children.get(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_col_counts_newlines() {
        let src = "ab\ncdef\ng";
        assert_eq!(Span::new(0, 2).line_col(src), (1, 1));
        assert_eq!(Span::new(4, 6).line_col(src), (2, 2));
        assert_eq!(Span::new(8, 9).line_col(src), (3, 1));
        assert_eq!(Span::new(4, 6).slice(src), Some("de"));
    }
}
