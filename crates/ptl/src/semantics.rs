//! Reference (naive) semantics of PTL over full system histories.
//!
//! This module is the executable form of the paper's Section 4 semantics:
//! formulas are interpreted at a state index of a [`History`], with direct
//! recursion over the structure — including the temporal aggregates of
//! Section 6, evaluated straight from their definition.
//!
//! It is deliberately *not* incremental: evaluating at state `i` may read
//! every state `0..=i`. It serves as
//!
//! 1. the ground truth that the incremental evaluator (`tdb-core`) and the
//!    auxiliary-relation evaluator are property-tested against, and
//! 2. the "re-evaluate from scratch on every update" baseline of
//!    experiment E1.

use std::collections::BTreeMap;

use tdb_engine::{History, SystemState};
use tdb_relation::{eval_arith, Relation, Value};

use crate::error::{PtlError, Result};
use crate::formula::Formula;
use crate::term::{TemporalAgg, Term};

/// A variable binding environment.
pub type Env = BTreeMap<String, Value>;

/// Upper bound on the candidate-binding cross product explored by
/// [`fire_bindings`]; beyond this the formula is effectively unsafe.
const MAX_BINDING_PRODUCT: usize = 250_000;

fn state(h: &History, i: usize) -> Result<&SystemState> {
    h.get(i).ok_or(PtlError::StateEvicted(i))
}

/// Converts a query result relation to a term value: a 1x1 relation is its
/// scalar, an empty 1-column relation is `Null`, anything else is
/// relation-valued.
pub fn relation_to_value(rel: Relation) -> Value {
    if rel.schema().arity() == 1 {
        if rel.is_empty() {
            return Value::Null;
        }
        if rel.len() == 1 {
            return rel.scalar_value().expect("1x1 checked");
        }
    }
    Value::Rel(std::sync::Arc::new(rel))
}

/// Evaluates a term at state `i` under `env`.
pub fn eval_term(t: &Term, h: &History, i: usize, env: &Env) -> Result<Value> {
    match t {
        Term::Const(v) => Ok(v.clone()),
        Term::Var(x) => env
            .get(x)
            .cloned()
            .ok_or_else(|| PtlError::UnboundVar(x.clone())),
        Term::Time => Ok(Value::Time(state(h, i)?.time())),
        Term::Arith(op, a, b) => {
            let a = eval_term(a, h, i, env)?;
            let b = eval_term(b, h, i, env)?;
            Ok(eval_arith(*op, &a, &b)?)
        }
        Term::Neg(a) => match eval_term(a, h, i, env)? {
            Value::Null => Ok(Value::Null),
            Value::Int(v) => Ok(Value::Int(-v)),
            Value::Float(v) => Ok(Value::float(-v)),
            v => Err(PtlError::TypeError(format!("cannot negate {v}"))),
        },
        Term::Abs(a) => match eval_term(a, h, i, env)? {
            Value::Null => Ok(Value::Null),
            Value::Int(v) => Ok(Value::Int(v.abs())),
            Value::Float(v) => Ok(Value::float(v.abs())),
            v => Err(PtlError::TypeError(format!("no absolute value for {v}"))),
        },
        Term::Query { name, args } => {
            let args: Vec<Value> = args
                .iter()
                .map(|a| eval_term(a, h, i, env))
                .collect::<Result<_>>()?;
            let rel = state(h, i)?.db().eval_named(name, &args)?;
            Ok(relation_to_value(rel))
        }
        Term::Agg(agg) => eval_aggregate(agg, h, i, env),
    }
}

/// Evaluates a temporal aggregate `f(q, φ, ψ)` from the Section 6
/// definition: let `j` be the latest index ≤ `i` whose prefix satisfies φ;
/// aggregate the values of `q` at every `k ∈ [j, i]` where ψ holds.
pub fn eval_aggregate(agg: &TemporalAgg, h: &History, i: usize, env: &Env) -> Result<Value> {
    let mut start = None;
    for j in (0..=i).rev() {
        if eval(&agg.start, h, j, env)? {
            start = Some(j);
            break;
        }
    }
    let mut values = Vec::new();
    if let Some(j) = start {
        for k in j..=i {
            if eval(&agg.sample, h, k, env)? {
                values.push(eval_term(&agg.query, h, k, env)?);
            }
        }
    }
    Ok(agg.func.apply(values)?)
}

/// Evaluates a formula at state `i` under `env`. Every variable the formula
/// reads must be bound — use [`fire_bindings`] for formulas with free
/// variables.
pub fn eval(f: &Formula, h: &History, i: usize, env: &Env) -> Result<bool> {
    match f {
        Formula::True => Ok(true),
        Formula::False => Ok(false),
        Formula::Cmp(op, a, b) => {
            let a = eval_term(a, h, i, env)?;
            let b = eval_term(b, h, i, env)?;
            Ok(op.eval(&a, &b))
        }
        Formula::Member { source, pattern } => {
            let args: Vec<Value> = source
                .args
                .iter()
                .map(|a| eval_term(a, h, i, env))
                .collect::<Result<_>>()?;
            let rel = state(h, i)?.db().eval_named(&source.name, &args)?;
            let pat: Vec<Value> = pattern
                .iter()
                .map(|t| eval_term(t, h, i, env))
                .collect::<Result<_>>()?;
            if rel.schema().arity() != pat.len() {
                return Err(PtlError::TypeError(format!(
                    "membership pattern arity {} does not match query `{}` arity {}",
                    pat.len(),
                    source.name,
                    rel.schema().arity()
                )));
            }
            let found = rel.iter().any(|row| row.values() == pat.as_slice());
            Ok(found)
        }
        Formula::Event { name, pattern } => {
            let pat: Vec<Value> = pattern
                .iter()
                .map(|t| eval_term(t, h, i, env))
                .collect::<Result<_>>()?;
            Ok(state(h, i)?
                .events()
                .named(name)
                .any(|e| e.args() == pat.as_slice()))
        }
        Formula::Not(g) => Ok(!eval(g, h, i, env)?),
        Formula::And(gs) => {
            for g in gs {
                if !eval(g, h, i, env)? {
                    return Ok(false);
                }
            }
            Ok(true)
        }
        Formula::Or(gs) => {
            for g in gs {
                if eval(g, h, i, env)? {
                    return Ok(true);
                }
            }
            Ok(false)
        }
        Formula::Since(g, hh) => {
            // g Since h at i: scanning down from i, succeed at the first
            // state satisfying h; fail as soon as g fails (no earlier
            // witness can then work).
            for j in (0..=i).rev() {
                if eval(hh, h, j, env)? {
                    return Ok(true);
                }
                if !eval(g, h, j, env)? {
                    return Ok(false);
                }
            }
            Ok(false)
        }
        Formula::Lasttime(g) => {
            if i == 0 {
                Ok(false)
            } else {
                eval(g, h, i - 1, env)
            }
        }
        Formula::Previously(g) => {
            for j in (0..=i).rev() {
                if eval(g, h, j, env)? {
                    return Ok(true);
                }
            }
            Ok(false)
        }
        Formula::ThroughoutPast(g) => {
            for j in 0..=i {
                if !eval(g, h, j, env)? {
                    return Ok(false);
                }
            }
            Ok(true)
        }
        Formula::Assign { var, term, body } => {
            // The assignment captures the term's value at the *current*
            // evaluation state and holds it fixed throughout the body.
            let v = eval_term(term, h, i, env)?;
            let mut env2 = env.clone();
            env2.insert(var.clone(), v);
            eval(body, h, i, &env2)
        }
    }
}

/// All bindings of the free variables of `f` that satisfy it at state `i`.
///
/// Candidates come from generator atoms (membership patterns and event
/// arguments), collected over *every* state `0..=i` — a generator may have
/// held only in the past (e.g. `Previously(x in names() and …)`). Each
/// candidate combination is then checked with [`eval`]. This is the oracle
/// for the incremental evaluator's binding extraction.
pub fn fire_bindings(f: &Formula, h: &History, i: usize, base: &Env) -> Result<Vec<Env>> {
    let free: Vec<String> = f
        .free_vars()
        .into_iter()
        .filter(|v| !base.contains_key(v))
        .collect();
    if free.is_empty() {
        return Ok(if eval(f, h, i, base)? {
            vec![base.clone()]
        } else {
            vec![]
        });
    }

    // Candidate values per free variable.
    let mut candidates: BTreeMap<String, Vec<Value>> =
        free.iter().map(|v| (v.clone(), Vec::new())).collect();
    collect_candidates(f, h, i, base, &mut candidates)?;

    let mut product = 1usize;
    for (v, c) in &mut candidates {
        c.sort();
        c.dedup();
        if c.is_empty() {
            return Ok(vec![]); // no generator ever produced a value
        }
        product = product.saturating_mul(c.len());
        if product > MAX_BINDING_PRODUCT {
            return Err(PtlError::Unsafe {
                var: v.clone(),
                reason: "candidate binding space is too large".into(),
            });
        }
    }

    let mut out = Vec::new();
    let names: Vec<&String> = candidates.keys().collect();
    let lists: Vec<&Vec<Value>> = candidates.values().collect();
    let mut idx = vec![0usize; names.len()];
    loop {
        let mut env = base.clone();
        for (k, name) in names.iter().enumerate() {
            env.insert((*name).clone(), lists[k][idx[k]].clone());
        }
        if eval(f, h, i, &env)? {
            out.push(env);
        }
        // Odometer increment.
        let mut k = 0;
        loop {
            if k == idx.len() {
                return Ok(out);
            }
            idx[k] += 1;
            if idx[k] < lists[k].len() {
                break;
            }
            idx[k] = 0;
            k += 1;
        }
    }
}

fn collect_candidates(
    f: &Formula,
    h: &History,
    i: usize,
    env: &Env,
    candidates: &mut BTreeMap<String, Vec<Value>>,
) -> Result<()> {
    match f {
        Formula::Member { source, pattern } => {
            let args: Vec<Value> = source
                .args
                .iter()
                .map(|a| eval_term(a, h, 0, env))
                .collect::<Result<_>>()
                .map_err(|_| PtlError::NonGroundGeneratorArgs {
                    query: source.name.clone(),
                    var: "?".into(),
                })?;
            for j in 0..=i {
                let Ok(rel) = state(h, j)?.db().eval_named(&source.name, &args) else {
                    continue;
                };
                for (p, t) in pattern.iter().enumerate() {
                    if let Term::Var(v) = t {
                        if let Some(c) = candidates.get_mut(v) {
                            let pidx = p.min(rel.schema().arity().saturating_sub(1));
                            for row in rel.iter() {
                                c.push(row.values()[pidx].clone());
                            }
                        }
                    }
                }
            }
            Ok(())
        }
        Formula::Event { name, pattern } => {
            for j in 0..=i {
                for e in state(h, j)?.events().named(name) {
                    if e.args().len() != pattern.len() {
                        continue;
                    }
                    for (p, t) in pattern.iter().enumerate() {
                        if let Term::Var(v) = t {
                            if let Some(c) = candidates.get_mut(v) {
                                c.push(e.args()[p].clone());
                            }
                        }
                    }
                }
            }
            Ok(())
        }
        Formula::Not(g)
        | Formula::Lasttime(g)
        | Formula::Previously(g)
        | Formula::ThroughoutPast(g) => collect_candidates(g, h, i, env, candidates),
        Formula::And(gs) | Formula::Or(gs) => {
            for g in gs {
                collect_candidates(g, h, i, env, candidates)?;
            }
            Ok(())
        }
        Formula::Since(g, hh) => {
            collect_candidates(g, h, i, env, candidates)?;
            collect_candidates(hh, h, i, env, candidates)
        }
        Formula::Assign { body, .. } => collect_candidates(body, h, i, env, candidates),
        Formula::True | Formula::False | Formula::Cmp(..) => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formula::QueryRef;
    use tdb_engine::{Engine, WriteOp};
    use tdb_relation::{parse_query, tuple, CmpOp, Database, QueryDef, Relation, Schema, Value};

    /// A tiny stock engine: relation STOCK(name, price), query price(x),
    /// query names().
    fn stock_engine() -> Engine {
        let mut db = Database::new();
        db.create_relation(
            "STOCK",
            Relation::empty(Schema::untyped(&["name", "price"])),
        )
        .unwrap();
        db.define_query(
            "price",
            QueryDef::new(
                1,
                parse_query("select price from STOCK where name = $0").unwrap(),
            ),
        );
        db.define_query(
            "names",
            QueryDef::new(0, parse_query("select name from STOCK").unwrap()),
        );
        Engine::new(db)
    }

    /// One price change = one system state (`Engine::apply_update`).
    fn set_price(e: &mut Engine, name: &str, p: i64) {
        let old = e
            .db()
            .relation("STOCK")
            .unwrap()
            .iter()
            .find_map(|t| (t.get(0) == Some(&Value::str(name))).then(|| t.clone()));
        let mut ops = Vec::new();
        if let Some(old) = old {
            ops.push(WriteOp::Delete {
                relation: "STOCK".into(),
                tuple: old,
            });
        }
        ops.push(WriteOp::Insert {
            relation: "STOCK".into(),
            tuple: tuple![name, p],
        });
        e.apply_update(ops).unwrap();
    }

    fn price_term(name: &str) -> Term {
        Term::query("price", vec![Term::lit(name)])
    }

    #[test]
    fn atoms_and_time() {
        let mut e = stock_engine();
        set_price(&mut e, "IBM", 72);
        let h = e.history();
        let i = h.last_index().unwrap();
        let env = Env::new();
        assert!(eval(
            &Formula::cmp(CmpOp::Gt, price_term("IBM"), Term::lit(50i64)),
            h,
            i,
            &env
        )
        .unwrap());
        // time at the last state is > 0 (auto-ticked).
        assert!(eval(
            &Formula::cmp(CmpOp::Gt, Term::Time, Term::lit(Value::Time(0.into()))),
            h,
            i,
            &env
        )
        .unwrap());
    }

    #[test]
    fn previously_finds_past_state() {
        let mut e = stock_engine();
        set_price(&mut e, "IBM", 72);
        set_price(&mut e, "IBM", 30);
        let h = e.history();
        let i = h.last_index().unwrap();
        let now_cheap = Formula::cmp(CmpOp::Lt, price_term("IBM"), Term::lit(50i64));
        let was_dear =
            Formula::previously(Formula::cmp(CmpOp::Gt, price_term("IBM"), Term::lit(50i64)));
        let env = Env::new();
        assert!(eval(&now_cheap, h, i, &env).unwrap());
        assert!(eval(&was_dear, h, i, &env).unwrap());
        // Previously ≡ true Since.
        let core = crate::rewrite::to_core(&was_dear);
        assert!(eval(&core, h, i, &env).unwrap());
    }

    #[test]
    fn since_requires_continuous_left_side() {
        // "price stays above 40 since it was 72": violated once price dips.
        let mut e = stock_engine();
        set_price(&mut e, "IBM", 72); // h
        set_price(&mut e, "IBM", 50); // g ok
        set_price(&mut e, "IBM", 30); // g fails
        set_price(&mut e, "IBM", 60); // g ok again — but chain broken
        let h = e.history();
        let f = Formula::since(
            Formula::cmp(CmpOp::Gt, price_term("IBM"), Term::lit(40i64)),
            Formula::cmp(CmpOp::Eq, price_term("IBM"), Term::lit(72i64)),
        );
        let env = Env::new();
        // At the state after the 50-update the condition held…
        let idx50 = h.last_index().unwrap() - 2;
        assert!(eval(&f, h, idx50, &env).unwrap());
        // …but at the end it does not (the 30-state broke the g chain).
        assert!(!eval(&f, h, h.last_index().unwrap(), &env).unwrap());
    }

    #[test]
    fn lasttime_semantics() {
        let mut e = stock_engine();
        set_price(&mut e, "IBM", 72);
        set_price(&mut e, "IBM", 30);
        let h = e.history();
        let i = h.last_index().unwrap();
        let f = Formula::lasttime(Formula::cmp(CmpOp::Eq, price_term("IBM"), Term::lit(72i64)));
        assert!(eval(&f, h, i, &Env::new()).unwrap());
        assert!(!eval(&f, h, 0, &Env::new()).unwrap());
    }

    /// The paper's worked example, exactly: f fires iff the IBM price
    /// doubled within 10 time units. History (price,time):
    /// (10,1) (15,2) (18,5) (25,8) — fires at the last state.
    #[test]
    fn ibm_doubled_paper_history_fires() {
        let f = ibm_doubled();
        let h = build_price_history(&[(10, 1), (15, 2), (18, 5), (25, 8)]);
        let env = Env::new();
        assert!(!eval(&f, &h, 1, &env).unwrap());
        assert!(!eval(&f, &h, 2, &env).unwrap());
        assert!(!eval(&f, &h, 3, &env).unwrap());
        assert!(eval(&f, &h, 4, &env).unwrap(), "25 >= 2*10 within 10 units");
    }

    /// Same formula on the optimization-section history:
    /// (10,1) (15,2) (18,5) (11,20) — never fires.
    #[test]
    fn ibm_doubled_pruned_history_does_not_fire() {
        let f = ibm_doubled();
        let h = build_price_history(&[(10, 1), (15, 2), (18, 5), (11, 20)]);
        for i in 1..=4 {
            assert!(!eval(&f, &h, i, &Env::new()).unwrap(), "state {i}");
        }
    }

    fn ibm_doubled() -> Formula {
        // [t := time][x := price(IBM)] Previously(price(IBM) <= 0.5x ∧ time >= t-10)
        Formula::assign(
            "t",
            Term::Time,
            Formula::assign(
                "x",
                price_term("IBM"),
                Formula::previously(Formula::and([
                    Formula::cmp(
                        CmpOp::Le,
                        price_term("IBM"),
                        Term::mul(Term::lit(0.5), Term::var("x")),
                    ),
                    Formula::cmp(
                        CmpOp::Ge,
                        Term::Time,
                        Term::sub(Term::var("t"), Term::lit(10i64)),
                    ),
                ])),
            ),
        )
    }

    /// Builds the paper's `(price, time)` histories: the initial state is
    /// index 0 at t0; each point is one state, so state indices match the
    /// paper's `i = 1, 2, 3, 4`.
    fn build_price_history(points: &[(i64, i64)]) -> History {
        let mut e = stock_engine();
        e.set_auto_tick(false);
        for &(p, t) in points {
            e.advance_clock_to(tdb_relation::Timestamp(t)).unwrap();
            let old = e
                .db()
                .relation("STOCK")
                .unwrap()
                .iter()
                .find_map(|tp| (tp.get(0) == Some(&Value::str("IBM"))).then(|| tp.clone()));
            let mut ops = Vec::new();
            if let Some(old) = old {
                ops.push(WriteOp::Delete {
                    relation: "STOCK".into(),
                    tuple: old,
                });
            }
            ops.push(WriteOp::Insert {
                relation: "STOCK".into(),
                tuple: tuple!["IBM", p],
            });
            e.apply_update(ops).unwrap();
        }
        e.history().clone()
    }

    #[test]
    fn assignment_captures_current_value() {
        // [x := price] lasttime(price < x): price rose since last state.
        let mut e = stock_engine();
        set_price(&mut e, "IBM", 10);
        set_price(&mut e, "IBM", 20);
        let h = e.history();
        let f = Formula::assign(
            "x",
            price_term("IBM"),
            Formula::lasttime(Formula::cmp(CmpOp::Lt, price_term("IBM"), Term::var("x"))),
        );
        assert!(eval(&f, h, h.last_index().unwrap(), &Env::new()).unwrap());
    }

    #[test]
    fn event_atoms_match_by_name_and_args() {
        let mut e = stock_engine();
        e.emit_event(tdb_engine::Event::new("login", vec![Value::str("alice")]))
            .unwrap();
        let h = e.history();
        let i = h.last_index().unwrap();
        let hit = Formula::event("login", vec![Term::lit("alice")]);
        let miss = Formula::event("login", vec![Term::lit("bob")]);
        assert!(eval(&hit, h, i, &Env::new()).unwrap());
        assert!(!eval(&miss, h, i, &Env::new()).unwrap());
    }

    #[test]
    fn fire_bindings_enumerates_generator_values() {
        let mut e = stock_engine();
        set_price(&mut e, "IBM", 350);
        set_price(&mut e, "DEC", 45);
        set_price(&mut e, "HP", 310);
        let h = e.history();
        let i = h.last_index().unwrap();
        // x in names() and price(x) >= 300 — fires for IBM and HP.
        let f = Formula::and([
            Formula::member(QueryRef::new("names", vec![]), vec![Term::var("x")]),
            Formula::cmp(
                CmpOp::Ge,
                Term::query("price", vec![Term::var("x")]),
                Term::lit(300i64),
            ),
        ]);
        let fired = fire_bindings(&f, h, i, &Env::new()).unwrap();
        let names: Vec<_> = fired.iter().map(|env| env["x"].clone()).collect();
        assert_eq!(names, vec![Value::str("HP"), Value::str("IBM")]);
    }

    #[test]
    fn fire_bindings_sees_past_generators() {
        let mut e = stock_engine();
        e.emit_event(tdb_engine::Event::new("login", vec![Value::str("alice")]))
            .unwrap();
        e.emit_event(tdb_engine::Event::simple("tick")).unwrap();
        let h = e.history();
        let i = h.last_index().unwrap();
        // previously @login(u): u bound from a past state.
        let f = Formula::previously(Formula::event("login", vec![Term::var("u")]));
        let fired = fire_bindings(&f, h, i, &Env::new()).unwrap();
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0]["u"], Value::str("alice"));
    }

    #[test]
    fn aggregate_sum_from_definition() {
        let mut e = stock_engine();
        set_price(&mut e, "IBM", 10);
        set_price(&mut e, "IBM", 20);
        set_price(&mut e, "IBM", 30);
        let h = e.history();
        let i = h.last_index().unwrap();
        // start: the very first state (time = t0); sample: price defined & > 0.
        let agg = Term::agg(
            tdb_relation::AggFunc::Sum,
            price_term("IBM"),
            Formula::cmp(CmpOp::Eq, Term::Time, Term::lit(Value::Time(0.into()))),
            Formula::cmp(CmpOp::Gt, price_term("IBM"), Term::lit(0i64)),
        );
        let v = eval_term(&agg, h, i, &Env::new()).unwrap();
        // States: init (no price), then one state per update: 10, 20, 30.
        assert_eq!(v, Value::Int(60));
    }

    #[test]
    fn aggregate_respects_start_reset() {
        let mut e = stock_engine();
        set_price(&mut e, "IBM", 10);
        set_price(&mut e, "IBM", 20);
        let h = e.history();
        let i = h.last_index().unwrap();
        // start: price = 20 (the most recent commit). Only that state samples.
        let agg = Term::agg(
            tdb_relation::AggFunc::Count,
            price_term("IBM"),
            Formula::cmp(CmpOp::Eq, price_term("IBM"), Term::lit(20i64)),
            Formula::cmp(CmpOp::Gt, price_term("IBM"), Term::lit(0i64)),
        );
        assert_eq!(eval_term(&agg, h, i, &Env::new()).unwrap(), Value::Int(1));
    }

    #[test]
    fn unbound_var_errors() {
        let e = stock_engine();
        let f = Formula::cmp(CmpOp::Gt, Term::var("x"), Term::lit(1i64));
        assert_eq!(
            eval(&f, e.history(), 0, &Env::new()).unwrap_err(),
            PtlError::UnboundVar("x".into())
        );
    }
}
