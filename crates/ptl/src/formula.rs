//! PTL formulas.
//!
//! The logic's operators (Section 4): comparisons of terms, event atoms,
//! membership atoms over database queries (how relations are referenced),
//! the boolean connectives, the basic past temporal operators `Since` and
//! `Lasttime`, the derived operators `Previously` (reflexive "once in the
//! past") and `ThroughoutPast`, and the assignment operator `[x := t] φ`
//! that binds `x` to the value of `t` at the evaluation instant.

use std::fmt;

use tdb_relation::CmpOp;

use crate::term::Term;

/// A reference to a named database query with argument terms — the source
/// of a membership atom.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct QueryRef {
    pub name: String,
    pub args: Vec<Term>,
}

impl QueryRef {
    pub fn new(name: impl Into<String>, args: Vec<Term>) -> QueryRef {
        QueryRef {
            name: name.into(),
            args,
        }
    }
}

/// A PTL formula.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Formula {
    True,
    False,
    /// Comparison of two terms: `t1 θ t2`.
    Cmp(CmpOp, Term, Term),
    /// Membership atom: the tuple of `pattern` terms is a row of the named
    /// query's result at the current state. Variables in the pattern act as
    /// *generators* — this is what makes free variables range-restricted
    /// (safe), the paper's answer to Chomicki's unsafe formulas.
    Member {
        source: QueryRef,
        pattern: Vec<Term>,
    },
    /// Event atom: an event with this name and matching arguments occurs in
    /// the current state. Pattern variables bind to event arguments.
    Event {
        name: String,
        pattern: Vec<Term>,
    },
    Not(Box<Formula>),
    And(Vec<Formula>),
    Or(Vec<Formula>),
    /// `g Since h`: h held at some past-or-present state, and g has held at
    /// every state since (exclusive of that state, inclusive of now).
    Since(Box<Formula>, Box<Formula>),
    /// `Lasttime g`: g held at the immediately preceding state.
    Lasttime(Box<Formula>),
    /// `Previously g` (a.k.a. *Once*): g held at some state ≤ now.
    /// Derived: `true Since g`.
    Previously(Box<Formula>),
    /// `ThroughoutPast g`: g held at every state ≤ now.
    /// Derived: `¬ Previously ¬g`.
    ThroughoutPast(Box<Formula>),
    /// The assignment operator `[var := term] body`.
    Assign {
        var: String,
        term: Term,
        body: Box<Formula>,
    },
}

impl Formula {
    pub fn cmp(op: CmpOp, a: Term, b: Term) -> Formula {
        Formula::Cmp(op, a, b)
    }

    pub fn event(name: impl Into<String>, pattern: Vec<Term>) -> Formula {
        Formula::Event {
            name: name.into(),
            pattern,
        }
    }

    pub fn member(source: QueryRef, pattern: Vec<Term>) -> Formula {
        Formula::Member { source, pattern }
    }

    /// Builder named for the logic's connective, not `std::ops::Not`.
    #[allow(clippy::should_implement_trait)]
    pub fn not(f: Formula) -> Formula {
        Formula::Not(Box::new(f))
    }

    pub fn and(fs: impl IntoIterator<Item = Formula>) -> Formula {
        let v: Vec<Formula> = fs.into_iter().collect();
        match v.len() {
            0 => Formula::True,
            1 => v.into_iter().next().expect("len checked"),
            _ => Formula::And(v),
        }
    }

    pub fn or(fs: impl IntoIterator<Item = Formula>) -> Formula {
        let v: Vec<Formula> = fs.into_iter().collect();
        match v.len() {
            0 => Formula::False,
            1 => v.into_iter().next().expect("len checked"),
            _ => Formula::Or(v),
        }
    }

    pub fn since(g: Formula, h: Formula) -> Formula {
        Formula::Since(Box::new(g), Box::new(h))
    }

    pub fn lasttime(g: Formula) -> Formula {
        Formula::Lasttime(Box::new(g))
    }

    pub fn previously(g: Formula) -> Formula {
        Formula::Previously(Box::new(g))
    }

    pub fn throughout_past(g: Formula) -> Formula {
        Formula::ThroughoutPast(Box::new(g))
    }

    pub fn assign(var: impl Into<String>, term: Term, body: Formula) -> Formula {
        Formula::Assign {
            var: var.into(),
            term,
            body: Box::new(body),
        }
    }

    /// Free variables, in first-occurrence order. A variable is free if it
    /// occurs outside the scope of an assignment binding it.
    pub fn free_vars(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_free_vars_into(&mut out);
        out
    }

    /// Appends free variables not already present (first-occurrence order).
    pub fn collect_free_vars_into(&self, out: &mut Vec<String>) {
        match self {
            Formula::True | Formula::False => {}
            Formula::Cmp(_, a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
            Formula::Member { source, pattern } => {
                for t in &source.args {
                    t.collect_vars(out);
                }
                for t in pattern {
                    t.collect_vars(out);
                }
            }
            Formula::Event { pattern, .. } => {
                for t in pattern {
                    t.collect_vars(out);
                }
            }
            Formula::Not(g)
            | Formula::Lasttime(g)
            | Formula::Previously(g)
            | Formula::ThroughoutPast(g) => g.collect_free_vars_into(out),
            Formula::And(gs) | Formula::Or(gs) => {
                for g in gs {
                    g.collect_free_vars_into(out);
                }
            }
            Formula::Since(g, h) => {
                g.collect_free_vars_into(out);
                h.collect_free_vars_into(out);
            }
            Formula::Assign { var, term, body } => {
                term.collect_vars(out);
                let mut inner = Vec::new();
                body.collect_free_vars_into(&mut inner);
                for v in inner {
                    if v != *var && !out.contains(&v) {
                        out.push(v);
                    }
                }
            }
        }
    }

    /// Variables bound by assignment operators anywhere in the formula.
    pub fn assigned_vars(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.visit(&mut |f| {
            if let Formula::Assign { var, .. } = f {
                out.push(var.clone());
            }
        });
        out
    }

    /// True if the formula is closed (no free variables).
    pub fn is_closed(&self) -> bool {
        self.free_vars().is_empty()
    }

    /// True if the formula contains any temporal operator (including inside
    /// assignment bodies). Atom-only formulas can skip history machinery.
    pub fn is_temporal(&self) -> bool {
        let mut found = false;
        self.visit(&mut |f| {
            if matches!(
                f,
                Formula::Since(..)
                    | Formula::Lasttime(..)
                    | Formula::Previously(..)
                    | Formula::ThroughoutPast(..)
            ) {
                found = true;
            }
        });
        found
    }

    /// Names of events the formula references (for relevance filtering).
    pub fn event_names(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.visit(&mut |f| {
            if let Formula::Event { name, .. } = f {
                if !out.contains(name) {
                    out.push(name.clone());
                }
            }
        });
        out
    }

    /// Names of queries the formula references — through membership atoms,
    /// query terms and aggregate queries (for relevance filtering).
    pub fn query_names(&self) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        fn add(out: &mut Vec<String>, n: &str) {
            if !out.iter().any(|m| m == n) {
                out.push(n.to_string());
            }
        }
        fn term_queries(t: &Term, out: &mut Vec<String>) {
            match t {
                Term::Query { name, args } => {
                    add(out, name);
                    for a in args {
                        term_queries(a, out);
                    }
                }
                Term::Arith(_, a, b) => {
                    term_queries(a, out);
                    term_queries(b, out);
                }
                Term::Neg(a) | Term::Abs(a) => term_queries(a, out),
                Term::Agg(agg) => {
                    term_queries(&agg.query, out);
                    formula_queries(&agg.start, out);
                    formula_queries(&agg.sample, out);
                }
                Term::Const(_) | Term::Var(_) | Term::Time => {}
            }
        }
        fn formula_queries(f: &Formula, out: &mut Vec<String>) {
            match f {
                Formula::Cmp(_, a, b) => {
                    term_queries(a, out);
                    term_queries(b, out);
                }
                Formula::Member { source, pattern } => {
                    add(out, &source.name);
                    for t in source.args.iter().chain(pattern) {
                        term_queries(t, out);
                    }
                }
                Formula::Event { pattern, .. } => {
                    for t in pattern {
                        term_queries(t, out);
                    }
                }
                Formula::Not(g)
                | Formula::Lasttime(g)
                | Formula::Previously(g)
                | Formula::ThroughoutPast(g) => formula_queries(g, out),
                Formula::And(gs) | Formula::Or(gs) => {
                    for g in gs {
                        formula_queries(g, out);
                    }
                }
                Formula::Since(g, h) => {
                    formula_queries(g, out);
                    formula_queries(h, out);
                }
                Formula::Assign { term, body, .. } => {
                    term_queries(term, out);
                    formula_queries(body, out);
                }
                Formula::True | Formula::False => {}
            }
        }
        formula_queries(self, &mut out);
        out
    }

    /// Visits every subformula, top-down (does not descend into aggregate
    /// sub-formulas inside terms).
    pub fn visit(&self, f: &mut impl FnMut(&Formula)) {
        f(self);
        match self {
            Formula::True
            | Formula::False
            | Formula::Cmp(..)
            | Formula::Member { .. }
            | Formula::Event { .. } => {}
            Formula::Not(g)
            | Formula::Lasttime(g)
            | Formula::Previously(g)
            | Formula::ThroughoutPast(g) => g.visit(f),
            Formula::And(gs) | Formula::Or(gs) => {
                for g in gs {
                    g.visit(f);
                }
            }
            Formula::Since(g, h) => {
                g.visit(f);
                h.visit(f);
            }
            Formula::Assign { body, .. } => body.visit(f),
        }
    }

    /// Number of subformula nodes (a size measure used by the experiments).
    pub fn size(&self) -> usize {
        let mut n = 0;
        self.visit(&mut |_| n += 1);
        n
    }
}

impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Formula::True => write!(f, "true"),
            Formula::False => write!(f, "false"),
            Formula::Cmp(op, a, b) => write!(f, "{a} {} {b}", op.symbol()),
            Formula::Member { source, pattern } => {
                if pattern.len() == 1 {
                    write!(f, "{} in ", pattern[0])?;
                } else {
                    write!(f, "(")?;
                    for (i, t) in pattern.iter().enumerate() {
                        if i > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "{t}")?;
                    }
                    write!(f, ") in ")?;
                }
                write!(f, "{}(", source.name)?;
                for (i, a) in source.args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            Formula::Event { name, pattern } => {
                write!(f, "@{name}")?;
                if !pattern.is_empty() {
                    write!(f, "(")?;
                    for (i, t) in pattern.iter().enumerate() {
                        if i > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "{t}")?;
                    }
                    write!(f, ")")?;
                }
                Ok(())
            }
            Formula::Not(g) => write!(f, "not ({g})"),
            Formula::And(gs) => {
                write!(f, "(")?;
                for (i, g) in gs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " and ")?;
                    }
                    write!(f, "{g}")?;
                }
                write!(f, ")")
            }
            Formula::Or(gs) => {
                write!(f, "(")?;
                for (i, g) in gs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " or ")?;
                    }
                    write!(f, "{g}")?;
                }
                write!(f, ")")
            }
            Formula::Since(g, h) => write!(f, "({g} since {h})"),
            Formula::Lasttime(g) => write!(f, "lasttime ({g})"),
            Formula::Previously(g) => write!(f, "previously ({g})"),
            Formula::ThroughoutPast(g) => write!(f, "throughout_past ({g})"),
            // Self-parenthesized: the parser gives assignment the loosest
            // binding (its body extends rightward), so a bare rendering
            // inside a connective would swallow the rest of the formula.
            Formula::Assign { var, term, body } => write!(f, "([{var} := {term}] {body})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdb_relation::Value;

    /// The paper's running example: the IBM price doubled within 10 units.
    fn ibm_doubled() -> Formula {
        let price = || Term::query("price", vec![Term::lit("IBM")]);
        Formula::assign(
            "t",
            Term::Time,
            Formula::assign(
                "x",
                price(),
                Formula::previously(Formula::and([
                    Formula::cmp(
                        CmpOp::Le,
                        price(),
                        Term::mul(Term::lit(0.5), Term::var("x")),
                    ),
                    Formula::cmp(
                        CmpOp::Ge,
                        Term::Time,
                        Term::sub(Term::var("t"), Term::lit(10i64)),
                    ),
                ])),
            ),
        )
    }

    #[test]
    fn ibm_formula_is_closed_and_temporal() {
        let f = ibm_doubled();
        assert!(f.is_closed());
        assert!(f.is_temporal());
        assert_eq!(f.assigned_vars(), vec!["t".to_string(), "x".into()]);
        assert_eq!(f.query_names(), vec!["price".to_string()]);
    }

    #[test]
    fn free_vars_respect_assignment_scope() {
        // [x := price(y)] (x > z) — y and z free, x bound.
        let f = Formula::assign(
            "x",
            Term::query("price", vec![Term::var("y")]),
            Formula::cmp(CmpOp::Gt, Term::var("x"), Term::var("z")),
        );
        assert_eq!(f.free_vars(), vec!["y".to_string(), "z".into()]);
    }

    #[test]
    fn event_and_member_vars_are_free() {
        let f = Formula::and([
            Formula::event("login", vec![Term::var("u")]),
            Formula::member(QueryRef::new("names", vec![]), vec![Term::var("s")]),
        ]);
        assert_eq!(f.free_vars(), vec!["u".to_string(), "s".into()]);
        assert_eq!(f.event_names(), vec!["login".to_string()]);
        assert_eq!(f.query_names(), vec!["names".to_string()]);
    }

    #[test]
    fn and_or_collapse_trivial_cases() {
        assert_eq!(Formula::and([]), Formula::True);
        assert_eq!(Formula::or([]), Formula::False);
        assert_eq!(Formula::and([Formula::True]), Formula::True);
    }

    #[test]
    fn size_counts_nodes() {
        let f = Formula::and([Formula::True, Formula::not(Formula::False)]);
        assert_eq!(f.size(), 4);
    }

    #[test]
    fn display_roundtrips_visually() {
        let f = Formula::since(
            Formula::not(Formula::event("logout", vec![Term::lit(Value::str("X"))])),
            Formula::event("login", vec![Term::lit(Value::str("X"))]),
        );
        assert_eq!(f.to_string(), "(not (@logout(\"X\")) since @login(\"X\"))");
    }
}
