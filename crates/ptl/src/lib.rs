//! # tdb-ptl
//!
//! Past Temporal Logic (PTL) — the condition language of
//! *Sistla & Wolfson, Temporal Conditions and Integrity Constraints in
//! Active Database Systems (SIGMOD 1995)*.
//!
//! PTL is a regular query language augmented with past temporal operators.
//! This crate provides:
//!
//! * [`Term`] / [`Formula`] — the abstract syntax: comparisons, membership
//!   and event atoms, boolean connectives, `Since` / `Lasttime` (basic) and
//!   `Previously` / `ThroughoutPast` (derived) operators, the assignment
//!   operator `[x := t] φ`, and temporal aggregates `f(q, φ, ψ)`;
//! * [`parse_formula`] / [`parse_term`] — the surface syntax;
//! * [`to_core`] — rewriting derived operators into `Since`/`Lasttime`;
//! * [`analyze`] — static checks: single assignment, safety
//!   (range-restriction of free variables), ground generators; plus the
//!   [`Analysis`] facts (time-bound variables, referenced events/queries)
//!   the evaluators rely on;
//! * [`semantics`] — the naive reference semantics over full histories,
//!   used as the test oracle and the re-evaluation baseline.

#![forbid(unsafe_code)]
#![warn(missing_debug_implementations)]

pub mod analysis;
mod error;
mod formula;
mod parser;
mod rewrite;
pub mod semantics;
mod span;
mod term;

pub use analysis::{analyze, Analysis};
pub use error::{PtlError, Result};
pub use formula::{Formula, QueryRef};
pub use parser::{
    executed_query_name, parse_formula, parse_formula_cursor, parse_formula_spanned, parse_term,
    parse_term_cursor,
};
pub use rewrite::to_core;
pub use semantics::{eval, eval_term, fire_bindings, relation_to_value, Env};
pub use span::{Span, SpanNode};
pub use term::{TemporalAgg, Term};
