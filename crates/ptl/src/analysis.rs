//! Static analysis of PTL formulas.
//!
//! Three checks run when a rule is registered:
//!
//! 1. **Single assignment** — each bound variable is assigned at most once
//!    (the paper's normal form; violations must be renamed).
//! 2. **Safety** — every *free* variable is range-restricted: it occurs in a
//!    positively occurring generator position (a membership or event atom
//!    pattern), so the set of satisfying assignments is finite. This is the
//!    paper's point that the assignment operator "naturally ensures safety"
//!    — assigned variables are always safe; only free variables need
//!    generators.
//! 3. **Ground generators** — generator atoms' query arguments must be
//!    variable-free so the generator can be expanded at evaluation time.
//!
//! The module also computes which assigned variables are bound to the clock
//! (`time_vars`) — the monotone-pruning optimization of Section 5 applies
//! to exactly those.

use std::collections::BTreeSet;

use crate::error::{PtlError, Result};
use crate::formula::Formula;
use crate::term::Term;

/// The result of analyzing a formula.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Analysis {
    /// Free variables, in first-occurrence order.
    pub free_vars: Vec<String>,
    /// Variables bound by assignment operators.
    pub assigned_vars: Vec<String>,
    /// Assigned variables whose term is exactly the clock (`time`) — the
    /// monotone-clock pruning may be applied to comparisons on these.
    pub time_vars: BTreeSet<String>,
    /// Event names referenced (relevance filtering).
    pub event_names: Vec<String>,
    /// Query names referenced (relevance filtering).
    pub query_names: Vec<String>,
    /// Whether any temporal operator occurs.
    pub temporal: bool,
}

/// Runs all static checks and returns the analysis, or the first error.
pub fn analyze(f: &Formula) -> Result<Analysis> {
    check_single_assignment(f)?;
    check_safety(f)?;
    Ok(Analysis {
        free_vars: f.free_vars(),
        assigned_vars: f.assigned_vars(),
        time_vars: time_vars(f),
        event_names: f.event_names(),
        query_names: f.query_names(),
        temporal: f.is_temporal(),
    })
}

/// Rejects formulas assigning the same variable twice.
pub fn check_single_assignment(f: &Formula) -> Result<()> {
    let mut seen = BTreeSet::new();
    let mut dup = None;
    f.visit(&mut |g| {
        if let Formula::Assign { var, .. } = g {
            if !seen.insert(var.clone()) && dup.is_none() {
                dup = Some(var.clone());
            }
        }
    });
    match dup {
        Some(v) => Err(PtlError::DuplicateAssignment(v)),
        None => Ok(()),
    }
}

/// Assigned variables whose assignment term is the clock.
pub fn time_vars(f: &Formula) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    f.visit(&mut |g| {
        if let Formula::Assign {
            var,
            term: Term::Time,
            ..
        } = g
        {
            out.insert(var.clone());
        }
    });
    out
}

/// Safety check: every free variable must have a positive generator
/// occurrence, and generator query arguments must be ground.
pub fn check_safety(f: &Formula) -> Result<()> {
    // Collect generator-covered variables (positive polarity only) and
    // check generator argument groundness.
    let mut covered = BTreeSet::new();
    collect_generators(f, true, &mut covered)?;
    for v in f.free_vars() {
        if !covered.contains(&v) {
            return Err(PtlError::Unsafe {
                var: v,
                reason: "has no positive membership/event generator occurrence".into(),
            });
        }
    }
    Ok(())
}

fn collect_generators(f: &Formula, positive: bool, covered: &mut BTreeSet<String>) -> Result<()> {
    match f {
        Formula::True | Formula::False | Formula::Cmp(..) => Ok(()),
        Formula::Member { source, pattern } => {
            for a in &source.args {
                if let Some(v) = a.vars().into_iter().next() {
                    return Err(PtlError::NonGroundGeneratorArgs {
                        query: source.name.clone(),
                        var: v,
                    });
                }
            }
            if positive {
                for t in pattern {
                    if let Term::Var(v) = t {
                        covered.insert(v.clone());
                    }
                }
            }
            Ok(())
        }
        Formula::Event { pattern, .. } => {
            if positive {
                for t in pattern {
                    if let Term::Var(v) = t {
                        covered.insert(v.clone());
                    }
                }
            }
            Ok(())
        }
        Formula::Not(g) => collect_generators(g, !positive, covered),
        Formula::And(gs) | Formula::Or(gs) => {
            for g in gs {
                collect_generators(g, positive, covered)?;
            }
            Ok(())
        }
        Formula::Since(g, h) => {
            collect_generators(g, positive, covered)?;
            collect_generators(h, positive, covered)
        }
        Formula::Lasttime(g) | Formula::Previously(g) | Formula::ThroughoutPast(g) => {
            collect_generators(g, positive, covered)
        }
        Formula::Assign { body, term, .. } => {
            // Aggregate sub-formulas must be safe on their own.
            if let Term::Agg(agg) = term {
                check_safety(&agg.start)?;
                check_safety(&agg.sample)?;
            }
            collect_generators(body, positive, covered)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formula::QueryRef;
    use tdb_relation::CmpOp;

    #[test]
    fn closed_formula_is_safe() {
        let f = Formula::previously(Formula::cmp(
            CmpOp::Gt,
            Term::query("price", vec![Term::lit("IBM")]),
            Term::lit(50i64),
        ));
        let a = analyze(&f).unwrap();
        assert!(a.free_vars.is_empty());
        assert!(a.temporal);
        assert_eq!(a.query_names, vec!["price".to_string()]);
    }

    #[test]
    fn free_var_without_generator_is_unsafe() {
        // x > 50 with x free and no generator.
        let f = Formula::cmp(CmpOp::Gt, Term::var("x"), Term::lit(50i64));
        assert!(matches!(analyze(&f), Err(PtlError::Unsafe { .. })));
    }

    #[test]
    fn member_generator_makes_var_safe() {
        let f = Formula::and([
            Formula::member(QueryRef::new("names", vec![]), vec![Term::var("x")]),
            Formula::cmp(
                CmpOp::Gt,
                Term::query("price", vec![Term::var("x")]),
                Term::lit(50i64),
            ),
        ]);
        analyze(&f).unwrap();
    }

    #[test]
    fn negated_generator_does_not_cover() {
        let f = Formula::not(Formula::member(
            QueryRef::new("names", vec![]),
            vec![Term::var("x")],
        ));
        assert!(matches!(analyze(&f), Err(PtlError::Unsafe { .. })));
        // Double negation restores positivity.
        let f2 = Formula::not(f);
        analyze(&f2).unwrap();
    }

    #[test]
    fn event_generator_covers() {
        let f = Formula::event("login", vec![Term::var("user")]);
        analyze(&f).unwrap();
    }

    #[test]
    fn assigned_vars_need_no_generator() {
        let f = Formula::assign(
            "x",
            Term::query("price", vec![Term::lit("IBM")]),
            Formula::cmp(
                CmpOp::Lt,
                Term::query("price", vec![Term::lit("IBM")]),
                Term::var("x"),
            ),
        );
        analyze(&f).unwrap();
    }

    #[test]
    fn duplicate_assignment_rejected() {
        let inner = Formula::assign("x", Term::Time, Formula::True);
        let f = Formula::assign("x", Term::Time, inner);
        assert_eq!(
            check_single_assignment(&f),
            Err(PtlError::DuplicateAssignment("x".into()))
        );
    }

    #[test]
    fn time_vars_detected() {
        let f = Formula::assign(
            "t",
            Term::Time,
            Formula::assign("x", Term::lit(1i64), Formula::True),
        );
        let tv = time_vars(&f);
        assert!(tv.contains("t"));
        assert!(!tv.contains("x"));
    }

    #[test]
    fn non_ground_generator_args_rejected() {
        let f = Formula::member(
            QueryRef::new("holdings", vec![Term::var("y")]),
            vec![Term::var("x")],
        );
        assert!(matches!(
            analyze(&f),
            Err(PtlError::NonGroundGeneratorArgs { .. })
        ));
    }
}
