//! PTL error types.

use std::fmt;

use tdb_relation::RelError;

/// Errors raised by PTL parsing, analysis and evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PtlError {
    /// A variable was used without a binding (free where a value is needed).
    UnboundVar(String),
    /// A variable is assigned more than once in the formula. The paper
    /// requires each bound variable to be assigned at most once ("we can
    /// simply rename some of the occurrences"); we require the renamed form.
    DuplicateAssignment(String),
    /// The formula is unsafe: a free variable is not range-restricted by any
    /// positive generator atom (membership / event / executed position).
    Unsafe { var: String, reason: String },
    /// A generator atom's query arguments mention variables (they must be
    /// closed so the generator can be expanded at evaluation time).
    NonGroundGeneratorArgs { query: String, var: String },
    /// A parse error in the PTL surface syntax.
    Parse(String),
    /// A parse error with the byte offset of the offending token.
    ParseAt { msg: String, offset: usize },
    /// An error from the relational substrate (query evaluation etc.).
    Rel(RelError),
    /// Evaluation referenced a history state that is no longer retained.
    StateEvicted(usize),
    /// A term expected to be boolean/scalar had the wrong shape.
    TypeError(String),
}

impl fmt::Display for PtlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PtlError::UnboundVar(v) => write!(f, "unbound variable `{v}`"),
            PtlError::DuplicateAssignment(v) => {
                write!(
                    f,
                    "variable `{v}` is assigned more than once; rename one occurrence"
                )
            }
            PtlError::Unsafe { var, reason } => {
                write!(f, "unsafe formula: free variable `{var}` {reason}")
            }
            PtlError::NonGroundGeneratorArgs { query, var } => write!(
                f,
                "generator atom over `{query}` has non-ground argument mentioning `{var}`"
            ),
            PtlError::Parse(msg) => write!(f, "PTL parse error: {msg}"),
            PtlError::ParseAt { msg, offset } => {
                write!(f, "PTL parse error at byte {offset}: {msg}")
            }
            PtlError::Rel(e) => write!(f, "{e}"),
            PtlError::StateEvicted(i) => {
                write!(f, "history state {i} has been evicted and cannot be read")
            }
            PtlError::TypeError(msg) => write!(f, "type error: {msg}"),
        }
    }
}

impl std::error::Error for PtlError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PtlError::Rel(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RelError> for PtlError {
    fn from(e: RelError) -> Self {
        PtlError::Rel(e)
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, PtlError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert_eq!(
            PtlError::UnboundVar("x".into()).to_string(),
            "unbound variable `x`"
        );
        assert!(PtlError::Rel(RelError::UnknownTable("T".into()))
            .to_string()
            .contains("unknown relation"));
    }
}
