//! Surface syntax for PTL.
//!
//! ```text
//! formula  := "[" IDENT ":=" term "]" formula            -- assignment
//!           | orF
//! orF      := andF ("or" andF)*
//! andF     := sinceF ("and" sinceF)*
//! sinceF   := notF ("since" notF)*                       -- left-assoc
//! notF     := "not" notF | unaryF
//! unaryF   := ("lasttime" | "previously" | "once"
//!              | "throughout_past" | "historically") unaryF
//!           | primary
//! primary  := "true" | "false"
//!           | "(" formula ")"
//!           | "@" IDENT ("(" termlist ")")?              -- event atom
//!           | "executed" "(" IDENT ("," term)* ")"       -- executed sugar
//!           | "(" termlist ")" "in" IDENT "(" termlist ")"  -- tuple member
//!           | term "in" IDENT "(" termlist ")"           -- member
//!           | term CMP term
//! term     := arithmetic over: NUMBER | STRING | "time" | IDENT
//!           | IDENT "(" termlist ")"                     -- named query
//!           | AGG "(" term ";" formula ";" formula ")"   -- temporal aggregate
//! ```
//!
//! Parsing also produces a [`SpanNode`] tree mirroring the formula (see
//! [`parse_formula_spanned`]) so static analyses can point diagnostics at the
//! byte range of any subformula, and every parse error carries the byte
//! offset of the offending token ([`PtlError::ParseAt`]).
//!
//! Examples from the paper:
//!
//! ```
//! use tdb_ptl::parse_formula;
//! // "the price of IBM stock doubled in 10 units of time"
//! let f = parse_formula(
//!     "[t := time] [x := price(\"IBM\")] \
//!      previously(price(\"IBM\") <= 0.5 * x and time >= t - 10)",
//! ).unwrap();
//! assert!(f.is_closed());
//!
//! // "the value of A remains positive while user X is logged in"
//! let g = parse_formula(
//!     "a() > 0 or not (not @logout(\"X\") since @login(\"X\"))",
//! ).unwrap();
//! assert!(g.is_temporal());
//! ```

use tdb_relation::lexer::{Cursor, Tok};
use tdb_relation::{AggFunc, ArithOp, CmpOp, Value};

use crate::error::{PtlError, Result};
use crate::formula::{Formula, QueryRef};
use crate::span::{Span, SpanNode};
use crate::term::Term;

/// The name of the auto-maintained query exposing the `executed` relation of
/// a rule (see Section 7); `executed(r, …)` desugars to a membership atom
/// over it.
pub fn executed_query_name(rule: &str) -> String {
    format!("__executed_{rule}")
}

/// Parses a complete PTL formula.
pub fn parse_formula(src: &str) -> Result<Formula> {
    parse_formula_spanned(src).map(|(f, _)| f)
}

/// Parses a complete PTL formula along with a [`SpanNode`] tree mirroring
/// its shape, for diagnostics that point into the source text.
pub fn parse_formula_spanned(src: &str) -> Result<(Formula, SpanNode)> {
    let mut c = Cursor::new(src).map_err(rel_parse)?;
    let fs = formula(&mut c)?;
    if !c.at_end() {
        return Err(err_here(&c, "expected end of input"));
    }
    Ok(fs)
}

/// Parses one formula starting at the current cursor position, leaving the
/// cursor just past it. Spans are offsets into the cursor's source, so a
/// host language embedding PTL formulas (e.g. a rule file) gets
/// file-relative positions for free.
pub fn parse_formula_cursor(c: &mut Cursor) -> Result<(Formula, SpanNode)> {
    formula(c)
}

/// Parses one term starting at the current cursor position, leaving the
/// cursor just past it (for host languages embedding PTL terms).
pub fn parse_term_cursor(c: &mut Cursor) -> Result<Term> {
    term(c)
}

/// Parses a complete PTL term.
pub fn parse_term(src: &str) -> Result<Term> {
    let mut c = Cursor::new(src).map_err(rel_parse)?;
    let t = term(&mut c)?;
    if !c.at_end() {
        return Err(err_here(&c, "expected end of input"));
    }
    Ok(t)
}

fn rel_parse(e: tdb_relation::RelError) -> PtlError {
    PtlError::Parse(e.to_string())
}

/// A parse error naming the current token and its byte offset.
fn err_here(c: &Cursor, msg: &str) -> PtlError {
    let found = match c.peek() {
        Some(t) => t.describe(),
        None => "end of input".to_string(),
    };
    PtlError::ParseAt {
        msg: format!("{msg}, found {found}"),
        offset: c.offset(),
    }
}

fn expect_punct(c: &mut Cursor, p: &str) -> Result<()> {
    if c.eat_punct(p) {
        Ok(())
    } else {
        Err(err_here(c, &format!("expected `{p}`")))
    }
}

fn expect_ident(c: &mut Cursor) -> Result<String> {
    match c.peek() {
        Some(Tok::Ident(_)) => match c.next_tok() {
            Some(Tok::Ident(s)) => Ok(s),
            _ => unreachable!("peeked an identifier"),
        },
        _ => Err(err_here(c, "expected identifier")),
    }
}

fn formula(c: &mut Cursor) -> Result<(Formula, SpanNode)> {
    let start = c.offset();
    if c.eat_punct("[") {
        let var = expect_ident(c)?;
        expect_punct(c, ":=")?;
        let t = term(c)?;
        expect_punct(c, "]")?;
        let (body, bspan) = formula(c)?;
        let span = Span::new(start, bspan.span.end);
        return Ok((
            Formula::assign(var, t, body),
            SpanNode {
                span,
                children: vec![bspan],
            },
        ));
    }
    or_f(c)
}

/// Joins n-ary connective parts: a single part passes through unchanged
/// (mirroring `Formula::and`/`Formula::or` collapsing), otherwise the span
/// node gets one child per part.
fn nary(
    parts: Vec<(Formula, SpanNode)>,
    build: fn(Vec<Formula>) -> Formula,
) -> (Formula, SpanNode) {
    if parts.len() == 1 {
        return parts.into_iter().next().expect("len checked");
    }
    let span = Span::new(
        parts[0].1.span.start,
        parts.last().expect("non-empty").1.span.end,
    );
    let (fs, children): (Vec<_>, Vec<_>) = parts.into_iter().unzip();
    (build(fs), SpanNode { span, children })
}

fn or_f(c: &mut Cursor) -> Result<(Formula, SpanNode)> {
    let mut parts = vec![and_f(c)?];
    while c.eat_kw("or") || c.eat_punct("||") {
        parts.push(and_f(c)?);
    }
    Ok(nary(parts, Formula::or))
}

fn and_f(c: &mut Cursor) -> Result<(Formula, SpanNode)> {
    let mut parts = vec![since_f(c)?];
    while c.eat_kw("and") || c.eat_punct("&&") {
        parts.push(since_f(c)?);
    }
    Ok(nary(parts, Formula::and))
}

// `not` binds tighter than `since`: `not @logout since @login` reads as
// `(not @logout) since @login`, matching the paper's examples.
fn since_f(c: &mut Cursor) -> Result<(Formula, SpanNode)> {
    let (mut lf, mut ls) = not_f(c)?;
    while c.eat_kw("since") {
        let (rf, rs) = not_f(c)?;
        let span = Span::new(ls.span.start, rs.span.end);
        lf = Formula::since(lf, rf);
        ls = SpanNode {
            span,
            children: vec![ls, rs],
        };
    }
    Ok((lf, ls))
}

fn not_f(c: &mut Cursor) -> Result<(Formula, SpanNode)> {
    let start = c.offset();
    if c.eat_kw("not") || c.eat_punct("!") {
        let (f, s) = not_f(c)?;
        let span = Span::new(start, s.span.end);
        Ok((
            Formula::not(f),
            SpanNode {
                span,
                children: vec![s],
            },
        ))
    } else {
        unary_f(c)
    }
}

fn unary_f(c: &mut Cursor) -> Result<(Formula, SpanNode)> {
    let start = c.offset();
    let build: fn(Formula) -> Formula = if c.eat_kw("lasttime") {
        Formula::lasttime
    } else if c.eat_kw("previously") || c.eat_kw("once") {
        Formula::previously
    } else if c.eat_kw("throughout_past") || c.eat_kw("historically") {
        Formula::throughout_past
    } else {
        return primary(c);
    };
    let (f, s) = unary_f(c)?;
    let span = Span::new(start, s.span.end);
    Ok((
        build(f),
        SpanNode {
            span,
            children: vec![s],
        },
    ))
}

fn primary(c: &mut Cursor) -> Result<(Formula, SpanNode)> {
    let start = c.offset();
    if c.eat_kw("true") {
        return Ok((Formula::True, SpanNode::leaf(start, c.prev_end())));
    }
    if c.eat_kw("false") {
        return Ok((Formula::False, SpanNode::leaf(start, c.prev_end())));
    }
    // Assignments may also appear nested under connectives.
    if matches!(c.peek(), Some(Tok::Punct("["))) {
        return formula(c);
    }
    // Event atom.
    if c.eat_punct("@") {
        let name = expect_ident(c)?;
        let mut pattern = Vec::new();
        if c.eat_punct("(") && !c.eat_punct(")") {
            loop {
                pattern.push(term(c)?);
                if !c.eat_punct(",") {
                    break;
                }
            }
            expect_punct(c, ")")?;
        }
        return Ok((
            Formula::Event { name, pattern },
            SpanNode::leaf(start, c.prev_end()),
        ));
    }
    // `executed(rule, args…)` sugar.
    if c.peek().is_some_and(|t| t.is_kw("executed"))
        && matches!(c.peek_at(1), Some(Tok::Punct("(")))
    {
        c.next_tok();
        expect_punct(c, "(")?;
        let rule = match c.peek() {
            Some(Tok::Ident(_)) | Some(Tok::Str(_)) => match c.next_tok() {
                Some(Tok::Ident(s)) | Some(Tok::Str(s)) => s,
                _ => unreachable!("peeked a name"),
            },
            _ => return Err(err_here(c, "expected rule name in executed(...)")),
        };
        let mut pattern = Vec::new();
        while c.eat_punct(",") {
            pattern.push(term(c)?);
        }
        expect_punct(c, ")")?;
        return Ok((
            Formula::Member {
                source: QueryRef::new(executed_query_name(&rule), vec![]),
                pattern,
            },
            SpanNode::leaf(start, c.prev_end()),
        ));
    }
    // Parenthesized formula (backtrack to term forms on failure).
    if matches!(c.peek(), Some(Tok::Punct("("))) {
        let save = c.pos();
        c.next_tok();
        if let Ok(mut f) = formula(c) {
            if c.eat_punct(")") {
                // Widen the node's span to include the parentheses.
                f.1.span = Span::new(start, c.prev_end());
                return Ok(f);
            }
        }
        c.set_pos(save);
        // Tuple membership: "(" termlist ")" "in" qref.
        if let Some(f) = try_tuple_member(c, start)? {
            return Ok(f);
        }
        c.set_pos(save);
    }
    // term CMP term | term "in" qref.
    let left = term(c)?;
    if c.eat_kw("in") {
        let source = query_ref(c)?;
        return Ok((
            Formula::Member {
                source,
                pattern: vec![left],
            },
            SpanNode::leaf(start, c.prev_end()),
        ));
    }
    let op = cmp_op(c).ok_or_else(|| err_here(c, "expected comparison or `in` after term"))?;
    let right = term(c)?;
    Ok((
        Formula::Cmp(op, left, right),
        SpanNode::leaf(start, c.prev_end()),
    ))
}

fn try_tuple_member(c: &mut Cursor, start: usize) -> Result<Option<(Formula, SpanNode)>> {
    if !c.eat_punct("(") {
        return Ok(None);
    }
    let mut pattern = Vec::new();
    loop {
        match term(c) {
            Ok(t) => pattern.push(t),
            Err(_) => return Ok(None),
        }
        if c.eat_punct(",") {
            continue;
        }
        break;
    }
    if !c.eat_punct(")") || !c.eat_kw("in") {
        return Ok(None);
    }
    let source = query_ref(c)?;
    Ok(Some((
        Formula::Member { source, pattern },
        SpanNode::leaf(start, c.prev_end()),
    )))
}

fn query_ref(c: &mut Cursor) -> Result<QueryRef> {
    let name = expect_ident(c)?;
    let mut args = Vec::new();
    expect_punct(c, "(")?;
    if !c.eat_punct(")") {
        loop {
            args.push(term(c)?);
            if !c.eat_punct(",") {
                break;
            }
        }
        expect_punct(c, ")")?;
    }
    Ok(QueryRef { name, args })
}

fn cmp_op(c: &mut Cursor) -> Option<CmpOp> {
    let op = match c.peek() {
        Some(Tok::Punct("<")) => CmpOp::Lt,
        Some(Tok::Punct("<=")) => CmpOp::Le,
        Some(Tok::Punct("=")) | Some(Tok::Punct("==")) => CmpOp::Eq,
        Some(Tok::Punct("!=")) | Some(Tok::Punct("<>")) => CmpOp::Ne,
        Some(Tok::Punct(">=")) => CmpOp::Ge,
        Some(Tok::Punct(">")) => CmpOp::Gt,
        _ => return None,
    };
    c.next_tok();
    Some(op)
}

// ---- terms ---------------------------------------------------------------

fn term(c: &mut Cursor) -> Result<Term> {
    add_term(c)
}

fn add_term(c: &mut Cursor) -> Result<Term> {
    let mut left = mul_term(c)?;
    loop {
        if c.eat_punct("+") {
            left = Term::arith(ArithOp::Add, left, mul_term(c)?);
        } else if c.eat_punct("-") {
            left = Term::arith(ArithOp::Sub, left, mul_term(c)?);
        } else {
            return Ok(left);
        }
    }
}

fn mul_term(c: &mut Cursor) -> Result<Term> {
    let mut left = unary_term(c)?;
    loop {
        if c.eat_punct("*") {
            left = Term::arith(ArithOp::Mul, left, unary_term(c)?);
        } else if c.eat_punct("/") {
            left = Term::arith(ArithOp::Div, left, unary_term(c)?);
        } else if c.eat_punct("%") || c.eat_kw("mod") {
            left = Term::arith(ArithOp::Mod, left, unary_term(c)?);
        } else {
            return Ok(left);
        }
    }
}

fn unary_term(c: &mut Cursor) -> Result<Term> {
    if c.eat_punct("-") {
        let t = unary_term(c)?;
        // Fold negative literals so `-1` round-trips as a constant.
        return Ok(match t {
            Term::Const(Value::Int(i)) => Term::lit(-i),
            Term::Const(Value::Float(f)) => Term::lit(-f),
            other => Term::Neg(Box::new(other)),
        });
    }
    atom_term(c)
}

fn atom_term(c: &mut Cursor) -> Result<Term> {
    if c.at_end() {
        return Err(err_here(c, "expected term"));
    }
    let off = c.offset();
    match c.next_tok() {
        Some(Tok::Int(i)) => Ok(Term::lit(i)),
        Some(Tok::Float(f)) => Ok(Term::lit(f)),
        Some(Tok::Str(s)) => Ok(Term::Const(Value::str(s))),
        Some(Tok::Punct("(")) => {
            let t = term(c)?;
            expect_punct(c, ")")?;
            Ok(t)
        }
        Some(Tok::Ident(name)) => {
            if name.eq_ignore_ascii_case("time") {
                return Ok(Term::Time);
            }
            if name.eq_ignore_ascii_case("abs") && c.eat_punct("(") {
                let t = term(c)?;
                expect_punct(c, ")")?;
                return Ok(Term::Abs(Box::new(t)));
            }
            // Aggregate call: AGG(term; formula; formula).
            if let Some(func) = AggFunc::parse(&name) {
                if matches!(c.peek(), Some(Tok::Punct("("))) {
                    let save = c.pos();
                    c.next_tok();
                    let q = term(c)?;
                    if c.eat_punct(";") {
                        let (start, _) = formula(c)?;
                        expect_punct(c, ";")?;
                        let (sample, _) = formula(c)?;
                        expect_punct(c, ")")?;
                        return Ok(Term::agg(func, q, start, sample));
                    }
                    // Not an aggregate after all — fall through to a query
                    // call named like an aggregate (e.g. a query `last(x)`).
                    c.set_pos(save);
                }
            }
            if c.eat_punct("(") {
                let mut args = Vec::new();
                if !c.eat_punct(")") {
                    loop {
                        args.push(term(c)?);
                        if !c.eat_punct(",") {
                            break;
                        }
                    }
                    expect_punct(c, ")")?;
                }
                return Ok(Term::Query { name, args });
            }
            Ok(Term::var(name))
        }
        Some(t) => Err(PtlError::ParseAt {
            msg: format!("unexpected {}", t.describe()),
            offset: off,
        }),
        None => Err(err_here(c, "expected term")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ibm_doubling_example_parses() {
        let f = parse_formula(
            "[t := time] [x := price(\"IBM\")] \
             previously(price(\"IBM\") <= 0.5 * x and time >= t - 10)",
        )
        .unwrap();
        assert!(f.is_closed());
        assert_eq!(f.assigned_vars(), vec!["t".to_string(), "x".into()]);
        assert!(crate::analysis::time_vars(&f).contains("t"));
    }

    #[test]
    fn login_session_example_parses() {
        // "the value of A remains positive while user X is logged in"
        let f = parse_formula("a() > 0 or not (not @logout(\"X\") since @login(\"X\"))").unwrap();
        assert!(matches!(f, Formula::Or(_)));
        assert_eq!(f.event_names(), vec!["logout".to_string(), "login".into()]);
    }

    #[test]
    fn since_is_left_associative() {
        let f = parse_formula("@a since @b since @c").unwrap();
        // ((a since b) since c)
        match f {
            Formula::Since(left, right) => {
                assert!(matches!(*left, Formula::Since(..)));
                assert!(matches!(*right, Formula::Event { .. }));
            }
            other => panic!("expected since, got {other}"),
        }
    }

    #[test]
    fn operator_precedence_not_binds_tighter_than_and() {
        let f = parse_formula("not @a and @b").unwrap();
        match f {
            Formula::And(parts) => {
                assert!(matches!(parts[0], Formula::Not(_)));
                assert!(matches!(parts[1], Formula::Event { .. }));
            }
            other => panic!("expected and, got {other}"),
        }
    }

    #[test]
    fn membership_atom() {
        let f = parse_formula("x in overpriced()").unwrap();
        match &f {
            Formula::Member { source, pattern } => {
                assert_eq!(source.name, "overpriced");
                assert_eq!(pattern, &vec![Term::var("x")]);
            }
            other => panic!("expected member, got {other}"),
        }
        assert_eq!(f.free_vars(), vec!["x".to_string()]);
    }

    #[test]
    fn tuple_membership_atom() {
        let f = parse_formula("(x, 72) in stock_rows()").unwrap();
        match f {
            Formula::Member { pattern, .. } => assert_eq!(pattern.len(), 2),
            other => panic!("expected tuple member, got {other}"),
        }
    }

    #[test]
    fn executed_sugar_desugars_to_member() {
        let f = parse_formula("executed(r1, x, t) and time = t + 10").unwrap();
        match &f {
            Formula::And(parts) => match &parts[0] {
                Formula::Member { source, pattern } => {
                    assert_eq!(source.name, executed_query_name("r1"));
                    assert_eq!(pattern.len(), 2);
                }
                other => panic!("expected member, got {other}"),
            },
            other => panic!("expected and, got {other}"),
        }
    }

    #[test]
    fn aggregate_syntax() {
        // Hourly average of IBM since 9AM, sampled at update_stocks events.
        let f =
            parse_formula("avg(price(\"IBM\"); time = 540; @update_stocks) > 70 since time = 540")
                .unwrap();
        assert!(matches!(f, Formula::Since(..)));
        let mut has_agg = false;
        f.visit(&mut |g| {
            if let Formula::Cmp(_, Term::Agg(_), _) = g {
                has_agg = true;
            }
        });
        assert!(has_agg);
    }

    #[test]
    fn nested_assignment_in_connective() {
        let f = parse_formula("@boot or [x := a()] (a() > x)").unwrap();
        assert!(matches!(f, Formula::Or(_)));
    }

    #[test]
    fn once_and_historically_synonyms() {
        assert_eq!(
            parse_formula("once @e").unwrap(),
            parse_formula("previously @e").unwrap()
        );
        assert_eq!(
            parse_formula("historically @e").unwrap(),
            parse_formula("throughout_past @e").unwrap()
        );
    }

    #[test]
    fn parenthesized_term_comparison() {
        let f = parse_formula("(x + 1) * 2 >= y and x in names()").unwrap();
        assert_eq!(f.free_vars(), vec!["x".to_string(), "y".into()]);
    }

    #[test]
    fn bad_input_rejected() {
        assert!(parse_formula("since @a").is_err());
        assert!(parse_formula("@a since").is_err());
        assert!(
            parse_formula("price(\"IBM\")").is_err(),
            "bare term is not a formula"
        );
        assert!(
            parse_formula("[x = 3] true").is_err(),
            "assignment needs :="
        );
        assert!(parse_formula("x in ").is_err());
    }

    #[test]
    fn parse_errors_carry_byte_offsets() {
        // `since` with no right operand: error points at end of input.
        let src = "@a since";
        match parse_formula(src).unwrap_err() {
            PtlError::ParseAt { offset, .. } => assert_eq!(offset, src.len()),
            other => panic!("expected positioned error, got {other:?}"),
        }
        // A bare term followed by garbage points at the garbage token.
        let src = "price(\"IBM\") ; true";
        match parse_formula(src).unwrap_err() {
            PtlError::ParseAt { offset, msg } => {
                assert_eq!(offset, 13);
                assert!(msg.contains("expected comparison or `in`"), "{msg}");
            }
            other => panic!("expected positioned error, got {other:?}"),
        }
        // Errors render the position.
        let err = parse_formula("@a since").unwrap_err().to_string();
        assert!(err.contains("at byte 8"), "{err}");
    }

    #[test]
    fn spanned_parse_mirrors_formula_shape() {
        let src = "[t := time] previously(@login(u) and time >= t - 10)";
        let (f, spans) = parse_formula_spanned(src).unwrap();
        // Assign -> Previously -> And -> [Event, Cmp].
        assert_eq!(spans.span, Span::new(0, src.len()));
        let prev = spans.child(0).unwrap();
        match &f {
            Formula::Assign { body, .. } => assert!(matches!(**body, Formula::Previously(_))),
            other => panic!("expected assign, got {other}"),
        }
        assert_eq!(prev.span.slice(src).unwrap(), &src[12..]);
        let and = prev.child(0).unwrap();
        assert_eq!(and.children.len(), 2);
        assert_eq!(and.child(0).unwrap().span.slice(src).unwrap(), "@login(u)");
        assert_eq!(
            and.child(1).unwrap().span.slice(src).unwrap(),
            "time >= t - 10"
        );
    }

    #[test]
    fn spanned_parse_since_children() {
        let src = "not @logout since @login";
        let (_, spans) = parse_formula_spanned(src).unwrap();
        assert_eq!(spans.children.len(), 2);
        assert_eq!(
            spans.child(0).unwrap().span.slice(src).unwrap(),
            "not @logout"
        );
        assert_eq!(spans.child(1).unwrap().span.slice(src).unwrap(), "@login");
    }

    #[test]
    fn term_parser_roundtrip() {
        let t = parse_term("0.5 * x + abs(price(\"IBM\") - 3)").unwrap();
        assert_eq!(t.vars(), vec!["x".to_string()]);
    }

    #[test]
    fn event_without_args() {
        let f = parse_formula("@update_stocks").unwrap();
        assert_eq!(f, Formula::event("update_stocks", vec![]));
    }
}
