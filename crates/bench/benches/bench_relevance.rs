//! E3 microbenchmark: dispatch cost per state with and without §8
//! relevance filtering, as the rule count grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tdb_bench::experiments::e3_relevance;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_relevance");
    group.sample_size(10);
    for &rules in &[16usize, 128] {
        group.bench_with_input(BenchmarkId::new("both_modes", rules), &rules, |b, &r| {
            b.iter(|| e3_relevance(&[r], 100, 7))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
