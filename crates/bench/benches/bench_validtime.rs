//! E6 microbenchmark: tentative vs definite trigger processing under
//! retroactive updates.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tdb_bench::experiments::e6_validtime;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_validtime");
    group.sample_size(10);
    for &retro in &[0u32, 300] {
        group.bench_with_input(
            BenchmarkId::new("retro_permille", retro),
            &retro,
            |b, &r| b.iter(|| e6_validtime(&[r], 100, 20, 11)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
