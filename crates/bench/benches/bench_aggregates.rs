//! E4 microbenchmark: maintaining a temporal average via the §6.1.1
//! register rewriting.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tdb_bench::experiments::e4_aggregates;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_aggregates");
    group.sample_size(10);
    for &n in &[50usize, 200] {
        group.bench_with_input(BenchmarkId::new("rewritten_vs_naive", n), &n, |b, &n| {
            b.iter(|| e4_aggregates(&[n], 7))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
