//! E5 microbenchmark: compiling the look-back event expression (DFA
//! construction blows up in k) vs compiling + running the PTL detector.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tdb_baseline::{EventExpr, Nfa, Sym};
use tdb_core::IncrementalEvaluator;
use tdb_ptl::Formula;

fn lookback_expr(k: usize) -> EventExpr {
    EventExpr::seq(
        EventExpr::seq(EventExpr::star(EventExpr::Any), EventExpr::atom("a")),
        EventExpr::any_n(k - 1),
    )
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_eventexpr");
    group.sample_size(10);
    for &k in &[4usize, 8, 10] {
        group.bench_with_input(BenchmarkId::new("dfa_compile", k), &k, |b, &k| {
            let alphabet = vec![Sym::Event("a".into()), Sym::Other];
            b.iter(|| {
                let nfa = Nfa::try_build(&lookback_expr(k), &alphabet).unwrap();
                nfa.determinize().minimize().state_count()
            })
        });
        group.bench_with_input(BenchmarkId::new("ptl_compile", k), &k, |b, &k| {
            b.iter(|| {
                let mut f = Formula::event("a", vec![]);
                for _ in 0..k - 1 {
                    f = Formula::lasttime(f);
                }
                IncrementalEvaluator::compile(&f).unwrap().retained_size()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
