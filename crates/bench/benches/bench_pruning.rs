//! E2 microbenchmark: evaluator advance cost with and without the §5
//! monotone-clock pruning (pruning keeps residuals small, so it is faster
//! despite the extra pass).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tdb_bench::workload::{ibm_doubled_formula, ticker_engine};
use tdb_core::{EvalConfig, IncrementalEvaluator};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_pruning");
    group.sample_size(10);
    let engine = ticker_engine(2_000, 42);
    let f = ibm_doubled_formula();
    for (name, pruning) in [("pruned", true), ("unpruned", false)] {
        group.bench_with_input(BenchmarkId::new(name, 2_000), &pruning, |b, &p| {
            b.iter(|| {
                let mut ev = IncrementalEvaluator::new(
                    &f,
                    EvalConfig {
                        pruning: p,
                        max_residual: usize::MAX,
                    },
                )
                .unwrap();
                for (i, s) in engine.history().iter() {
                    ev.advance(s, i).unwrap();
                }
                ev.retained_size()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
