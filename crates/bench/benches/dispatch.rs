//! Delta-dispatch microbenchmarks: the three cost centers the E15
//! experiment composes — read-set index probes, the sparse fast-path
//! advance versus a full advance, and memoized evaluation of an atom
//! shared across rules — plus the end-to-end dispatch cost with the obs
//! subsystem off and on (the off branch is the PR-5 acceptance bar:
//! disabled observability must stay within noise, < 2%).

use std::collections::BTreeSet;
use std::sync::Arc;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use tdb_bench::workload::{relation_watch_db, set_watch_row_ops};
use tdb_core::parteval::{parteval_atom, parteval_atom_memo, StateView};
use tdb_core::{
    Action, ActiveDatabase, EvalConfig, IncrementalEvaluator, ManagerConfig, ParallelConfig,
    ReadSetIndex, Rule,
};
use tdb_engine::{EventSet, SystemState};
use tdb_obs::{ObsConfig, Registry};
use tdb_ptl::parse_formula;
use tdb_relation::{Delta, Timestamp};

fn names(names: &[String]) -> BTreeSet<String> {
    names.iter().cloned().collect()
}

/// Probing a 1000-rule index with a single-relation delta.
fn bench_index(c: &mut Criterion) {
    let mut group = c.benchmark_group("dispatch_index");
    group.sample_size(20);
    for &rules in &[100usize, 1000] {
        let relations = rules / 10;
        let mut ix = ReadSetIndex::new();
        for i in 0..rules {
            ix.insert(
                i,
                &names(&[]),
                &names(&[format!("W{}", i % relations)]),
                false,
            );
        }
        let delta = Delta::new(vec!["W3".into()], vec!["update".into()]);
        let mut affected = Vec::new();
        group.bench_with_input(BenchmarkId::new("affected", rules), &rules, |b, _| {
            b.iter(|| {
                ix.affected(black_box(&delta), &mut affected);
                black_box(affected.iter().filter(|&&a| a).count())
            })
        });
    }
    group.finish();
}

/// One E15-shaped rule advanced over an unaffected state: the sparse path
/// (pointer copies) against the full path (atom re-evaluation).
fn bench_advance(c: &mut Criterion) {
    let db = relation_watch_db(4);
    let state = SystemState::new(db, EventSet::new(), Timestamp(1));
    let f = parse_formula("r0_q() > 100 and previously(r0_q() <= 100)").unwrap();
    let mut seeded = IncrementalEvaluator::new(&f, EvalConfig::default()).unwrap();
    seeded.advance(&state, 0).unwrap();
    assert!(seeded.sparse_ready());

    let mut group = c.benchmark_group("dispatch_advance");
    group.sample_size(20);
    group.bench_function("full", |b| {
        let mut ev = seeded.clone();
        let mut i = 1;
        b.iter(|| {
            i += 1;
            black_box(ev.advance(black_box(&state), i).unwrap())
        })
    });
    group.bench_function("sparse", |b| {
        let mut ev = seeded.clone();
        b.iter(|| black_box(ev.advance_sparse(Timestamp(1)).unwrap()))
    });
    group.finish();
}

/// Evaluating one interned atom many times at one state — the shape of a
/// subformula shared by many rules — memoized against direct evaluation.
fn bench_shared_atom(c: &mut Criterion) {
    let db = relation_watch_db(4);
    let state = SystemState::new(db, EventSet::new(), Timestamp(1));
    let atom = Arc::new(
        parse_formula("r0_q() > 100")
            .map(|f| match f {
                f @ tdb_ptl::Formula::Cmp(..) => f,
                other => panic!("expected a comparison atom, got {other}"),
            })
            .unwrap(),
    );

    let mut group = c.benchmark_group("dispatch_shared_atom");
    group.sample_size(20);
    group.bench_function("direct", |b| {
        let view = StateView::new(&state, 1);
        b.iter(|| black_box(parteval_atom(black_box(&atom), &view).unwrap()))
    });
    group.bench_function("memoized", |b| {
        let view = StateView::new(&state, 2);
        parteval_atom_memo(&atom, &view).unwrap(); // warm the epoch
        b.iter(|| black_box(parteval_atom_memo(black_box(&atom), &view).unwrap()))
    });
    group.finish();
}

/// End-to-end dispatch of one E15-shaped state over 100 rules with the obs
/// subsystem disabled, enabled into a private registry, and — as the
/// baseline the disabled branch is judged against — the same config before
/// this PR existed has no equivalent, so `obs_off` *is* the reference:
/// `obs_off` vs `obs_on` bounds the recording cost, and `obs_off` must sit
/// within noise of historic E15 numbers (< 2% acceptance bar).
fn bench_obs_overhead(c: &mut Criterion) {
    const RULES: usize = 100;
    const RELATIONS: usize = 10;

    let build = |obs: ObsConfig| {
        let mut adb = ActiveDatabase::with_config(
            relation_watch_db(RELATIONS),
            ManagerConfig {
                relevance_filtering: false,
                delta_dispatch: true,
                parallel: ParallelConfig::sequential(),
                obs,
                ..Default::default()
            },
        );
        for i in 0..RULES {
            let j = i % RELATIONS;
            let f =
                parse_formula(&format!("r{j}_q() > 100 and previously(r{j}_q() <= 100)")).unwrap();
            adb.add_rule(Rule::trigger(format!("watch{i}"), f, Action::Notify))
                .unwrap();
        }
        adb
    };

    let mut group = c.benchmark_group("dispatch_obs");
    group.sample_size(400);
    group.bench_function("obs_off", |b| {
        let mut adb = build(ObsConfig::off());
        let mut k = 0i64;
        b.iter(|| {
            k += 1;
            adb.advance_clock(1).unwrap();
            let ops = set_watch_row_ops(adb.db(), (k as usize) % RELATIONS, 90 + k % 21);
            adb.update(black_box(ops)).unwrap();
            black_box(adb.firings().len())
        })
    });
    group.bench_function("obs_on", |b| {
        let mut adb = build(ObsConfig::with_registry(Arc::new(Registry::new())));
        let mut k = 0i64;
        b.iter(|| {
            k += 1;
            adb.advance_clock(1).unwrap();
            let ops = set_watch_row_ops(adb.db(), (k as usize) % RELATIONS, 90 + k % 21);
            adb.update(black_box(ops)).unwrap();
            black_box(adb.firings().len())
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_index,
    bench_advance,
    bench_shared_atom,
    bench_obs_overhead
);
criterion_main!(benches);
