//! Wire-protocol frame read microbenchmark: per-frame allocation
//! (`read_frame`) vs the reusable scratch buffer (`read_frame_into`) that
//! steady-state connection loops hold, across small (commit-ack sized) and
//! large (snapshot-chunk sized) payloads.

use std::io::Cursor;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tdb_server::wire::{read_frame, read_frame_into, write_frame, FrameScratch};

/// `n` back-to-back frames of `payload_len` bytes, as they would sit in a
/// socket buffer.
fn frames(n: usize, payload_len: usize) -> Vec<u8> {
    let payload = vec![0xa5u8; payload_len];
    let mut buf = Vec::with_capacity(n * (payload_len + 8));
    for _ in 0..n {
        write_frame(&mut buf, &payload).expect("Vec writes cannot fail");
    }
    buf
}

fn bench(c: &mut Criterion) {
    const FRAMES: usize = 256;
    let mut group = c.benchmark_group("wire_frame");
    for &(label, len) in &[
        ("ack_64b", 64usize),
        ("firing_1k", 1024),
        ("chunk_64k", 64 * 1024),
    ] {
        let stream = frames(FRAMES, len);
        group.bench_with_input(
            BenchmarkId::new("alloc_per_frame", label),
            &stream,
            |b, s| {
                b.iter(|| {
                    let mut r = Cursor::new(s.as_slice());
                    let mut total = 0usize;
                    for _ in 0..FRAMES {
                        total += read_frame(&mut r).expect("well-formed frame").len();
                    }
                    total
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("scratch_reuse", label), &stream, |b, s| {
            b.iter(|| {
                let mut r = Cursor::new(s.as_slice());
                let mut scratch = FrameScratch::new();
                let mut total = 0usize;
                for _ in 0..FRAMES {
                    total += read_frame_into(&mut r, &mut scratch)
                        .expect("well-formed frame")
                        .len();
                }
                total
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
