//! E10 microbenchmark: formula-state vs auxiliary-relation evaluation
//! strategies on the worked-example condition.

use criterion::{criterion_group, criterion_main, Criterion};
use tdb_bench::workload::{ibm_doubled_formula, ticker_engine};
use tdb_core::{AuxEvaluator, IncrementalEvaluator};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e10_auxrel");
    group.sample_size(10);
    let engine = ticker_engine(1_000, 42);
    let f = ibm_doubled_formula();
    group.bench_function("formula_state", |b| {
        b.iter(|| {
            let mut ev = IncrementalEvaluator::compile(&f).unwrap();
            let mut fired = 0usize;
            for (i, s) in engine.history().iter() {
                fired += usize::from(!ev.advance_and_fire(s, i).unwrap().is_empty());
            }
            fired
        })
    });
    group.bench_function("aux_relation", |b| {
        b.iter(|| {
            let mut ev = AuxEvaluator::new(f.clone(), Some(10)).unwrap();
            let mut fired = 0usize;
            for (_, s) in engine.history().iter() {
                fired += usize::from(ev.advance(s).unwrap());
            }
            fired
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
