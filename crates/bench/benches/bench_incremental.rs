//! E1 microbenchmark: per-update cost of the incremental evaluator vs the
//! naive full-history detector, at several history lengths.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tdb_baseline::NaiveDetector;
use tdb_bench::workload::{ibm_doubled_formula, ticker_engine};
use tdb_core::IncrementalEvaluator;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_incremental_vs_naive");
    group.sample_size(10);
    for &n in &[100usize, 1_000, 4_000] {
        let engine = ticker_engine(n, 42);
        let f = ibm_doubled_formula();
        group.bench_with_input(BenchmarkId::new("incremental", n), &n, |b, _| {
            b.iter(|| {
                let mut ev = IncrementalEvaluator::compile(&f).unwrap();
                let mut fired = 0usize;
                for (i, s) in engine.history().iter() {
                    fired += usize::from(!ev.advance_and_fire(s, i).unwrap().is_empty());
                }
                fired
            })
        });
        // Naive over the full history is quadratic; keep sizes modest.
        if n <= 1_000 {
            group.bench_with_input(BenchmarkId::new("naive", n), &n, |b, _| {
                b.iter(|| {
                    let mut det = NaiveDetector::new(f.clone());
                    let mut fired = 0usize;
                    for (_, s) in engine.history().iter() {
                        fired += usize::from(!det.advance_and_fire(s).unwrap().is_empty());
                    }
                    fired
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
