//! Group-commit microbenchmark: per-op WAL appends vs one batched append,
//! at batch sizes 1 / 8 / 64 / 512, with durability on (`SyncPolicy::Always`
//! — each append or batch rides one `sync_data`). The batched side encodes
//! the whole group as a single `LogicalOp::Batch` record, so the fsync count
//! drops from N to 1 per group; this is the storage-layer half of the E18
//! end-to-end speedup.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tdb_core::storage::{LogicalOp, SyncPolicy, WalSink};
use tdb_relation::Value;
use tdb_storage::{CheckpointPolicy, FileStorage};

const OPS_PER_RUN: usize = 512;

fn sample_ops(n: usize) -> Vec<LogicalOp> {
    (0..n)
        .map(|i| LogicalOp::SetItem {
            name: format!("w{}", i % 8),
            value: Value::Int(i as i64),
        })
        .collect()
}

fn durable_storage(tag: &str) -> (std::path::PathBuf, FileStorage) {
    let dir = std::env::temp_dir().join(format!("tdb-wal-bench-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let policy = CheckpointPolicy {
        every_ops: usize::MAX,
        every_bytes: 0,
        sync: SyncPolicy::Always,
    };
    let storage = FileStorage::create(&dir, policy).expect("bench storage dir");
    (dir, storage)
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("wal_append");
    group.sample_size(10);
    let ops = sample_ops(OPS_PER_RUN);

    group.bench_function("per_op", |b| {
        let (dir, mut storage) = durable_storage("per-op");
        b.iter(|| {
            for op in &ops {
                storage.append(op).expect("append");
            }
        });
        drop(storage);
        let _ = std::fs::remove_dir_all(&dir);
    });

    for batch in [1usize, 8, 64, 512] {
        group.bench_with_input(BenchmarkId::new("batched", batch), &batch, |b, &batch| {
            let (dir, mut storage) = durable_storage(&format!("batch-{batch}"));
            b.iter(|| {
                for chunk in ops.chunks(batch) {
                    storage.append_batch(chunk).expect("append batch");
                }
            });
            drop(storage);
            let _ = std::fs::remove_dir_all(&dir);
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
