//! E7 microbenchmark: per-commit integrity-constraint gating cost as the
//! constraint count grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tdb_bench::experiments::e7_constraints;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_constraints");
    group.sample_size(10);
    for &n in &[1usize, 32, 128] {
        group.bench_with_input(BenchmarkId::new("gate", n), &n, |b, &n| {
            b.iter(|| e7_constraints(&[n], 50, 3))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
