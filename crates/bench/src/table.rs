//! Minimal fixed-width table printing for the experiment harness.

/// Renders a table with a header row, aligning columns to the widest cell.
pub fn render(title: &str, header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    out.push_str(&format!("== {title} ==\n"));
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{:>width$}", cell, width = widths[i]));
        }
        line.push('\n');
        line
    };
    let header_cells: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push_str(&format!(
        "{}\n",
        "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1))
    ));
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
    }
    out
}

/// Formats a float with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let s = render(
            "demo",
            &["n", "value"],
            &[
                vec!["1".into(), "10.00".into()],
                vec!["100".into(), "3.14".into()],
            ],
        );
        assert!(s.contains("== demo =="));
        assert!(s.contains("  1"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5);
    }

    #[test]
    fn f2_format() {
        assert_eq!(f2(12.345), "12.35");
    }
}
