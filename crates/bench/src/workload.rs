//! Workload generators for the experiments.
//!
//! Everything is seeded and deterministic. The stock ticker substitutes for
//! the paper's market feed: the conditions only observe value/timestamp
//! patterns, which the generator controls (it can plant the exact
//! worked-example patterns).

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use tdb_core::{Action, ActionOp, ActiveDatabase, LogicalOp, Rule};
use tdb_engine::{Engine, Event, EventSet, WriteOp};
use tdb_ptl::{parse_formula, parse_term, Formula, Term};
use tdb_relation::{parse_query, tuple, Database, QueryDef, Relation, Schema, Value};

/// A seeded random-walk price series for one stock.
#[derive(Debug)]
pub struct Ticker {
    rng: StdRng,
    price: i64,
}

impl Ticker {
    pub fn new(seed: u64, start_price: i64) -> Ticker {
        Ticker {
            rng: StdRng::seed_from_u64(seed),
            price: start_price.max(1),
        }
    }

    /// Next price: a bounded random walk that stays positive.
    pub fn step(&mut self) -> i64 {
        let delta: i64 = self.rng.random_range(-4..=5);
        self.price = (self.price + delta).max(1);
        self.price
    }

    /// Occasionally (probability `p_million = p/1_000_000`) crash the price
    /// to half — plants "doubling" patterns for the IBM condition.
    pub fn step_with_crashes(&mut self, p_million: u32) -> i64 {
        if self.rng.random_range(0..1_000_000) < p_million {
            self.price = (self.price / 2).max(1);
        }
        self.step()
    }
}

/// The standard stock database: `STOCK(name, price)` plus the `price(x)`
/// and `names()` function symbols.
pub fn stock_db() -> Database {
    let mut db = Database::new();
    db.create_relation(
        "STOCK",
        Relation::empty(Schema::untyped(&["name", "price"])),
    )
    .expect("fresh database");
    db.define_query(
        "price",
        QueryDef::new(
            1,
            parse_query("select price from STOCK where name = $0").expect("static query"),
        ),
    );
    db.define_query(
        "names",
        QueryDef::new(
            0,
            parse_query("select name from STOCK").expect("static query"),
        ),
    );
    db
}

/// The write-set replacing `name`'s price (delete old row, insert new).
pub fn set_price_ops(db: &Database, name: &str, price: i64) -> Vec<WriteOp> {
    let old = db
        .relation("STOCK")
        .expect("STOCK exists")
        .iter()
        .find(|t| t.get(0) == Some(&Value::str(name)))
        .cloned();
    let mut ops = Vec::with_capacity(2);
    if let Some(old) = old {
        ops.push(WriteOp::Delete {
            relation: "STOCK".into(),
            tuple: old,
        });
    }
    ops.push(WriteOp::Insert {
        relation: "STOCK".into(),
        tuple: tuple![name, price],
    });
    ops
}

/// Drives `n` ticker updates through a bare engine (one state each, one
/// clock unit apart). Returns the engine.
pub fn ticker_engine(n: usize, seed: u64) -> Engine {
    let mut e = Engine::new(stock_db());
    e.set_auto_tick(false);
    let mut ticker = Ticker::new(seed, 50);
    for k in 0..n {
        e.advance_clock_to(tdb_relation::Timestamp(k as i64 + 1))
            .expect("monotone");
        let p = ticker.step_with_crashes(20_000);
        let ops = set_price_ops(e.db(), "IBM", p);
        e.apply_update(ops).expect("update applies");
    }
    e
}

/// The paper's worked-example condition: "the price of IBM stock doubled in
/// 10 units of time".
pub fn ibm_doubled_formula() -> Formula {
    parse_formula(
        "[t := time] [x := price(\"IBM\")] \
         previously(price(\"IBM\") <= 0.5 * x and time >= t - 10)",
    )
    .expect("static formula")
}

/// The moving-average condition: "the hourly average of the IBM price has
/// remained above `threshold`" (sampled at @update_stocks events).
pub fn hourly_average_formula(threshold: i64) -> Formula {
    parse_formula(&format!(
        "avg(price(\"IBM\"); time = 0; @update_stocks) > {threshold}"
    ))
    .expect("static formula")
}

/// A rule condition watching one named item (`w<i>`) exceed a threshold —
/// used to scale rule counts in E3/E7.
pub fn item_watch_formula(item: &str, threshold: i64) -> Formula {
    parse_formula(&format!("{item}_q() > {threshold}")).expect("static formula")
}

/// A database with `n` scalar watch items `w0…w(n-1)` and reader queries.
pub fn watch_db(n: usize) -> Database {
    let mut db = Database::new();
    for i in 0..n {
        let item = format!("w{i}");
        db.set_item(item.clone(), Value::Int(0));
        db.define_query(
            format!("{item}_q"),
            QueryDef::new(0, tdb_relation::Query::item(item)),
        );
    }
    db
}

/// A database with `n` single-row base relations `W0…W(n-1)` plus scalar
/// reader queries `r<i>_q()` — the E15 sparse-update workload, exercising
/// relation deltas (rather than scalar-item writes) end to end.
pub fn relation_watch_db(n: usize) -> Database {
    let mut db = Database::new();
    for j in 0..n {
        db.create_relation(
            format!("W{j}"),
            Relation::from_rows(Schema::untyped(&["v"]), vec![tuple![0i64]])
                .expect("single seed row"),
        )
        .expect("fresh database");
        db.define_query(
            format!("r{j}_q"),
            QueryDef::new(
                0,
                parse_query(&format!("select v from W{j}")).expect("static query"),
            ),
        );
    }
    db
}

/// The write-set replacing relation `W<j>`'s single row with `value`.
pub fn set_watch_row_ops(db: &Database, j: usize, value: i64) -> Vec<WriteOp> {
    let rel = format!("W{j}");
    let old = db
        .relation(&rel)
        .expect("relation exists")
        .iter()
        .next()
        .cloned();
    let mut ops = Vec::with_capacity(2);
    if let Some(old) = old {
        ops.push(WriteOp::Delete {
            relation: rel.clone(),
            tuple: old,
        });
    }
    ops.push(WriteOp::Insert {
        relation: rel,
        tuple: tuple![value],
    });
    ops
}

// ---- differential-harness generators ----------------------------------------

/// Scalar watch items in the differential schema (`w0…`).
pub const DIFF_ITEMS: usize = 4;
/// Single-row base relations in the differential schema (`W0…`).
pub const DIFF_RELATIONS: usize = 3;

/// The differential-harness database: [`DIFF_ITEMS`] scalar watch items
/// (`w<i>` + `w<i>_q()` readers) merged with [`DIFF_RELATIONS`] single-row
/// base relations (`W<j>` + `r<j>_q()` readers), so one workload exercises
/// item deltas, relation deltas and event deltas side by side.
pub fn differential_db() -> Database {
    let mut db = watch_db(DIFF_ITEMS);
    for j in 0..DIFF_RELATIONS {
        db.create_relation(
            format!("W{j}"),
            Relation::from_rows(Schema::untyped(&["v"]), vec![tuple![0i64]])
                .expect("single seed row"),
        )
        .expect("fresh database");
        db.define_query(
            format!("r{j}_q"),
            QueryDef::new(
                0,
                parse_query(&format!("select v from W{j}")).expect("static query"),
            ),
        );
    }
    db
}

/// One externally driven operation in a differential workload.
#[derive(Debug, Clone)]
pub enum DiffStep {
    /// Set scalar watch item `w<item>` (item delta).
    SetItem {
        item: usize,
        value: i64,
    },
    /// Replace base relation `W<rel>`'s single row (relation delta).
    SetRow {
        rel: usize,
        value: i64,
    },
    /// Raise `@login("X")` / `@logout("X")` (event delta).
    Login,
    Logout,
    /// Raise `@mark` — the sampling event of the generated aggregates.
    Mark,
    /// Advance the clock without touching data (empty delta).
    Tick,
}

/// A seeded step script for the differential harness. Values stay in
/// `80..125` so the generated thresholds see genuine rising/falling edges.
pub fn differential_steps(seed: u64, n: usize) -> Vec<DiffStep> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| match rng.random_range(0..10u32) {
            0..=2 => DiffStep::SetItem {
                item: rng.random_range(0..DIFF_ITEMS),
                value: rng.random_range(80..125),
            },
            3..=5 => DiffStep::SetRow {
                rel: rng.random_range(0..DIFF_RELATIONS),
                value: rng.random_range(80..125),
            },
            6 => {
                if rng.random_range(0..2u32) == 0 {
                    DiffStep::Login
                } else {
                    DiffStep::Logout
                }
            }
            7 | 8 => DiffStep::Mark,
            _ => DiffStep::Tick,
        })
        .collect()
}

/// Applies one step through the facade (one clock unit per step). Returns
/// whether the operation committed (vetoes and re-raised errors read as
/// `false`, keeping the commit pattern comparable across configurations).
pub fn apply_diff_step(adb: &mut ActiveDatabase, s: &DiffStep) -> bool {
    adb.advance_clock(1).expect("monotone clock");
    match s {
        DiffStep::SetItem { item, value } => adb
            .update([WriteOp::SetItem {
                item: format!("w{item}"),
                value: Value::Int(*value),
            }])
            .is_ok(),
        DiffStep::SetRow { rel, value } => {
            let name = format!("W{rel}");
            let old = adb
                .db()
                .relation(&name)
                .expect("relation exists")
                .iter()
                .next()
                .cloned()
                .expect("single-row relation");
            adb.update([
                WriteOp::Delete {
                    relation: name.clone(),
                    tuple: old,
                },
                WriteOp::Insert {
                    relation: name,
                    tuple: tuple![*value],
                },
            ])
            .is_ok()
        }
        DiffStep::Login => adb.emit(Event::new("login", vec![Value::str("X")])).is_ok(),
        DiffStep::Logout => adb
            .emit(Event::new("logout", vec![Value::str("X")]))
            .is_ok(),
        DiffStep::Mark => adb.emit(Event::simple("mark")).is_ok(),
        DiffStep::Tick => adb.tick().is_ok(),
    }
}

/// Lowers one step to the logical ops [`apply_diff_step`] would log, so a
/// step script can be regrouped into group commits
/// (`ActiveDatabase::commit_batch`) without consulting a live database.
/// `rows` is a shadow of the single-row `W<j>` relations (current value per
/// relation, all `0` initially) — [`DiffStep::SetRow`] needs the old tuple
/// to delete, and in a batch that tuple may not be applied yet.
pub fn diff_step_ops(s: &DiffStep, rows: &mut [i64]) -> Vec<LogicalOp> {
    let mut ops = vec![LogicalOp::AdvanceClock { delta: 1 }];
    match s {
        DiffStep::SetItem { item, value } => ops.push(LogicalOp::Update {
            ops: vec![WriteOp::SetItem {
                item: format!("w{item}"),
                value: Value::Int(*value),
            }],
        }),
        DiffStep::SetRow { rel, value } => {
            let old = rows[*rel];
            rows[*rel] = *value;
            ops.push(LogicalOp::Update {
                ops: vec![
                    WriteOp::Delete {
                        relation: format!("W{rel}"),
                        tuple: tuple![old],
                    },
                    WriteOp::Insert {
                        relation: format!("W{rel}"),
                        tuple: tuple![*value],
                    },
                ],
            });
        }
        DiffStep::Login => ops.push(LogicalOp::Emit {
            events: EventSet::of([Event::new("login", vec![Value::str("X")])]),
        }),
        DiffStep::Logout => ops.push(LogicalOp::Emit {
            events: EventSet::of([Event::new("logout", vec![Value::str("X")])]),
        }),
        DiffStep::Mark => ops.push(LogicalOp::Emit {
            events: EventSet::of([Event::simple("mark")]),
        }),
        DiffStep::Tick => ops.push(LogicalOp::Tick),
    }
    ops
}

/// A seeded random rule catalog over the [`differential_db`] schema:
/// rising-edge thresholds, relation watches, bounded time windows, event
/// `Since` chains and temporal aggregates (`avg`/`max`/`count` sampled at
/// `@mark` / `@login`). All rules are `Notify` triggers, so the observable
/// trace is exactly the firing sequence.
///
/// Aggregate-backed rules are named `agg…`: their Section 6.1.1 rewriting
/// becomes visible one system state *after* the sampling state ("firing may
/// be delayed, but not go unrecognized"), so the differential harness
/// compares them across configurations rather than against the naive
/// full-history oracle. Every other rule (named `ptl…`) matches the
/// `tdb_baseline::NaiveDetector` semantics exactly.
pub fn differential_rules(seed: u64, n: usize) -> Vec<Rule> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|k| {
            let c: i64 = rng.random_range(85..120);
            let item = rng.random_range(0..DIFF_ITEMS);
            let rel = rng.random_range(0..DIFF_RELATIONS);
            let window: i64 = rng.random_range(3..13);
            let (name, src) = match k % 8 {
                0 => (
                    format!("ptl{k}_rising"),
                    format!("w{item}_q() > {c} and previously(w{item}_q() <= {c})"),
                ),
                1 => (
                    format!("ptl{k}_relation"),
                    format!("lasttime(r{rel}_q() <= {c}) and r{rel}_q() > {c}"),
                ),
                2 => (
                    format!("ptl{k}_window"),
                    format!("[t := time] previously(w{item}_q() >= {c} and time >= t - {window})"),
                ),
                3 => (
                    format!("ptl{k}_since"),
                    format!("(w{item}_q() <= {c}) since @mark"),
                ),
                4 => (
                    format!("ptl{k}_session"),
                    "not @logout(\"X\") since @login(\"X\")".to_string(),
                ),
                5 => (
                    format!("agg{k}_avg"),
                    format!("avg(w{item}_q(); time = 0; @mark) > {c}"),
                ),
                6 => (
                    format!("agg{k}_max"),
                    format!("max(r{rel}_q(); time = 0; @mark) >= {c}"),
                ),
                _ => (
                    format!("agg{k}_count"),
                    format!(
                        "count(w{item}_q(); time = 0; @login) >= {}",
                        rng.random_range(2..7)
                    ),
                ),
            };
            Rule::trigger(
                name,
                parse_formula(&src).expect("generated formula parses"),
                Action::Notify,
            )
        })
        .collect()
}

/// [`differential_db`] plus two sink items `s0`/`s1` (with `s0_q()` /
/// `s1_q()` readers) that only fired actions write. The external step
/// scripts never touch the sinks, so every sink change in a run is a
/// rule-action write — which is exactly what the batch-safety
/// differential tests need to observe.
pub fn differential_writer_db() -> Database {
    let mut db = differential_db();
    for s in ["s0", "s1"] {
        db.set_item(s.to_string(), Value::Int(0));
        db.define_query(
            format!("{s}_q"),
            QueryDef::new(0, tdb_relation::Query::item(s)),
        );
    }
    db
}

fn set_item_action(item: &str, value: Term) -> Action {
    Action::DbOps(vec![ActionOp::SetItem {
        item: item.into(),
        value,
    }])
}

fn writer_rule(name: &str, condition: &str, item: &str, value: Term) -> Rule {
    Rule::trigger(
        name,
        parse_formula(condition).expect("static writer condition parses"),
        set_item_action(item, value),
    )
}

/// A data-writing catalog over [`differential_writer_db`] that certifies
/// `stratified(2)`: four writers with pure-data (inertial) conditions in
/// stratum 0 feeding two sink readers in stratum 1, no cycles.
///
/// The catalog deliberately covers the fence-soundness corner cases:
/// `w_prev`'s condition is a bare `previously(…)` (temporal memory — its
/// edge-firing must still coincide with a read-set-touching state, the
/// inertia property the stratified fences rely on), `w_snap`'s action
/// value reads the database at materialization time (impure — the fences
/// pin its evaluation point to the per-op schedule), and `r_last` is an
/// order-sensitive (`lasttime`) reader of a written sink.
pub fn differential_stratified_rules() -> Vec<Rule> {
    vec![
        writer_rule(
            "w_up",
            "w0_q() > 100 and previously(w0_q() <= 100)",
            "s0",
            Term::lit(1i64),
        ),
        writer_rule(
            "w_dn",
            "w0_q() <= 100 and previously(w0_q() > 100)",
            "s0",
            Term::lit(0i64),
        ),
        writer_rule("w_prev", "previously(w1_q() > 110)", "s1", Term::lit(7i64)),
        writer_rule(
            "w_snap",
            "w2_q() > 105 and previously(w2_q() <= 105)",
            "s1",
            parse_term("w2_q() + 1").expect("static action term parses"),
        ),
        Rule::trigger(
            "r_edge",
            parse_formula("s0_q() = 1").expect("static reader parses"),
            Action::Notify,
        ),
        Rule::trigger(
            "r_last",
            parse_formula("lasttime(s1_q() = 0) and s1_q() != 0").expect("static reader parses"),
            Action::Notify,
        ),
    ]
}

/// A data-writing catalog over [`differential_writer_db`] that certifies
/// `cascade-required`: `pong` reads *and* writes `s0` (a self-cycle), so
/// no amount of fencing can predict the cascade statically. Every chain
/// quiesces (`drv` raises `s0` to 1, `pong` rewrites it to 2, nothing
/// fires on 2), so eager re-entry terminates.
pub fn differential_cascade_rules() -> Vec<Rule> {
    vec![
        writer_rule(
            "drv",
            "w0_q() > 100 and previously(w0_q() <= 100)",
            "s0",
            Term::lit(1i64),
        ),
        writer_rule("pong", "s0_q() = 1", "s0", Term::lit(2i64)),
        writer_rule(
            "rearm",
            "w0_q() <= 100 and previously(w0_q() > 100)",
            "s0",
            Term::lit(0i64),
        ),
        Rule::trigger(
            "obs",
            parse_formula("s0_q() = 2").expect("static reader parses"),
            Action::Notify,
        ),
    ]
}

/// Login-session events: deterministic interleaving of logins/logouts for
/// `users` users over `n` states.
#[derive(Debug)]
pub struct SessionLoad {
    rng: StdRng,
    users: usize,
    logged_in: Vec<bool>,
}

impl SessionLoad {
    pub fn new(users: usize, seed: u64) -> SessionLoad {
        SessionLoad {
            rng: StdRng::seed_from_u64(seed),
            users,
            logged_in: vec![false; users],
        }
    }

    /// Next event: `(user, login?)`.
    pub fn step(&mut self) -> (String, bool) {
        let u = self.rng.random_range(0..self.users);
        self.logged_in[u] = !self.logged_in[u];
        (format!("user{u}"), self.logged_in[u])
    }
}

/// One event of a Δ-bounded out-of-order stream: it *happened* at `valid`
/// but *reaches* the database at `arrival ≥ valid` (arrival − valid ≤ Δ).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DisorderEvent {
    /// Position in the original (in-order) history.
    pub seq: usize,
    /// The instant the event is about.
    pub valid: tdb_relation::Timestamp,
    /// The instant it arrives at the ingest path.
    pub arrival: tdb_relation::Timestamp,
    /// Payload: the value `n` takes at `valid`.
    pub value: i64,
}

/// A seeded disorder workload: `n` events with unique, consecutive valid
/// times `1..=n`; each is late with probability `rate_permille / 1000`,
/// delayed uniformly in `1..=max_delay`. The returned vector is in
/// *arrival* order (stable on `seq` for ties), which is the order an
/// ingest loop should feed them; re-sorting by `valid` recovers the
/// in-order oracle history.
pub fn disorder_events(
    n: usize,
    max_delay: i64,
    rate_permille: u32,
    seed: u64,
) -> Vec<DisorderEvent> {
    // Two independent streams: values from one, lateness from the other,
    // so every (Δ, rate) cell of a sweep sees the *same* value history and
    // differs only in arrival order.
    let mut values = StdRng::seed_from_u64(seed);
    let mut lateness = StdRng::seed_from_u64(seed ^ 0x9E37_79B9_7F4A_7C15);
    let mut events: Vec<DisorderEvent> = (0..n)
        .map(|i| {
            let valid = tdb_relation::Timestamp(i as i64 + 1);
            let value = values.random_range(0..100);
            let late = u64::from(lateness.random_range(0..1000u32)) < u64::from(rate_permille);
            let delay = if late && max_delay > 0 {
                lateness.random_range(1..=max_delay)
            } else {
                0
            };
            DisorderEvent {
                seq: i,
                valid,
                arrival: tdb_relation::Timestamp(valid.0 + delay),
                value,
            }
        })
        .collect();
    events.sort_by_key(|e| (e.arrival, e.seq));
    events
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ticker_is_deterministic_and_positive() {
        let mut a = Ticker::new(7, 50);
        let mut b = Ticker::new(7, 50);
        for _ in 0..1000 {
            let pa = a.step_with_crashes(50_000);
            assert_eq!(pa, b.step_with_crashes(50_000));
            assert!(pa >= 1);
        }
    }

    #[test]
    fn ticker_engine_builds_history() {
        let e = ticker_engine(100, 1);
        assert_eq!(e.history().len(), 101, "initial + 100 updates");
        assert_eq!(e.db().relation("STOCK").unwrap().len(), 1);
    }

    #[test]
    fn formulas_parse_and_analyze() {
        tdb_ptl::analyze(&ibm_doubled_formula()).unwrap();
        tdb_ptl::analyze(&hourly_average_formula(70)).unwrap();
        tdb_ptl::analyze(&item_watch_formula("w3", 10)).unwrap();
    }

    #[test]
    fn watch_db_defines_items_and_queries() {
        let db = watch_db(4);
        assert!(db.has_item("w3"));
        assert!(db.query_def("w0_q").is_ok());
    }

    #[test]
    fn differential_generators_are_deterministic() {
        let a = differential_rules(42, 16);
        let b = differential_rules(42, 16);
        assert_eq!(a.len(), 16);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.condition, y.condition);
            tdb_ptl::analyze(&x.condition).unwrap();
        }
        let s = differential_steps(7, 100);
        let t = differential_steps(7, 100);
        assert_eq!(s.len(), 100);
        assert_eq!(format!("{s:?}"), format!("{t:?}"));
    }

    #[test]
    fn differential_db_serves_every_generated_query() {
        let mut adb = ActiveDatabase::new(differential_db());
        for r in differential_rules(3, 16) {
            adb.add_rule(r).unwrap();
        }
        for s in differential_steps(3, 40) {
            apply_diff_step(&mut adb, &s);
        }
        assert!(adb.history().len() > 40, "every step appends a state");
    }

    #[test]
    fn disorder_events_are_deterministic_and_delta_bounded() {
        let a = disorder_events(500, 7, 300, 42);
        let b = disorder_events(500, 7, 300, 42);
        assert_eq!(a, b);
        assert_eq!(a.len(), 500);
        // Δ-bounded lateness, arrival-sorted, unique valid times.
        let mut last_arrival = tdb_relation::Timestamp(i64::MIN);
        let mut valids: Vec<i64> = a.iter().map(|e| e.valid.0).collect();
        for e in &a {
            assert!(e.arrival >= e.valid);
            assert!(e.arrival.0 - e.valid.0 <= 7);
            assert!(e.arrival >= last_arrival, "arrival order");
            last_arrival = e.arrival;
        }
        valids.sort_unstable();
        valids.dedup();
        assert_eq!(valids.len(), 500, "valid times are unique");
        // Disorder actually occurs at rate 300‰ …
        assert!(a.iter().any(|e| e.arrival > e.valid));
        // … and never at rate 0 or Δ = 0.
        assert!(disorder_events(200, 7, 0, 42)
            .iter()
            .all(|e| e.arrival == e.valid));
        assert!(disorder_events(200, 0, 800, 42)
            .iter()
            .all(|e| e.arrival == e.valid));
    }

    #[test]
    fn session_load_flips_state() {
        let mut s = SessionLoad::new(3, 9);
        let (u, first) = s.step();
        assert!(first, "first toggle is a login");
        assert!(u.starts_with("user"));
    }
}
