//! The experiment suite (see DESIGN.md §4 and EXPERIMENTS.md).
//!
//! The paper has no numeric tables; each experiment reproduces one of its
//! algorithmic or semantic *claims* as a measured table. Every function is
//! deterministic given its seed; timings use `std::time::Instant` and are
//! reported in microseconds.

use std::time::Instant;

use tdb_baseline::{EventExpr, NaiveDetector, Nfa, Sym};
use tdb_core::{
    offline_satisfied, online_satisfied, theorem2_check, Action, ActionOp, ActiveDatabase,
    AuxEvaluator, DefiniteTriggerRunner, EvalConfig, IncrementalEvaluator, ManagerConfig, Rule,
    TentativeTriggerRunner,
};
use tdb_engine::{Event, VtEngine, WriteOp};
use tdb_ptl::{parse_formula, Formula, Term};
use tdb_relation::{Timestamp, Value};

use crate::workload::{
    hourly_average_formula, ibm_doubled_formula, item_watch_formula, relation_watch_db,
    set_price_ops, set_watch_row_ops, stock_db, ticker_engine, watch_db, Ticker,
};

fn micros(d: std::time::Duration) -> f64 {
    d.as_secs_f64() * 1e6
}

// ===== E1: incremental vs naive ============================================

/// One row of the E1 table.
#[derive(Debug, Clone)]
pub struct E1Row {
    pub history_len: usize,
    /// Mean per-update cost over the final 10% of updates, µs.
    pub incremental_us: f64,
    pub naive_us: f64,
    pub speedup: f64,
    /// Sanity: both detectors fired at exactly the same states.
    pub firings_agree: bool,
}

/// Theorem 1's payoff: per-update incremental cost is flat in the history
/// length, naive re-evaluation grows linearly.
pub fn e1_incremental_vs_naive(sizes: &[usize], seed: u64) -> Vec<E1Row> {
    let f = ibm_doubled_formula();
    sizes
        .iter()
        .map(|&n| {
            let engine = ticker_engine(n, seed);
            let tail_from = n - (n / 10).max(1);

            let mut inc = IncrementalEvaluator::compile(&f).expect("compiles");
            let mut naive = NaiveDetector::new(f.clone());
            let (mut t_inc, mut t_naive) = (0.0, 0.0);
            let mut agree = true;
            let mut tail_states = 0usize;
            for (i, s) in engine.history().iter() {
                let start = Instant::now();
                let a = !inc.advance_and_fire(s, i).expect("advance").is_empty();
                let d_inc = start.elapsed();
                if i < tail_from {
                    // Accumulate history without paying the naive O(i)
                    // evaluation on unmeasured states (it would make the
                    // whole experiment quadratic in the sweep size).
                    naive.observe(s);
                    continue;
                }
                let start_naive = Instant::now();
                let b = !naive.advance_and_fire(s).expect("advance").is_empty();
                let d_naive = start_naive.elapsed();
                agree &= a == b;
                t_inc += micros(d_inc);
                t_naive += micros(d_naive);
                tail_states += 1;
            }
            let incremental_us = t_inc / tail_states as f64;
            let naive_us = t_naive / tail_states as f64;
            E1Row {
                history_len: n,
                incremental_us,
                naive_us,
                speedup: naive_us / incremental_us.max(1e-9),
                firings_agree: agree,
            }
        })
        .collect()
}

// ===== E2: pruning bounds the retained state =================================

#[derive(Debug, Clone)]
pub struct E2Row {
    pub history_len: usize,
    pub retained_pruned: usize,
    /// `None` when the unpruned arm was skipped: its residual grows with
    /// the history, making every advance — and the whole run — quadratic,
    /// which is precisely the claim being demonstrated.
    pub retained_unpruned: Option<usize>,
}

/// Histories beyond this length only run the pruned evaluator.
pub const E2_UNPRUNED_CAP: usize = 5_000;

/// The Section 5 optimization: with monotone time-clause pruning the
/// retained formula-state size is bounded for bounded operators; without
/// it, it grows with the history.
pub fn e2_pruning(sizes: &[usize], seed: u64) -> Vec<E2Row> {
    let f = ibm_doubled_formula();
    sizes
        .iter()
        .map(|&n| {
            let engine = ticker_engine(n, seed);
            let mut pruned = IncrementalEvaluator::compile(&f).expect("compiles");
            let mut unpruned = (n <= E2_UNPRUNED_CAP).then(|| {
                IncrementalEvaluator::new(
                    &f,
                    EvalConfig {
                        pruning: false,
                        max_residual: usize::MAX,
                    },
                )
                .expect("compiles")
            });
            for (i, s) in engine.history().iter() {
                pruned.advance(s, i).expect("advance");
                if let Some(u) = unpruned.as_mut() {
                    u.advance(s, i).expect("advance");
                }
            }
            E2Row {
                history_len: n,
                retained_pruned: pruned.retained_size(),
                retained_unpruned: unpruned.map(|u| u.retained_size()),
            }
        })
        .collect()
}

// ===== E3: relevance filtering ===============================================

#[derive(Debug, Clone)]
pub struct E3Row {
    pub rules: usize,
    pub evals_filtered: u64,
    pub evals_unfiltered: u64,
    pub us_per_state_filtered: f64,
    pub us_per_state_unfiltered: f64,
    pub firings_agree: bool,
}

/// Section 8: with event/data relevance filtering, per-state cost scales
/// with the *relevant* rules, not the total rule count.
pub fn e3_relevance(rule_counts: &[usize], states: usize, seed: u64) -> Vec<E3Row> {
    rule_counts
        .iter()
        .map(|&r| {
            let run = |filtering: bool| -> (u64, f64, Vec<(String, i64)>) {
                // Delta dispatch (E15) would itself skip the unaffected
                // rules; pin it off in both runs so the comparison isolates
                // §8 relevance filtering against a truly exhaustive baseline.
                let mut adb = ActiveDatabase::with_config(
                    watch_db(r),
                    ManagerConfig {
                        relevance_filtering: filtering,
                        delta_dispatch: false,
                        ..Default::default()
                    },
                );
                for i in 0..r {
                    adb.add_rule(Rule::trigger(
                        format!("watch{i}"),
                        item_watch_formula(&format!("w{i}"), 100),
                        Action::Notify,
                    ))
                    .expect("registers");
                }
                let mut rng_state = seed;
                let start = Instant::now();
                for k in 0..states {
                    // Simple deterministic LCG so both runs see identical load.
                    rng_state = rng_state.wrapping_mul(6364136223846793005).wrapping_add(1);
                    let item = (rng_state >> 33) as usize % r;
                    let value = 90 + (k as i64 % 21); // crosses 100 sometimes
                    adb.advance_clock(1).expect("clock");
                    adb.update([WriteOp::SetItem {
                        item: format!("w{item}"),
                        value: Value::Int(value),
                    }])
                    .expect("update");
                }
                let elapsed = micros(start.elapsed()) / states as f64;
                let firings = adb
                    .firings()
                    .iter()
                    .map(|f| (f.rule.clone(), f.time.0))
                    .collect();
                (adb.stats().evaluations, elapsed, firings)
            };
            let (evals_on, us_on, fir_on) = run(true);
            let (evals_off, us_off, fir_off) = run(false);
            E3Row {
                rules: r,
                evals_filtered: evals_on,
                evals_unfiltered: evals_off,
                us_per_state_filtered: us_on,
                us_per_state_unfiltered: us_off,
                firings_agree: fir_on == fir_off,
            }
        })
        .collect()
}

// ===== E4: aggregate maintenance ============================================

#[derive(Debug, Clone)]
pub struct E4Row {
    pub samples: usize,
    /// µs per sample maintaining the rewritten registers.
    pub rewritten_us: f64,
    /// µs per sample recomputing the aggregate from the definition.
    pub naive_us: f64,
    /// The final aggregate values agree.
    pub values_agree: bool,
}

/// Section 6.1.1: the register rewriting maintains the aggregate in O(1)
/// per sample; recomputation from the definition costs O(window).
pub fn e4_aggregates(sample_counts: &[usize], seed: u64) -> Vec<E4Row> {
    sample_counts
        .iter()
        .map(|&n| {
            // Rewritten: facade with the avg rule.
            let mut adb = ActiveDatabase::new(stock_db());
            adb.add_rule(Rule::trigger(
                "avg_watch",
                hourly_average_formula(1_000_000), // never fires; we time maintenance
                Action::Notify,
            ))
            .expect("registers");
            let mut ticker = Ticker::new(seed, 50);
            let mut prices = Vec::with_capacity(n);
            let start = Instant::now();
            for _ in 0..n {
                let p = ticker.step();
                prices.push(p);
                adb.advance_clock(1).expect("clock");
                let ops = set_price_ops(adb.db(), "IBM", p);
                adb.update(ops).expect("update");
                adb.emit(Event::simple("update_stocks")).expect("emit");
            }
            let rewritten_us = micros(start.elapsed()) / n as f64;
            let reg = adb
                .db()
                .item("__agg_avg_watch_0_avg")
                .expect("register exists")
                .as_f64()
                .unwrap_or(f64::NAN);

            // Naive: recompute the mean over all samples at every sample.
            let start = Instant::now();
            let mut naive_val = 0.0;
            for k in 0..n {
                let window = &prices[..=k];
                naive_val = window.iter().sum::<i64>() as f64 / window.len() as f64;
            }
            let naive_us = micros(start.elapsed()) / n as f64;

            E4Row {
                samples: n,
                rewritten_us,
                naive_us,
                values_agree: (reg - naive_val).abs() < 1e-9,
            }
        })
        .collect()
}

// ===== E5: event-expression automata vs PTL ==================================

#[derive(Debug, Clone)]
pub struct E5Row {
    pub k: usize,
    pub expr_size: usize,
    pub nfa_states: usize,
    pub dfa_states: usize,
    pub min_dfa_states: usize,
    pub ptl_formula_size: usize,
    pub ptl_retained_size: usize,
    pub detectors_agree: bool,
}

/// Section 10 vs refs. 15/16: for the look-back family Σ*·a·Σ^(k-1) ("an `a`
/// occurred exactly k events ago"), the minimal DFA needs 2^k states while
/// the PTL formula state stays linear in k.
pub fn e5_eventexpr(ks: &[usize], stream_len: usize, seed: u64) -> Vec<E5Row> {
    ks.iter()
        .map(|&k| {
            assert!(k >= 1);
            let expr = EventExpr::seq(
                EventExpr::seq(EventExpr::star(EventExpr::Any), EventExpr::atom("a")),
                EventExpr::any_n(k - 1),
            );
            let alphabet = vec![Sym::Event("a".into()), Sym::Other];
            let nfa = Nfa::try_build(&expr, &alphabet).expect("regular expression");
            let dfa = nfa.determinize();
            let min = dfa.minimize();

            // PTL equivalent: Lasttime^(k-1)(@a).
            let mut f = Formula::event("a", vec![]);
            for _ in 0..k - 1 {
                f = Formula::lasttime(f);
            }
            let mut ev = IncrementalEvaluator::compile(&f).expect("compiles");

            // Drive both detectors over one event stream and compare.
            let mut engine = tdb_engine::Engine::new(tdb_relation::Database::new());
            let mut matcher = min.matcher();
            let mut agree = true;
            let mut rng_state = seed | 1;
            for _ in 0..stream_len {
                rng_state = rng_state.wrapping_mul(6364136223846793005).wrapping_add(1);
                let name = if (rng_state >> 40).is_multiple_of(3) {
                    "a"
                } else {
                    "b"
                };
                let idx = engine.emit_event(Event::simple(name)).expect("emit");
                let s = engine.history().get(idx).expect("retained").clone();
                let ptl_fired = !ev.advance_and_fire(&s, idx).expect("advance").is_empty();
                matcher.feed(name);
                agree &= ptl_fired == matcher.matched();
            }
            E5Row {
                k,
                expr_size: expr.size(),
                nfa_states: nfa.state_count(),
                dfa_states: dfa.state_count(),
                min_dfa_states: min.state_count(),
                ptl_formula_size: f.size(),
                ptl_retained_size: ev.retained_size(),
                detectors_agree: agree,
            }
        })
        .collect()
}

// ===== E6: valid time — tentative vs definite ================================

#[derive(Debug, Clone)]
pub struct E6Row {
    pub retro_permille: u32,
    pub max_delay: i64,
    pub tentative_us_per_update: f64,
    pub definite_us_per_update: f64,
    pub tentative_firings: usize,
    pub definite_firings: usize,
    /// Mean lateness (clock units) of definite firings vs tentative ones.
    pub definite_lag: f64,
}

/// Section 9.2: tentative triggers pay for retroactive re-evaluation;
/// definite triggers are cheap but fire Δ late.
pub fn e6_validtime(
    retro_permille: &[u32],
    updates: usize,
    max_delay: i64,
    seed: u64,
) -> Vec<E6Row> {
    retro_permille
        .iter()
        .map(|&rp| {
            let mut base = tdb_relation::Database::new();
            base.set_item("price_IBM", Value::Int(50));
            base.define_query(
                "vprice",
                tdb_relation::QueryDef::new(0, tdb_relation::Query::item("price_IBM")),
            );
            let f = parse_formula("previously(vprice() >= 100)").expect("static");

            let mut vt = VtEngine::new(base, max_delay);
            let mut tentative = TentativeTriggerRunner::new(f.clone(), EvalConfig::default(), 256);
            let mut definite =
                DefiniteTriggerRunner::new(&f, EvalConfig::default()).expect("compiles");
            let mut ticker = Ticker::new(seed, 50);
            let mut rng_state = seed | 1;
            let (mut t_tent, mut t_def) = (0.0, 0.0);
            let mut tent_firings: Vec<Timestamp> = Vec::new();
            let mut def_firings: Vec<Timestamp> = Vec::new();
            let mut def_lags: Vec<f64> = Vec::new();
            for _ in 0..updates {
                vt.advance_clock(1).expect("clock");
                rng_state = rng_state.wrapping_mul(6364136223846793005).wrapping_add(1);
                let retro = (rng_state >> 33) % 1000 < u64::from(rp);
                let lag = if retro {
                    1 + ((rng_state >> 17) as i64 % max_delay.max(1))
                } else {
                    0
                };
                let valid = vt.now().minus(lag).max(Timestamp(0));
                let txn = vt.begin().expect("begin");
                let p = ticker.step_with_crashes(0) + 40; // hovers near 100
                let dirty = vt
                    .update_at(
                        txn,
                        WriteOp::SetItem {
                            item: "price_IBM".into(),
                            value: Value::Int(p),
                        },
                        valid,
                    )
                    .expect("valid-time update");
                vt.commit(txn).expect("commit");

                let start = Instant::now();
                let h = vt.tentative_history();
                let fired = tentative
                    .process(&h, if retro { Some(dirty) } else { None })
                    .expect("tentative");
                t_tent += micros(start.elapsed());
                tent_firings.extend(fired.iter().map(|f| f.time));

                let start = Instant::now();
                let fired = definite.process(&vt).expect("definite");
                t_def += micros(start.elapsed());
                // Lag: how long after the state's instant was the definite
                // firing reported? (Tentative firings report immediately.)
                for f in &fired {
                    def_lags.push((vt.now().0 - f.time.0) as f64);
                }
                def_firings.extend(fired.iter().map(|f| f.time));
            }
            // Drain the definite frontier so its firings are complete.
            vt.advance_clock(max_delay + 1).expect("clock");
            for f in definite.process(&vt).expect("definite") {
                def_lags.push((vt.now().0 - f.time.0) as f64);
                def_firings.push(f.time);
            }

            let lag = if def_lags.is_empty() {
                0.0
            } else {
                def_lags.iter().sum::<f64>() / def_lags.len() as f64
            };
            E6Row {
                retro_permille: rp,
                max_delay,
                tentative_us_per_update: t_tent / updates as f64,
                definite_us_per_update: t_def / updates as f64,
                tentative_firings: tent_firings.len(),
                definite_firings: def_firings.len(),
                definite_lag: lag,
            }
        })
        .collect()
}

// ===== E7: constraint enforcement overhead ====================================

#[derive(Debug, Clone)]
pub struct E7Row {
    pub constraints: usize,
    pub us_per_commit: f64,
    pub aborts: usize,
    /// All surviving commits satisfy every constraint.
    pub history_consistent: bool,
}

/// Sections 3/8: per-commit gate cost scales with the number of registered
/// constraints; violating transactions abort and the database state stays
/// within bounds.
pub fn e7_constraints(constraint_counts: &[usize], commits: usize, seed: u64) -> Vec<E7Row> {
    constraint_counts
        .iter()
        .map(|&c| {
            let mut adb = ActiveDatabase::new(watch_db(c.max(1)));
            for i in 0..c {
                adb.add_rule(Rule::constraint(
                    format!("cap{i}"),
                    item_watch_formula(&format!("w{i}"), -1_000_000).clone(), // placeholder replaced below
                ))
                .expect("registers");
            }
            // The placeholder above watches `> -1M` (always true); add one
            // real cap on w0 so aborts occur.
            adb.add_rule(Rule::constraint(
                "real_cap",
                parse_formula("w0_q() <= 100").expect("static"),
            ))
            .expect("registers");

            let mut rng_state = seed | 1;
            let mut aborts = 0usize;
            let start = Instant::now();
            for _ in 0..commits {
                rng_state = rng_state.wrapping_mul(6364136223846793005).wrapping_add(1);
                let v = (rng_state >> 33) as i64 % 140; // sometimes > 100
                adb.advance_clock(1).expect("clock");
                match adb.update([WriteOp::SetItem {
                    item: "w0".into(),
                    value: Value::Int(v),
                }]) {
                    Ok(_) => {}
                    Err(_) => aborts += 1,
                }
            }
            let us_per_commit = micros(start.elapsed()) / commits as f64;
            let w0 = adb.db().item("w0").expect("item").as_i64().unwrap_or(0);
            E7Row {
                constraints: c + 1,
                us_per_commit,
                aborts,
                history_consistent: w0 <= 100,
            }
        })
        .collect()
}

// ===== E8: temporal actions via `executed` ====================================

#[derive(Debug, Clone)]
pub struct E8Result {
    /// The instants at which the periodic action executed.
    pub execution_times: Vec<i64>,
    /// The instants the Section 7 schedule prescribes.
    pub expected_times: Vec<i64>,
}

/// Section 7: "whenever condition C is satisfied execute an atomic action A
/// every ten minutes for the next one hour" — implemented with the
/// `executed` predicate and clock ticks.
pub fn e8_temporal_action() -> E8Result {
    let mut adb = ActiveDatabase::new(stock_db());
    adb.set_item("bought", Value::Int(0))
        .expect("volatile set_item");
    adb.define_query(
        "bought_q",
        tdb_relation::QueryDef::new(0, tdb_relation::Query::item("bought")),
    )
    .expect("volatile define_query");
    // r1: price(IBM) < 60 → (recorded) — C of the paper's example.
    adb.add_rule(
        Rule::trigger(
            "r1",
            parse_formula("price(\"IBM\") < 60").expect("static"),
            Action::Notify,
        )
        .recording_executed(),
    )
    .expect("registers");
    // r2: executed(r1, t) ∧ time − t ≤ 60 ∧ (time − t) mod 10 = 0 → buy.
    adb.add_rule(
        Rule::trigger(
            "r2",
            parse_formula(
                "executed(r1, s) and time - s <= 60 and (time - s) % 10 = 0 \
                 and time - s > 0",
            )
            .expect("static"),
            Action::DbOps(vec![ActionOp::SetItem {
                item: "bought".into(),
                value: Term::add(Term::query("bought_q", vec![]), Term::lit(1i64)),
            }]),
        )
        .recording_executed(),
    )
    .expect("registers");

    adb.advance_clock(5).expect("clock");
    let ops = set_price_ops(adb.db(), "IBM", 50);
    adb.update(ops).expect("price drop fires r1");
    let t0 = adb
        .firings()
        .iter()
        .find(|f| f.rule == "r1")
        .expect("r1 fired")
        .time
        .0;

    // Tick minute by minute for 90 minutes.
    adb.run_until(Timestamp(t0 + 90), 1).expect("ticks");

    let execution_times: Vec<i64> = adb
        .firings()
        .iter()
        .filter(|f| f.rule == "r2")
        .map(|f| f.time.0)
        .collect();
    let expected_times: Vec<i64> = (1..=6).map(|k| t0 + 10 * k).collect();
    E8Result {
        execution_times,
        expected_times,
    }
}

// ===== E9: online vs offline satisfaction =====================================

#[derive(Debug, Clone)]
pub struct E9Result {
    pub trials: usize,
    /// Histories where online and offline satisfaction differ.
    pub disagreements: usize,
    /// Disagreements on the collapsed committed history (Theorem 2: 0).
    pub collapsed_disagreements: usize,
}

/// Section 9.3: online and offline satisfaction differ on valid-time
/// histories but coincide on collapsed committed histories (Theorem 2).
pub fn e9_online_offline(trials: usize, seed: u64) -> E9Result {
    let c = parse_formula("u2_q() = 0 or u1_q() = 1").expect("static");
    let mut disagreements = 0;
    let mut collapsed_disagreements = 0;
    let mut rng_state = seed | 1;
    let mut bits = move || {
        rng_state = rng_state.wrapping_mul(6364136223846793005).wrapping_add(1);
        rng_state >> 33
    };
    for _ in 0..trials {
        let mut base = tdb_relation::Database::new();
        base.set_item("u1", Value::Int(0));
        base.set_item("u2", Value::Int(0));
        base.define_query(
            "u1_q",
            tdb_relation::QueryDef::new(0, tdb_relation::Query::item("u1")),
        );
        base.define_query(
            "u2_q",
            tdb_relation::QueryDef::new(0, tdb_relation::Query::item("u2")),
        );
        let mut vt = VtEngine::new(base, 1000);
        vt.advance_clock(1).expect("clock");
        let t1 = vt.begin().expect("begin");
        let t2 = vt.begin().expect("begin");
        // Random interleaving of: u1 update, u2 update, commits.
        let r = bits();
        vt.advance_clock(1).expect("clock");
        let (first, second) = if r % 2 == 0 {
            ("u1", "u2")
        } else {
            ("u2", "u1")
        };
        vt.update(
            if first == "u1" { t1 } else { t2 },
            WriteOp::SetItem {
                item: first.into(),
                value: Value::Int(1),
            },
        )
        .expect("update");
        vt.advance_clock(1).expect("clock");
        vt.update(
            if second == "u1" { t1 } else { t2 },
            WriteOp::SetItem {
                item: second.into(),
                value: Value::Int(1),
            },
        )
        .expect("update");
        vt.advance_clock(1).expect("clock");
        let (ca, cb) = if (r >> 1) % 2 == 0 {
            (t1, t2)
        } else {
            (t2, t1)
        };
        vt.commit(ca).expect("commit");
        vt.advance_clock(1).expect("clock");
        vt.commit(cb).expect("commit");

        let online = online_satisfied(&vt, &c).expect("online");
        let offline = offline_satisfied(&vt, &c).expect("offline");
        if online != offline {
            disagreements += 1;
        }
        let (con, coff) = theorem2_check(&vt, &c).expect("theorem 2");
        if con != coff {
            collapsed_disagreements += 1;
        }
    }
    E9Result {
        trials,
        disagreements,
        collapsed_disagreements,
    }
}

// ===== E10: aux-relation vs formula-state strategy ============================

#[derive(Debug, Clone)]
pub struct E10Row {
    pub history_len: usize,
    pub formula_state_us: f64,
    pub aux_relation_us: f64,
    pub formula_state_retained: usize,
    pub aux_versions_retained: usize,
    pub firings_agree: bool,
}

/// Section 5's two implementation strategies, compared on the
/// worked-example condition.
pub fn e10_auxrel(sizes: &[usize], seed: u64) -> Vec<E10Row> {
    let f = ibm_doubled_formula();
    sizes
        .iter()
        .map(|&n| {
            let engine = ticker_engine(n, seed);
            let mut inc = IncrementalEvaluator::compile(&f).expect("compiles");
            let mut aux = AuxEvaluator::new(f.clone(), Some(10)).expect("decomposable");
            let (mut t_inc, mut t_aux) = (0.0, 0.0);
            let mut agree = true;
            let mut first = true;
            for (i, s) in engine.history().iter() {
                let start = Instant::now();
                let a = !inc.advance_and_fire(s, i).expect("advance").is_empty();
                t_inc += micros(start.elapsed());
                let start = Instant::now();
                let b = aux.advance(s).expect("advance");
                t_aux += micros(start.elapsed());
                // The aux evaluator sees the initial empty state too, so
                // firings align state-for-state except nothing fires there.
                if !first {
                    agree &= a == b;
                }
                first = false;
            }
            E10Row {
                history_len: n,
                formula_state_us: t_inc / (n + 1) as f64,
                aux_relation_us: t_aux / (n + 1) as f64,
                formula_state_retained: inc.retained_size(),
                aux_versions_retained: aux.retained_versions(),
                firings_agree: agree,
            }
        })
        .collect()
}

// ===== E11: worked-example checklist ==========================================

#[derive(Debug, Clone)]
pub struct E11Row {
    pub example: &'static str,
    pub pass: bool,
}

/// Every worked example in the paper, evaluated end-to-end.
pub fn e11_worked_examples() -> Vec<E11Row> {
    let mut rows = Vec::new();

    // 1. IBM doubled in 10 units — fires on the paper's first history.
    rows.push(E11Row {
        example: "IBM price doubled within 10 units (history (10,1)(15,2)(18,5)(25,8))",
        pass: {
            let mut e = tdb_engine::Engine::new(stock_db());
            e.set_auto_tick(false);
            let mut ev = IncrementalEvaluator::compile(&ibm_doubled_formula()).expect("ok");
            let mut fired = vec![];
            for (p, t) in [(10, 1), (15, 2), (18, 5), (25, 8)] {
                e.advance_clock_to(Timestamp(t)).expect("clock");
                let ops = set_price_ops(e.db(), "IBM", p);
                e.apply_update(ops).expect("update");
            }
            for (i, s) in e.history().iter() {
                fired.push(!ev.advance_and_fire(s, i).expect("adv").is_empty());
            }
            fired == vec![false, false, false, false, true]
        },
    });

    // 2. The optimization history — never fires.
    rows.push(E11Row {
        example: "same condition on history (10,1)(15,2)(18,5)(11,20) — never fires",
        pass: {
            let mut e = tdb_engine::Engine::new(stock_db());
            e.set_auto_tick(false);
            let mut ev = IncrementalEvaluator::compile(&ibm_doubled_formula()).expect("ok");
            let mut any = false;
            for (p, t) in [(10, 1), (15, 2), (18, 5), (11, 20)] {
                e.advance_clock_to(Timestamp(t)).expect("clock");
                let ops = set_price_ops(e.db(), "IBM", p);
                e.apply_update(ops).expect("update");
            }
            for (i, s) in e.history().iter() {
                any |= !ev.advance_and_fire(s, i).expect("adv").is_empty();
            }
            !any
        },
    });

    // 3. "A remains positive while X is logged in" — violation detected.
    rows.push(E11Row {
        example: "value of A remains positive while user X is logged in",
        pass: {
            let mut db = tdb_relation::Database::new();
            db.set_item("A", Value::Int(5));
            db.define_query(
                "a",
                tdb_relation::QueryDef::new(0, tdb_relation::Query::item("A")),
            );
            let mut adb = ActiveDatabase::new(db);
            adb.add_rule(Rule::trigger(
                "session_violation",
                parse_formula("a() <= 0 and (not @logout(\"X\") since @login(\"X\"))")
                    .expect("static"),
                Action::Notify,
            ))
            .expect("registers");
            adb.emit(Event::new("login", vec![Value::str("X")]))
                .expect("emit");
            adb.update([WriteOp::SetItem {
                item: "A".into(),
                value: Value::Int(-1),
            }])
            .expect("update");
            let during = adb.firings().len() == 1;
            adb.emit(Event::new("logout", vec![Value::str("X")]))
                .expect("emit");
            adb.update([WriteOp::SetItem {
                item: "A".into(),
                value: Value::Int(-2),
            }])
            .expect("update");
            during && adb.firings().len() == 1
        },
    });

    // 4. SHARP-INCREASE-style free variable: which stocks are overpriced.
    rows.push(E11Row {
        example: "free-variable firing: x in names() ∧ price(x) ≥ 300 binds x",
        pass: {
            let mut adb = ActiveDatabase::new(stock_db());
            adb.add_rule(Rule::trigger(
                "overpriced",
                parse_formula("x in names() and price(x) >= 300").expect("static"),
                Action::Notify,
            ))
            .expect("registers");
            adb.advance_clock(1).expect("clock");
            let ops = set_price_ops(adb.db(), "IBM", 350);
            adb.update(ops).expect("update");
            let ops = set_price_ops(adb.db(), "DEC", 45);
            adb.advance_clock(1).expect("clock");
            adb.update(ops).expect("update");
            adb.firings().len() == 1 && adb.firings()[0].env["x"] == Value::str("IBM")
        },
    });

    // 5. Hourly average above 70 (aggregate rewriting end-to-end).
    rows.push(E11Row {
        example: "avg(price(IBM); start; @update_stocks) > 70 via register rewriting",
        pass: {
            let mut adb = ActiveDatabase::new(stock_db());
            adb.add_rule(Rule::trigger(
                "avg_high",
                hourly_average_formula(70),
                Action::Notify,
            ))
            .expect("registers");
            for p in [60, 90, 95] {
                adb.advance_clock(1).expect("clock");
                let ops = set_price_ops(adb.db(), "IBM", p);
                adb.update(ops).expect("update");
                adb.emit(Event::simple("update_stocks")).expect("emit");
            }
            adb.tick().expect("settle");
            // avg(60, 90, 95) = 81.67 > 70 — fires after the second sample
            // (avg 75) already.
            adb.firings().iter().any(|f| f.rule == "avg_high")
        },
    });

    // 6. The u1-before-u2 online/offline distinction.
    rows.push(E11Row {
        example: "u1-before-u2: offline-satisfied but not online-satisfied (§9.3)",
        pass: {
            let r = e9_online_offline(16, 12345);
            r.disagreements > 0 && r.collapsed_disagreements == 0
        },
    });

    // 7. Temporal action: buy every 10 minutes for an hour.
    rows.push(E11Row {
        example: "temporal action: A every 10 minutes for 1 hour after C (§7)",
        pass: {
            let r = e8_temporal_action();
            r.execution_times == r.expected_times
        },
    });

    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e1_speedup_grows_with_history() {
        let rows = e1_incremental_vs_naive(&[100, 800], 42);
        assert!(rows.iter().all(|r| r.firings_agree));
        assert!(
            rows[1].speedup > rows[0].speedup,
            "naive cost must grow with history: {rows:?}"
        );
    }

    #[test]
    fn e2_pruned_state_is_bounded() {
        let rows = e2_pruning(&[200, 2000], 42);
        // Pruned retained size is flat; unpruned grows.
        assert!(rows[1].retained_pruned <= rows[0].retained_pruned * 2);
        assert!(rows[1].retained_unpruned.unwrap() > rows[0].retained_unpruned.unwrap() * 4);
    }

    #[test]
    fn e3_filtering_reduces_evaluations() {
        let rows = e3_relevance(&[64], 200, 7);
        let r = &rows[0];
        assert!(r.firings_agree);
        assert!(r.evals_filtered * 4 < r.evals_unfiltered, "{r:?}");
    }

    #[test]
    fn e4_values_agree() {
        let rows = e4_aggregates(&[100], 7);
        assert!(rows[0].values_agree, "{rows:?}");
    }

    #[test]
    fn e5_dfa_blows_up_ptl_does_not() {
        let rows = e5_eventexpr(&[4, 6], 200, 7);
        for r in &rows {
            assert!(r.detectors_agree, "k={}", r.k);
            assert!(r.min_dfa_states >= 1 << r.k);
            assert!(r.ptl_retained_size <= 4 * r.k + 8);
        }
    }

    #[test]
    fn e8_executes_six_times_on_schedule() {
        let r = e8_temporal_action();
        assert_eq!(r.execution_times, r.expected_times);
    }

    #[test]
    fn e9_distinction_and_theorem2() {
        let r = e9_online_offline(32, 99);
        assert!(r.disagreements > 0);
        assert_eq!(r.collapsed_disagreements, 0);
    }

    #[test]
    fn e10_strategies_agree() {
        let rows = e10_auxrel(&[300], 42);
        assert!(rows[0].firings_agree);
    }

    #[test]
    fn e11_all_examples_pass() {
        for row in e11_worked_examples() {
            assert!(row.pass, "worked example failed: {}", row.example);
        }
    }

    #[test]
    fn e7_history_stays_consistent() {
        let rows = e7_constraints(&[4], 100, 3);
        let r = &rows[0];
        assert!(r.history_consistent);
        assert!(r.aborts > 0, "some commits must violate: {r:?}");
    }

    #[test]
    fn e6_definite_lags_tentative() {
        let rows = e6_validtime(&[100], 150, 20, 11);
        let r = &rows[0];
        assert!(r.tentative_firings >= r.definite_firings);
    }
}

// ===== E12: Theorem-1 checkpoints — size and recovery latency ================

/// One row of the E12 table.
#[derive(Debug, Clone)]
pub struct E12Row {
    pub history_len: usize,
    /// Newest checkpoint payload on disk, bytes.
    pub checkpoint_bytes: u64,
    /// Log bytes past that checkpoint (the replay tail).
    pub wal_tail_bytes: u64,
    /// Wall-clock cost of `recover()` from disk, milliseconds.
    pub recovery_ms: f64,
    /// Logged ops replayed on top of the checkpoint.
    pub ops_replayed: usize,
    /// Sanity: the recovered system equals the pre-crash one.
    pub state_matches: bool,
}

/// Theorem 1's durability payoff: the formula states summarize the history,
/// so checkpoint size and recovery latency are flat in the history length
/// (bounded by formula state + the inter-checkpoint log tail), not O(n).
pub fn e12_durability(sizes: &[usize], seed: u64) -> Vec<E12Row> {
    use tdb_storage::{recover, CheckpointPolicy, FileStorage};

    let catalog = vec![Rule::trigger(
        "doubled",
        ibm_doubled_formula(),
        Action::Notify,
    )];
    sizes
        .iter()
        .map(|&n| {
            let dir = std::env::temp_dir().join(format!("tdb-e12-{}-{n}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            let policy = CheckpointPolicy {
                every_ops: 64,
                every_bytes: 0,
                sync: tdb_core::SyncPolicy::Never,
            };
            let storage = FileStorage::create(&dir, policy).expect("storage dir");
            let mut adb = ActiveDatabase::with_storage(
                stock_db(),
                ManagerConfig::default(),
                Box::new(storage),
            )
            .expect("durable facade");
            for r in &catalog {
                adb.add_rule(r.clone()).expect("registers");
            }
            let mut ticker = Ticker::new(seed, 20);
            let mut delivered = 0usize;
            for _ in 0..n {
                let p = ticker.step_with_crashes(40_000);
                adb.advance_clock(1).expect("clock");
                let ops = set_price_ops(adb.db(), "IBM", p);
                adb.update(ops).expect("update");
                // A consumer drains the firing log as it goes, so the
                // checkpoint carries only undelivered firings. Across a
                // crash, delivery is at-least-once: the replayed tail
                // re-fires anything drained after the last checkpoint.
                delivered += adb.take_firings().len();
            }
            assert!(delivered > 0 || n < 64, "workload produced firings");
            let ref_db = adb.db().clone();
            let ref_now = adb.now();
            drop(adb); // crash

            let (checkpoint_bytes, wal_tail_bytes) = durability_footprint(&dir);
            let start = Instant::now();
            let rec = recover(&dir, &catalog, ManagerConfig::default()).expect("recovers");
            let recovery_ms = start.elapsed().as_secs_f64() * 1e3;
            let state_matches = rec.adb.db() == &ref_db && rec.adb.now() == ref_now;
            let ops_replayed = rec.report.ops_replayed;
            let _ = std::fs::remove_dir_all(&dir);
            E12Row {
                history_len: n,
                checkpoint_bytes,
                wal_tail_bytes,
                recovery_ms,
                ops_replayed,
                state_matches,
            }
        })
        .collect()
}

/// (newest checkpoint size, bytes of log at or past its sequence number).
fn durability_footprint(dir: &std::path::Path) -> (u64, u64) {
    let mut newest_ckpt = (0u64, 0u64);
    let mut segments: Vec<(u64, u64)> = Vec::new();
    for entry in std::fs::read_dir(dir).expect("read dir") {
        let entry = entry.expect("dir entry");
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let len = entry.metadata().expect("metadata").len();
        if let Some(seq) = name
            .strip_prefix("ckpt-")
            .and_then(|s| s.strip_suffix(".bin"))
        {
            let seq: u64 = seq.parse().expect("sequence");
            if seq >= newest_ckpt.0 {
                newest_ckpt = (seq, len);
            }
        } else if let Some(seq) = name
            .strip_prefix("wal-")
            .and_then(|s| s.strip_suffix(".log"))
        {
            segments.push((seq.parse().expect("sequence"), len));
        }
    }
    let tail: u64 = segments
        .iter()
        .filter(|(seq, _)| *seq >= newest_ckpt.0)
        .map(|(_, len)| len)
        .sum();
    (newest_ckpt.1, tail)
}

// ===== E13: parallel dispatch — throughput vs rules × workers ================

/// One row of the E13 table.
#[derive(Debug, Clone)]
pub struct E13Row {
    pub rules: usize,
    pub workers: usize,
    /// Dispatch cost per state, µs.
    pub us_per_state: f64,
    /// States dispatched per second.
    pub states_per_sec: f64,
    /// Throughput relative to the workers=1 run at the same rule count.
    pub speedup_vs_seq: f64,
    /// The firing sequence (order included) equals the sequential run's.
    pub identical_firings: bool,
    /// Dispatch batches that actually ran on more than one worker.
    pub parallel_batches: u64,
    /// Batches the adaptive scheduler demoted to one worker (too little
    /// measured work per rule, or a single-CPU host).
    pub adaptive_seq_batches: u64,
}

/// Theorem 1 makes dispatch embarrassingly parallel: each rule's formula
/// state depends only on the current state and that rule's previous
/// state, so the relevant-rule set partitions across workers and the
/// merged firing sequence is byte-identical to the sequential one. This
/// sweep measures dispatch throughput as rules × workers grow; speedup
/// requires actual cores (a single-CPU host shows ≈ 1×, plus scoped-spawn
/// overhead), but the identity of the firing sequences holds anywhere.
pub fn e13_parallel_dispatch(
    rule_counts: &[usize],
    worker_counts: &[usize],
    states: usize,
    seed: u64,
) -> Vec<E13Row> {
    use tdb_core::ParallelConfig;

    let mut out = Vec::new();
    for &r in rule_counts {
        let run_once = |workers: usize| -> (f64, Vec<(String, i64, tdb_ptl::Env)>, u64, u64) {
            let mut adb = ActiveDatabase::with_config(
                watch_db(r),
                ManagerConfig {
                    // No filtering, no delta dispatch: every rule fully
                    // evaluates every state, which is the regime parallel
                    // dispatch is for.
                    relevance_filtering: false,
                    delta_dispatch: false,
                    parallel: ParallelConfig {
                        workers,
                        min_rules_per_worker: 16,
                        // Let the scheduler demote batches whose per-rule
                        // work cannot amortize the thread spawns, so no
                        // worker count reads slower than sequential.
                        adaptive: true,
                    },
                    ..Default::default()
                },
            );
            for i in 0..r {
                // An edge-triggered temporal condition: fires when the
                // watched item first rises above the threshold since the
                // previous state — real per-rule work for each dispatch.
                let f = parse_formula(&format!("w{i}_q() > 100 and previously(w{i}_q() <= 100)"))
                    .expect("static formula");
                adb.add_rule(Rule::trigger(format!("watch{i}"), f, Action::Notify))
                    .expect("registers");
            }
            let mut rng_state = seed;
            let start = Instant::now();
            for k in 0..states {
                rng_state = rng_state.wrapping_mul(6364136223846793005).wrapping_add(1);
                let item = (rng_state >> 33) as usize % r;
                let value = 90 + (k as i64 % 21); // crosses 100 sometimes
                adb.advance_clock(1).expect("clock");
                adb.update([WriteOp::SetItem {
                    item: format!("w{item}"),
                    value: Value::Int(value),
                }])
                .expect("update");
            }
            let us_per_state = micros(start.elapsed()) / states as f64;
            let firings = adb
                .firings()
                .iter()
                .map(|f| (f.rule.clone(), f.time.0, f.env.clone()))
                .collect();
            let stats = adb.stats();
            (
                us_per_state,
                firings,
                stats.parallel_batches,
                stats.adaptive_seq_batches,
            )
        };
        // Interleaved best-of-five repetitions: the workload is
        // deterministic, so the minimum is the least-noise estimate
        // (container jitter only ever slows a run down), and sweeping the
        // worker counts round-robin spreads that jitter across all
        // configurations instead of biasing whichever ran last.
        let mut sweep: Vec<usize> = vec![1];
        sweep.extend(worker_counts.iter().copied().filter(|&w| w != 1));
        type Rep = (f64, Vec<(String, i64, tdb_ptl::Env)>, u64, u64);
        let mut best: std::collections::HashMap<usize, Rep> = std::collections::HashMap::new();
        for _ in 0..5 {
            for &w in &sweep {
                let rep = run_once(w);
                match best.get(&w) {
                    Some(b) if rep.0 >= b.0 => {}
                    _ => {
                        best.insert(w, rep);
                    }
                }
            }
        }

        let (seq_us, seq_firings, _, _) = best[&1].clone();
        for &w in worker_counts {
            let (us, firings, batches, demoted) = if w == 1 {
                (seq_us, seq_firings.clone(), 0, 0)
            } else {
                best[&w].clone()
            };
            out.push(E13Row {
                rules: r,
                workers: w,
                us_per_state: us,
                states_per_sec: 1e6 / us,
                speedup_vs_seq: seq_us / us,
                identical_firings: firings == seq_firings,
                parallel_batches: batches,
                adaptive_seq_batches: demoted,
            });
        }
    }
    out
}

// ===== E15: delta-driven dispatch — sparse updates over many rules ===========

/// One row of the E15 table (one run configuration).
#[derive(Debug, Clone)]
pub struct E15Row {
    pub rules: usize,
    pub relations: usize,
    /// Whether delta-driven dispatch was on for this run.
    pub delta_dispatch: bool,
    /// Full pipeline cost per state, µs (clock + commit + dispatch).
    pub us_per_state: f64,
    pub states_per_sec: f64,
    /// Throughput relative to the exhaustive (delta off) run.
    pub speedup_vs_exhaustive: f64,
    /// The firing sequence (order included) equals the exhaustive run's.
    pub identical_firings: bool,
    /// Full evaluations performed.
    pub evaluations: u64,
    /// Sparse (fast-path) advances performed.
    pub sparse_advances: u64,
}

/// The sparse-update regime the read-set index is for: many rules, each
/// reading one of `relations` base relations, while every update touches
/// exactly one relation. Exhaustive dispatch re-evaluates all `rules`
/// conditions per state; delta dispatch fully evaluates only the
/// `rules / relations` readers of the touched relation and moves the rest
/// through the sparse path. Firings must be byte-identical — delta
/// dispatch, unlike §8 relevance filtering, is not allowed to change
/// semantics.
pub fn e15_delta_dispatch(rules: usize, relations: usize, states: usize, seed: u64) -> Vec<E15Row> {
    use tdb_core::{ManagerStats, ParallelConfig};
    let relations = relations.max(1);

    let run_once = |delta: bool| -> (f64, Vec<(String, i64, tdb_ptl::Env)>, ManagerStats) {
        let mut adb = ActiveDatabase::with_config(
            relation_watch_db(relations),
            ManagerConfig {
                relevance_filtering: false,
                delta_dispatch: delta,
                // Sequential: isolate the delta effect from thread scaling.
                parallel: ParallelConfig::sequential(),
                ..Default::default()
            },
        );
        for i in 0..rules {
            let j = i % relations;
            // Edge-style temporal condition over one relation's single row.
            let f = parse_formula(&format!("r{j}_q() > 100 and previously(r{j}_q() <= 100)"))
                .expect("static formula");
            adb.add_rule(Rule::trigger(format!("watch{i}"), f, Action::Notify))
                .expect("registers");
        }
        let mut rng_state = seed;
        let start = Instant::now();
        for k in 0..states {
            rng_state = rng_state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let j = (rng_state >> 33) as usize % relations;
            let value = 90 + (k as i64 % 21); // crosses 100 sometimes
            adb.advance_clock(1).expect("clock");
            let ops = set_watch_row_ops(adb.db(), j, value);
            adb.update(ops).expect("update");
        }
        let us_per_state = micros(start.elapsed()) / states as f64;
        let firings = adb
            .firings()
            .iter()
            .map(|f| (f.rule.clone(), f.time.0, f.env.clone()))
            .collect();
        (us_per_state, firings, adb.stats())
    };
    // Best of two repetitions per configuration (deterministic workload;
    // jitter only slows runs down).
    let run = |delta: bool| {
        let mut best = run_once(delta);
        let rep = run_once(delta);
        if rep.0 < best.0 {
            best.0 = rep.0;
        }
        best
    };

    let (ex_us, ex_firings, ex_stats) = run(false);
    let (d_us, d_firings, d_stats) = run(true);
    vec![
        E15Row {
            rules,
            relations,
            delta_dispatch: false,
            us_per_state: ex_us,
            states_per_sec: 1e6 / ex_us,
            speedup_vs_exhaustive: 1.0,
            identical_firings: true,
            evaluations: ex_stats.evaluations,
            sparse_advances: ex_stats.sparse_advances,
        },
        E15Row {
            rules,
            relations,
            delta_dispatch: true,
            us_per_state: d_us,
            states_per_sec: 1e6 / d_us,
            speedup_vs_exhaustive: ex_us / d_us,
            identical_firings: d_firings == ex_firings,
            evaluations: d_stats.evaluations,
            sparse_advances: d_stats.sparse_advances,
        },
    ]
}

// ===== E18: group commit — durable ingest throughput =========================

/// One row of the E18 table (one rule count × one commit granularity).
#[derive(Debug, Clone)]
pub struct E18Row {
    /// Rules registered (each watching one relation).
    pub rules: usize,
    /// States per group commit; `0` marks the per-op baseline (every
    /// logical op is its own WAL record and fsync).
    pub batch: usize,
    pub us_per_state: f64,
    pub states_per_sec: f64,
    /// Throughput relative to the per-op durable baseline at the same
    /// rule count.
    pub speedup_vs_per_op: f64,
    /// The firing sequence (rule, time, env — order included) equals the
    /// per-op run's.
    pub identical_firings: bool,
}

/// Group commit with durability on: the E15 sparse-update workload driven
/// through a real [`FileStorage`] under `SyncPolicy::Always`, per-op
/// commits (two fsyncs per state: clock + update) vs `commit_batch` groups
/// riding one WAL record and one fsync each. The firing log must be
/// byte-identical at every batch size — group commit changes *when*
/// evaluation runs (once per batch, §8's delayed-not-lost schedule), never
/// what fires, and the catalog here is Notify-only so even the delayed
/// schedule reproduces the per-op interleaving exactly.
///
/// Swept over rule counts because the two regimes bound the speedup
/// differently: with few rules per update the per-state cost is
/// fsync-dominated and batching returns the full fsync amortization
/// (≥10× on any host where an fsync costs ≥ a few rule evaluations);
/// with many rules the required evaluation work — identical on both
/// sides — becomes the floor, and the measured ratio is host-limited by
/// how cheap this machine's fsync is.
pub fn e18_group_commit(
    rule_counts: &[usize],
    relations: usize,
    states: usize,
    seed: u64,
    batches: &[usize],
) -> Vec<E18Row> {
    use tdb_core::storage::{LogicalOp, SyncPolicy};
    use tdb_core::ParallelConfig;
    use tdb_storage::{CheckpointPolicy, FileStorage};
    let relations = relations.max(1);

    // The whole update script, precomputed: state k replaces relation
    // `W<script[k].0>`'s single row with `script[k].1`.
    let script: Vec<(usize, i64)> = {
        let mut rng_state = seed;
        (0..states)
            .map(|k| {
                rng_state = rng_state.wrapping_mul(6364136223846793005).wrapping_add(1);
                let j = (rng_state >> 33) as usize % relations;
                (j, 90 + (k as i64 % 21)) // crosses 100 sometimes
            })
            .collect()
    };

    let fresh_adb = |rules: usize, tag: &str| -> (std::path::PathBuf, ActiveDatabase) {
        let dir = std::env::temp_dir().join(format!("tdb-e18-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let policy = CheckpointPolicy {
            every_ops: usize::MAX, // isolate append/fsync cost from checkpoints
            every_bytes: 0,
            sync: SyncPolicy::Always,
        };
        let storage = FileStorage::create(&dir, policy).expect("storage dir");
        let mut adb = ActiveDatabase::with_storage(
            relation_watch_db(relations),
            ManagerConfig {
                relevance_filtering: false,
                delta_dispatch: true,
                parallel: ParallelConfig::sequential(),
                ..Default::default()
            },
            Box::new(storage),
        )
        .expect("durable facade");
        for i in 0..rules {
            let j = i % relations;
            let f = parse_formula(&format!("r{j}_q() > 100 and previously(r{j}_q() <= 100)"))
                .expect("static formula");
            adb.add_rule(Rule::trigger(format!("watch{i}"), f, Action::Notify))
                .expect("registers");
        }
        (dir, adb)
    };
    let firings_of = |adb: &ActiveDatabase| -> Vec<(String, i64, tdb_ptl::Env)> {
        adb.firings()
            .iter()
            .map(|f| (f.rule.clone(), f.time.0, f.env.clone()))
            .collect()
    };

    // fsync latency on a shared host drifts by integer factors between
    // runs; each configuration keeps the best of a few repetitions so the
    // table reflects the workload, not a background-load spike. Every
    // repetition's firing log still has to match the baseline's.
    const REPS: usize = 3;

    let mut rows = Vec::new();
    for &rules in rule_counts {
        // Per-op durable baseline: each state is advance_clock + update,
        // each logical op its own record and fsync.
        let mut base_us = f64::INFINITY;
        let mut base_firings = Vec::new();
        for rep in 0..REPS {
            let (dir, mut adb) = fresh_adb(rules, &format!("r{rules}-perop"));
            let start = Instant::now();
            for &(j, value) in &script {
                adb.advance_clock(1).expect("clock");
                let ops = set_watch_row_ops(adb.db(), j, value);
                adb.update(ops).expect("update");
            }
            let us = micros(start.elapsed()) / states as f64;
            base_us = base_us.min(us);
            if rep == 0 {
                base_firings = firings_of(&adb);
            }
            drop(adb);
            let _ = std::fs::remove_dir_all(&dir);
        }

        rows.push(E18Row {
            rules,
            batch: 0,
            us_per_state: base_us,
            states_per_sec: 1e6 / base_us,
            speedup_vs_per_op: 1.0,
            identical_firings: true,
        });

        for &batch in batches {
            let mut best_us = f64::INFINITY;
            let mut identical = true;
            for _ in 0..REPS {
                let (dir, mut adb) = fresh_adb(rules, &format!("r{rules}-b{batch}"));
                // Lower the script to logical ops against a shadow of the
                // single-row relations (the live row may be unapplied
                // mid-batch).
                let mut shadow = vec![0i64; relations];
                let start = Instant::now();
                for chunk in script.chunks(batch) {
                    let mut ops = Vec::with_capacity(chunk.len() * 2);
                    for &(j, value) in chunk {
                        ops.push(LogicalOp::AdvanceClock { delta: 1 });
                        ops.push(LogicalOp::Update {
                            ops: vec![
                                WriteOp::Delete {
                                    relation: format!("W{j}"),
                                    tuple: tdb_relation::tuple![shadow[j]],
                                },
                                WriteOp::Insert {
                                    relation: format!("W{j}"),
                                    tuple: tdb_relation::tuple![value],
                                },
                            ],
                        });
                        shadow[j] = value;
                    }
                    for out in adb.commit_batch(&ops, &[]).expect("batch commits") {
                        out.result.expect("no vetoes in this workload");
                    }
                }
                let us = micros(start.elapsed()) / states as f64;
                best_us = best_us.min(us);
                identical &= firings_of(&adb) == base_firings;
                drop(adb);
                let _ = std::fs::remove_dir_all(&dir);
            }
            rows.push(E18Row {
                rules,
                batch,
                us_per_state: best_us,
                states_per_sec: 1e6 / best_us,
                speedup_vs_per_op: base_us / best_us,
                identical_firings: identical,
            });
        }
    }
    rows
}

// ===== E19: batch-safety certificates — certified eager batching ===========

/// One row of the E19 table (one catalog × one batch size).
#[derive(Debug, Clone)]
pub struct E19Row {
    /// Catalog name (`exact`, `stratified`, `cascade-required`).
    pub catalog: &'static str,
    /// The certificate the analyzer assigned at registration, rendered.
    pub certificate: String,
    pub batch: usize,
    /// Durable ingest cost under certified eager batching, µs/state.
    pub eager_us_per_state: f64,
    /// Eager batching vs the per-op durable baseline.
    pub eager_speedup: f64,
    /// Always-fused (delayed-schedule) batching vs the same baseline —
    /// the upper bound group commit alone can reach.
    pub fused_speedup: f64,
    /// `eager_speedup / fused_speedup`: how much of the fused-batch
    /// speedup certified execution retains while staying per-op faithful.
    pub retention: f64,
    /// The eager firing log (rule, time, env — order included) is
    /// byte-identical to the per-op run's.
    pub identical_firings: bool,
}

/// Certified eager batching vs always-fused batching, per certificate
/// class. Three catalogs over the differential schema — no writers
/// (`exact`), an acyclic write cascade (`stratified`), a write cycle
/// (`cascade-required`) — each driven through a durable `FileStorage`
/// under `SyncPolicy::Always` three ways: per-op commits (the semantic
/// baseline), `commit_batch` in always-fused delayed mode (PR 7
/// semantics: fast, but firings may land late), and `commit_batch` in
/// eager mode, where the certificate picks the dispatch strategy (fused /
/// fenced strata / per-op drains) and the firing log must stay
/// byte-identical to the baseline. `retention` says how much of the
/// fused-batch speedup certification keeps while restoring exactness:
/// near 1.0 for `exact` (same code path) and `stratified` (fences only
/// where a writer can fire), lower for `cascade-required` (a drain after
/// every state-producing op — correctness at a documented cost).
pub fn e19_certified_batching(states: usize, seed: u64, batches: &[usize]) -> Vec<E19Row> {
    use tdb_core::manager::CascadeMode;
    use tdb_core::storage::SyncPolicy;
    use tdb_core::ParallelConfig;
    use tdb_storage::{CheckpointPolicy, FileStorage};

    use crate::workload::{
        apply_diff_step, diff_step_ops, differential_cascade_rules, differential_steps,
        differential_stratified_rules, differential_writer_db, DIFF_ITEMS, DIFF_RELATIONS,
    };

    // Pure notify catalog: rising-edge watches, no data writes → exact.
    let exact_rules = || -> Vec<Rule> {
        let mut rules = Vec::new();
        for i in 0..DIFF_ITEMS {
            let f = parse_formula(&format!("w{i}_q() > 100 and previously(w{i}_q() <= 100)"))
                .expect("static formula");
            rules.push(Rule::trigger(format!("edge_w{i}"), f, Action::Notify));
        }
        for j in 0..DIFF_RELATIONS {
            let f = parse_formula(&format!("r{j}_q() > 110 and previously(r{j}_q() <= 110)"))
                .expect("static formula");
            rules.push(Rule::trigger(format!("edge_r{j}"), f, Action::Notify));
        }
        rules
    };
    let catalogs: Vec<(&'static str, Vec<Rule>)> = vec![
        ("exact", exact_rules()),
        ("stratified", differential_stratified_rules()),
        ("cascade-required", differential_cascade_rules()),
    ];
    let steps = differential_steps(seed, states);

    let fresh = |rules: &[Rule], mode: CascadeMode, tag: &str| {
        let dir = std::env::temp_dir().join(format!("tdb-e19-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let policy = CheckpointPolicy {
            every_ops: usize::MAX, // isolate append/fsync cost from checkpoints
            every_bytes: 0,
            sync: SyncPolicy::Always,
        };
        let storage = FileStorage::create(&dir, policy).expect("storage dir");
        let mut adb = ActiveDatabase::with_storage(
            differential_writer_db(),
            ManagerConfig {
                relevance_filtering: false,
                delta_dispatch: true,
                parallel: ParallelConfig::sequential(),
                cascade: mode,
                ..Default::default()
            },
            Box::new(storage),
        )
        .expect("durable facade");
        for r in rules {
            adb.add_rule(r.clone()).expect("registers");
        }
        (dir, adb)
    };
    let firings_of = |adb: &ActiveDatabase| -> Vec<(String, i64, tdb_ptl::Env)> {
        adb.firings()
            .iter()
            .map(|f| (f.rule.clone(), f.time.0, f.env.clone()))
            .collect()
    };

    // Best-of-REPS per configuration, as in E18: fsync latency on a shared
    // host drifts between runs; identity still has to hold on every rep.
    const REPS: usize = 3;

    let mut rows = Vec::new();
    for (name, rules) in &catalogs {
        // Per-op durable baseline: the reference firing log.
        let mut base_us = f64::INFINITY;
        let mut base_firings = Vec::new();
        for rep in 0..REPS {
            let (dir, mut adb) = fresh(rules, CascadeMode::Delayed, &format!("{name}-perop"));
            let start = Instant::now();
            for s in &steps {
                apply_diff_step(&mut adb, s);
            }
            base_us = base_us.min(micros(start.elapsed()) / states as f64);
            if rep == 0 {
                base_firings = firings_of(&adb);
            }
            drop(adb);
            let _ = std::fs::remove_dir_all(&dir);
        }

        let run_batched = |mode: CascadeMode, batch: usize, tag: &str| -> (f64, bool, String) {
            let mut best_us = f64::INFINITY;
            let mut identical = true;
            let mut cert = String::new();
            for _ in 0..REPS {
                let (dir, mut adb) = fresh(rules, mode, tag);
                cert = adb.batch_certificate().to_string();
                let mut shadow = vec![0i64; DIFF_RELATIONS];
                let start = Instant::now();
                for chunk in steps.chunks(batch) {
                    let mut ops = Vec::with_capacity(chunk.len() * 2);
                    for s in chunk {
                        ops.extend(diff_step_ops(s, &mut shadow));
                    }
                    for out in adb.commit_batch(&ops, &[]).expect("batch commits") {
                        out.result.expect("no vetoes in this workload");
                    }
                }
                best_us = best_us.min(micros(start.elapsed()) / states as f64);
                identical &= firings_of(&adb) == base_firings;
                drop(adb);
                let _ = std::fs::remove_dir_all(&dir);
            }
            (best_us, identical, cert)
        };

        for &batch in batches {
            let (fused_us, _, _) =
                run_batched(CascadeMode::Delayed, batch, &format!("{name}-f{batch}"));
            let (eager_us, identical, cert) =
                run_batched(CascadeMode::Eager, batch, &format!("{name}-e{batch}"));
            let eager_speedup = base_us / eager_us;
            let fused_speedup = base_us / fused_us;
            rows.push(E19Row {
                catalog: name,
                certificate: cert,
                batch,
                eager_us_per_state: eager_us,
                eager_speedup,
                fused_speedup,
                retention: eager_speedup / fused_speedup,
                identical_firings: identical,
            });
        }
    }
    rows
}

// ===== E14: analyzer verdicts vs measured residual growth ==================

/// One workload of the static-analyzer cross-validation.
#[derive(Debug)]
pub struct E14Row {
    pub workload: &'static str,
    pub formula: &'static str,
    /// `tdb_analysis::certify` verdict, rendered.
    pub verdict: String,
    /// Retained residual nodes after the short history.
    pub retained_short: usize,
    /// Retained residual nodes after the long history.
    pub retained_long: usize,
    /// `retained_long / retained_short`.
    pub growth: f64,
    /// The measured curve matches the certified class: `Bounded(k)` never
    /// exceeds `k`, a window verdict plateaus (no new peak after the short
    /// prefix), `Unbounded` at least doubles between the two checkpoints.
    pub consistent: bool,
}

/// Adversarial history shared by every E14 workload: the clock ticks once
/// per state, `price()` cycles through small values, `@login(uN)` carries a
/// fresh binding each state, and a fixed user `"X"` logs in every 10th and
/// out every 25th state.
fn e14_drive(src: &str, states: usize) -> Vec<usize> {
    use tdb_engine::{EventSet, SystemState};
    use tdb_relation::{Database, Query, QueryDef};
    let f = parse_formula(src).expect("parse");
    let mut ev = IncrementalEvaluator::new(&f, EvalConfig::default()).expect("compile");
    let mut db = Database::new();
    db.define_query("price", QueryDef::new(0, Query::item("P")));
    let mut sizes = Vec::with_capacity(states);
    for i in 0..states {
        db.set_item("P", Value::Int(1 + (i as i64 % 7)));
        let mut events = EventSet::new();
        events.insert(Event::new("login", vec![Value::str(format!("u{i}"))]));
        if i % 10 == 0 {
            events.insert(Event::new("login", vec![Value::str("X")]));
        }
        if i % 25 == 0 {
            events.insert(Event::new("logout", vec![Value::str("X")]));
        }
        let state = SystemState::new(db.clone(), events, Timestamp(i as i64));
        ev.advance(&state, i).expect("advance");
        sizes.push(ev.retained_size());
    }
    sizes
}

/// Certify each workload statically, then measure actual residual retention
/// at two history lengths and check the measurement against the verdict.
pub fn e14_verdict_vs_growth(n_short: usize, n_long: usize) -> Vec<E14Row> {
    use tdb_analysis::{certify, Boundedness};
    const WORKLOADS: &[(&str, &str)] = &[
        ("ground_since", "not @logout(\"X\") since @login(\"X\")"),
        (
            "windowed_login",
            "[t := time] previously(@login(u) and time >= t - 200)",
        ),
        (
            "windowed_price_drop",
            "[p := price()] [t := time] previously(price() >= 2 * p and time >= t - 50)",
        ),
        ("unguarded_once", "once @login(u)"),
    ];
    let mut out = Vec::new();
    for &(workload, src) in WORKLOADS {
        let f = parse_formula(src).expect("parse");
        let cert = certify(&f, None);
        let sizes = e14_drive(src, n_long);
        let retained_short = sizes[n_short - 1];
        let retained_long = sizes[n_long - 1];
        let growth = retained_long as f64 / retained_short.max(1) as f64;
        let consistent = match cert.verdict {
            Boundedness::Bounded { nodes, .. } => *sizes.iter().max().expect("nonempty") <= nodes,
            Boundedness::BoundedByWindow { .. } => {
                let early_peak = *sizes[..n_short].iter().max().expect("nonempty");
                let late_peak = *sizes[n_short..].iter().max().expect("nonempty");
                late_peak <= early_peak
            }
            Boundedness::Unbounded => retained_long >= 2 * retained_short,
        };
        out.push(E14Row {
            workload,
            formula: src,
            verdict: cert.verdict.to_string(),
            retained_short,
            retained_long,
            growth,
            consistent,
        });
    }
    out
}

// ===== E16: observability overhead =========================================

/// One row of the E16 table (one obs configuration over the same workload).
#[derive(Debug, Clone)]
pub struct E16Row {
    pub rules: usize,
    pub relations: usize,
    /// Whether the obs subsystem recorded metrics for this run.
    pub obs_enabled: bool,
    /// Full pipeline cost per state, µs (clock + commit + dispatch).
    pub us_per_state: f64,
    pub states_per_sec: f64,
    /// Added cost relative to the obs-off run, percent (0 for the off row).
    pub overhead_pct: f64,
    /// The firing sequence (order included) equals the obs-off run's —
    /// instrumentation must never change semantics.
    pub identical_firings: bool,
    /// Distinct metric families the enabled run recorded into its private
    /// registry (0 for the off row).
    pub distinct_metrics: usize,
}

/// Observability tax: the E15 sparse-update workload (delta dispatch on —
/// the production configuration the instrumentation has to be cheap in)
/// run once with `ObsConfig::off` and once recording into a private
/// registry. The acceptance bar is < 2% overhead with obs off at the
/// dispatch layer; the enabled row documents the cost of full recording.
pub fn e16_obs_overhead(rules: usize, relations: usize, states: usize, seed: u64) -> Vec<E16Row> {
    use std::sync::Arc;
    use tdb_core::ParallelConfig;
    use tdb_obs::{ObsConfig, Registry};
    let relations = relations.max(1);

    type Firings = Vec<(String, i64, tdb_ptl::Env)>;
    let run_once = |registry: Option<Arc<Registry>>| -> (f64, Firings, usize) {
        let obs = match &registry {
            Some(r) => ObsConfig::with_registry(r.clone()),
            None => ObsConfig::off(),
        };
        let mut adb = ActiveDatabase::with_config(
            relation_watch_db(relations),
            ManagerConfig {
                relevance_filtering: false,
                delta_dispatch: true,
                parallel: ParallelConfig::sequential(),
                obs,
                ..Default::default()
            },
        );
        for i in 0..rules {
            let j = i % relations;
            let f = parse_formula(&format!("r{j}_q() > 100 and previously(r{j}_q() <= 100)"))
                .expect("static formula");
            adb.add_rule(Rule::trigger(format!("watch{i}"), f, Action::Notify))
                .expect("registers");
        }
        let mut rng_state = seed;
        let start = Instant::now();
        for k in 0..states {
            rng_state = rng_state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let j = (rng_state >> 33) as usize % relations;
            let value = 90 + (k as i64 % 21); // crosses 100 sometimes
            adb.advance_clock(1).expect("clock");
            let ops = set_watch_row_ops(adb.db(), j, value);
            adb.update(ops).expect("update");
        }
        let us_per_state = micros(start.elapsed()) / states as f64;
        let firings = adb
            .firings()
            .iter()
            .map(|f| (f.rule.clone(), f.time.0, f.env.clone()))
            .collect();
        let distinct = registry
            .map(|r| {
                r.snapshot()
                    .metrics
                    .iter()
                    .map(|m| m.name.clone())
                    .collect::<std::collections::BTreeSet<_>>()
                    .len()
            })
            .unwrap_or(0);
        (us_per_state, firings, distinct)
    };
    // Best of three repetitions per configuration: the deltas measured here
    // are small, so take more care against scheduler jitter than E15 does.
    let run = |on: bool| {
        let mut best = run_once(on.then(|| Arc::new(Registry::new())));
        for _ in 0..2 {
            let rep = run_once(on.then(|| Arc::new(Registry::new())));
            if rep.0 < best.0 {
                best.0 = rep.0;
            }
        }
        best
    };

    let (off_us, off_firings, _) = run(false);
    let (on_us, on_firings, distinct) = run(true);
    vec![
        E16Row {
            rules,
            relations,
            obs_enabled: false,
            us_per_state: off_us,
            states_per_sec: 1e6 / off_us,
            overhead_pct: 0.0,
            identical_firings: true,
            distinct_metrics: 0,
        },
        E16Row {
            rules,
            relations,
            obs_enabled: true,
            us_per_state: on_us,
            states_per_sec: 1e6 / on_us,
            overhead_pct: (on_us / off_us - 1.0) * 100.0,
            identical_firings: on_firings == off_firings,
            distinct_metrics: distinct,
        },
    ]
}

// ===== E17: multi-tenant server shard scaling ==============================

/// One row of the E17 table (one shard count over the same per-tenant
/// workload, driven over real TCP).
#[derive(Debug, Clone)]
pub struct E17Row {
    /// Tenants == shard-pool workers for this row (one tenant per worker).
    pub shards: usize,
    /// Database states committed per tenant.
    pub states_per_tenant: usize,
    /// States committed across all tenants.
    pub total_states: usize,
    /// Wall-clock for the whole concurrent run, µs.
    pub elapsed_us: f64,
    /// Aggregate throughput: `total_states / elapsed`.
    pub agg_states_per_sec: f64,
    /// `agg_states_per_sec` relative to the 1-shard row (1.0 there).
    pub speedup_vs_one: f64,
    /// Host parallelism (`available_parallelism`); when `shards` exceeds
    /// this the row is host-limited and flat scaling is expected.
    pub host_cpus: usize,
    /// Every tenant's firing history matched the single-process library
    /// oracle for its stream.
    pub firings_ok: bool,
}

/// Shard scaling: N tenants pinned to N pool workers, each driven over its
/// own TCP connection with the E17 step workload (clock advance + item
/// write under a watch rule and a cap constraint). Tenants share nothing
/// but the process, so aggregate throughput should scale with workers up
/// to the host's parallelism and stay flat past it; on a single-CPU host
/// every multi-shard row is host-limited and the expectation is *no
/// degradation*, not speedup.
pub fn e17_shard_scaling(shard_counts: &[usize], states_per_tenant: usize) -> Vec<E17Row> {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use tdb_core::manager::ManagerConfig;
    use tdb_core::shard::Shard;
    use tdb_core::storage::LogicalOp;
    use tdb_relation::{parse_query, Database, QueryDef};
    use tdb_server::tenant::rules_from_source;
    use tdb_server::{Client, Server, ServerConfig};

    const RULES: &str = "rule watch { when n() >= 100; then notify; }\n\
                         rule cap { when n() <= 1000000; then abort; }\n";
    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let seed_ops = || {
        vec![
            LogicalOp::SetItem {
                name: "n".into(),
                value: Value::Int(0),
            },
            LogicalOp::DefineQuery {
                name: "n".into(),
                def: QueryDef::new(0, parse_query("item n").expect("query parses")),
            },
        ]
    };
    let step = |tenant: usize, k: usize| {
        vec![
            LogicalOp::AdvanceClock { delta: 1 },
            LogicalOp::Update {
                ops: vec![WriteOp::SetItem {
                    item: "n".into(),
                    value: Value::Int((k as i64) + (tenant as i64)),
                }],
            },
        ]
    };
    // Library oracle for one tenant's stream (firing correctness bar).
    let oracle = |tenant: usize| {
        let mut shard = Shard::volatile(Database::new(), ManagerConfig::default());
        for op in seed_ops() {
            assert!(shard.apply(&op).expect("seed").ok());
        }
        for rule in rules_from_source(RULES).expect("rules parse") {
            shard.add_rule(rule).expect("rule registers");
        }
        for k in 1..=states_per_tenant {
            for op in step(tenant, k) {
                shard.apply(&op).expect("step");
            }
        }
        shard.firings_from(0)
    };

    let mut rows: Vec<E17Row> = Vec::new();
    for &shards in shard_counts {
        let handle = Server::start(ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: shards,
            ..ServerConfig::default()
        })
        .expect("server starts");
        let addr = handle.addr();

        // Set up every tenant first so the timed region is pure commits.
        for i in 0..shards {
            let mut c = Client::connect(addr).expect("setup connect");
            c.create_tenant(&format!("e17-{i}"), false).expect("create");
            assert!(c
                .commit(&format!("e17-{i}"), seed_ops())
                .expect("seed")
                .all_ok());
            c.register_rules(&format!("e17-{i}"), RULES)
                .expect("register");
        }

        let all_ok = Arc::new(AtomicBool::new(true));
        let start = Instant::now();
        let drivers: Vec<_> = (0..shards)
            .map(|i| {
                let all_ok = Arc::clone(&all_ok);
                std::thread::spawn(move || {
                    let tenant = format!("e17-{i}");
                    let mut c = Client::connect(addr).expect("driver connect");
                    let mut firings = Vec::new();
                    for k in 1..=states_per_tenant {
                        let out = c.commit(&tenant, step(i, k)).expect("commit");
                        if !out.all_ok() {
                            all_ok.store(false, Ordering::SeqCst);
                        }
                        firings.extend(out.firings);
                    }
                    firings
                })
            })
            .collect();
        let mut firings_ok = true;
        for (i, d) in drivers.into_iter().enumerate() {
            let got = d.join().expect("driver thread");
            firings_ok &= got == oracle(i);
        }
        let elapsed_us = micros(start.elapsed());
        firings_ok &= all_ok.load(Ordering::SeqCst);
        handle.stop();

        let total_states = shards * states_per_tenant;
        let agg = total_states as f64 / (elapsed_us / 1e6);
        let speedup = rows
            .first()
            .map(|base: &E17Row| agg / base.agg_states_per_sec)
            .unwrap_or(1.0);
        rows.push(E17Row {
            shards,
            states_per_tenant,
            total_states,
            elapsed_us,
            agg_states_per_sec: agg,
            speedup_vs_one: speedup,
            host_cpus,
            firings_ok,
        });
    }
    rows
}

// ===== E20: connection scaling, load-aware re-pinning, adaptive windows ====

/// One row of the E20 connection-scaling table: the same per-connection
/// workload at a given connection count, under one connection-layer mode.
#[derive(Debug, Clone)]
pub struct E20ScaleRow {
    /// `"thread"` (one OS thread per connection) or `"poll"` (one poller).
    pub mode: &'static str,
    pub conns: usize,
    pub states_per_conn: usize,
    pub total_states: usize,
    pub elapsed_us: f64,
    pub agg_states_per_sec: f64,
    /// Server-side connection-layer threads: `conns + 1` acceptor in
    /// thread mode, exactly 1 in poll mode (the shard pool is identical).
    pub conn_threads: usize,
    pub host_cpus: usize,
    /// Every connection's acked firing stream matched the single-process
    /// library oracle for its tenant.
    pub firings_ok: bool,
}

const E20_RULES: &str = "rule watch { when n() >= 100; then notify; }\n\
                         rule cap { when n() <= 1000000; then abort; }\n";

fn e20_seed_ops() -> Vec<tdb_core::storage::LogicalOp> {
    use tdb_core::storage::LogicalOp;
    use tdb_relation::{parse_query, QueryDef};
    vec![
        LogicalOp::SetItem {
            name: "n".into(),
            value: Value::Int(0),
        },
        LogicalOp::DefineQuery {
            name: "n".into(),
            def: QueryDef::new(0, parse_query("item n").expect("query parses")),
        },
    ]
}

fn e20_step(tenant: usize, k: usize) -> Vec<tdb_core::storage::LogicalOp> {
    use tdb_core::storage::LogicalOp;
    vec![
        LogicalOp::AdvanceClock { delta: 1 },
        LogicalOp::Update {
            ops: vec![WriteOp::SetItem {
                item: "n".into(),
                value: Value::Int((k as i64) + (tenant as i64)),
            }],
        },
    ]
}

/// The library-oracle firing history for one E20 tenant's stream.
fn e20_oracle(tenant: usize, states: usize) -> Vec<tdb_core::rules::FiringRecord> {
    use tdb_core::shard::Shard;
    use tdb_relation::Database;
    use tdb_server::tenant::rules_from_source;
    let mut shard = Shard::volatile(Database::new(), ManagerConfig::default());
    for op in e20_seed_ops() {
        assert!(shard.apply(&op).expect("seed").ok());
    }
    for rule in rules_from_source(E20_RULES).expect("rules parse") {
        shard.add_rule(rule).expect("rule registers");
    }
    for k in 1..=states {
        for op in e20_step(tenant, k) {
            shard.apply(&op).expect("step");
        }
    }
    shard.firings_from(0)
}

/// Connection scaling: N concurrent clients, each driving its *own*
/// tenant (so every firing stream stays deterministic against a library
/// oracle), under the thread-per-connection baseline and the readiness
/// poller. The shard pool is identical in both modes; the rows isolate
/// the connection layer. The poller must sustain at least the baseline's
/// aggregate throughput at every count while using one connection thread
/// instead of N+1 — and N mostly-idle connections cost it no threads at
/// all.
pub fn e20_conn_scaling(conn_counts: &[usize], states_per_conn: usize) -> Vec<E20ScaleRow> {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use tdb_server::{Client, ConnMode, Server, ServerConfig};

    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let workers = host_cpus.clamp(2, 4);

    let mut rows = Vec::new();
    for &conns in conn_counts {
        for mode in [ConnMode::Thread, ConnMode::Poll] {
            let handle = Server::start(ServerConfig {
                addr: "127.0.0.1:0".into(),
                workers,
                conn_mode: mode,
                ..ServerConfig::default()
            })
            .expect("server starts");
            let addr = handle.addr();

            let mut setup = Client::connect(addr).expect("setup connect");
            for i in 0..conns {
                let tenant = format!("e20-{i}");
                setup.create_tenant(&tenant, false).expect("create");
                assert!(setup
                    .commit(&tenant, e20_seed_ops())
                    .expect("seed")
                    .all_ok());
                setup.register_rules(&tenant, E20_RULES).expect("register");
            }

            let all_ok = Arc::new(AtomicBool::new(true));
            let start = Instant::now();
            let drivers: Vec<_> = (0..conns)
                .map(|i| {
                    let all_ok = Arc::clone(&all_ok);
                    std::thread::spawn(move || {
                        let tenant = format!("e20-{i}");
                        let mut c = Client::connect(addr).expect("driver connect");
                        let mut firings = Vec::new();
                        for k in 1..=states_per_conn {
                            let out = c.commit(&tenant, e20_step(i, k)).expect("commit");
                            if !out.all_ok() {
                                all_ok.store(false, Ordering::SeqCst);
                            }
                            firings.extend(out.firings);
                        }
                        firings
                    })
                })
                .collect();
            let mut firings_ok = true;
            for (i, d) in drivers.into_iter().enumerate() {
                let got = d.join().expect("driver thread");
                firings_ok &= got == e20_oracle(i, states_per_conn);
            }
            let elapsed_us = micros(start.elapsed());
            firings_ok &= all_ok.load(Ordering::SeqCst);
            handle.stop();

            let total_states = conns * states_per_conn;
            rows.push(E20ScaleRow {
                mode: match mode {
                    ConnMode::Thread => "thread",
                    ConnMode::Poll => "poll",
                },
                conns,
                states_per_conn,
                total_states,
                elapsed_us,
                agg_states_per_sec: total_states as f64 / (elapsed_us / 1e6),
                conn_threads: match mode {
                    ConnMode::Thread => conns + 1,
                    ConnMode::Poll => 1,
                },
                host_cpus,
                firings_ok,
            });
        }
    }
    rows
}

/// One row of the E20 skewed-load table (re-pinning off vs on).
#[derive(Debug, Clone)]
pub struct E20SkewRow {
    pub rebalance: bool,
    /// States committed to the one hot tenant during the window.
    pub hot_states: usize,
    /// States committed across the 7 cold tenants during the window.
    pub cold_states: usize,
    pub elapsed_us: f64,
    pub cold_states_per_sec: f64,
    pub agg_states_per_sec: f64,
    /// Tenant re-pins the balancer executed during the window.
    pub repins: u64,
    pub host_cpus: usize,
}

/// Skewed load: 2 workers, 1 hot tenant (4 hammering clients) and 7 cold
/// tenants trickling commits. Round-robin placement co-locates three cold
/// tenants with the hot one; without re-pinning their commits queue behind
/// the hot tenant's backlog. With re-pinning the balancer migrates idle
/// shards off the hot worker at safe boundaries, and cold throughput
/// recovers. On a 1-CPU host both configurations share one core and the
/// row is host-limited (the re-pin count still proves the mechanism ran).
pub fn e20_skew_rebalance(window: std::time::Duration) -> Vec<E20SkewRow> {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    use tdb_server::{Client, Server, ServerConfig};

    const HOT_DRIVERS: usize = 4;
    const COLD_TENANTS: usize = 7;
    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let mut rows = Vec::new();
    for rebalance in [false, true] {
        let handle = Server::start(ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            rebalance,
            ..ServerConfig::default()
        })
        .expect("server starts");
        let addr = handle.addr();
        let repins_before = handle.runtime().metrics.repins.get();

        let mut setup = Client::connect(addr).expect("setup connect");
        // `hot` first: round-robin puts it on worker 0 with cold1/3/5.
        let mut names = vec!["hot".to_string()];
        names.extend((0..COLD_TENANTS).map(|i| format!("cold{i}")));
        for name in &names {
            setup.create_tenant(name, false).expect("create");
            assert!(setup.commit(name, e20_seed_ops()).expect("seed").all_ok());
            setup.register_rules(name, E20_RULES).expect("register");
        }

        let hot_total = Arc::new(AtomicUsize::new(0));
        let cold_total = Arc::new(AtomicUsize::new(0));
        let deadline = Instant::now() + window;
        let start = Instant::now();
        let mut threads = Vec::new();
        for _ in 0..HOT_DRIVERS {
            let hot_total = Arc::clone(&hot_total);
            threads.push(std::thread::spawn(move || {
                let mut c = Client::connect(addr).expect("hot connect");
                let mut k = 0usize;
                while Instant::now() < deadline {
                    k += 1;
                    c.commit("hot", e20_step(0, k)).expect("hot commit");
                    hot_total.fetch_add(1, Ordering::Relaxed);
                }
            }));
        }
        for i in 0..COLD_TENANTS {
            let cold_total = Arc::clone(&cold_total);
            threads.push(std::thread::spawn(move || {
                let tenant = format!("cold{i}");
                let mut c = Client::connect(addr).expect("cold connect");
                let mut k = 0usize;
                while Instant::now() < deadline {
                    k += 1;
                    c.commit(&tenant, e20_step(i + 1, k)).expect("cold commit");
                    cold_total.fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(std::time::Duration::from_millis(2));
                }
            }));
        }
        for t in threads {
            t.join().expect("driver thread");
        }
        let elapsed_us = micros(start.elapsed());
        let repins = handle.runtime().metrics.repins.get() - repins_before;
        handle.stop();

        let hot_states = hot_total.load(Ordering::Relaxed);
        let cold_states = cold_total.load(Ordering::Relaxed);
        rows.push(E20SkewRow {
            rebalance,
            hot_states,
            cold_states,
            elapsed_us,
            cold_states_per_sec: cold_states as f64 / (elapsed_us / 1e6),
            agg_states_per_sec: (hot_states + cold_states) as f64 / (elapsed_us / 1e6),
            repins,
            host_cpus,
        });
    }
    rows
}

/// One row of the E20 coalescing table (one window policy on a durable,
/// fsync-on-every-commit tenant under 8 concurrent committers).
#[derive(Debug, Clone)]
pub struct E20CoalesceRow {
    /// `"none"`, a fixed window in µs (`"200"`, `"1000"`), or `"adaptive"`.
    pub window: &'static str,
    pub drivers: usize,
    pub commits: usize,
    pub elapsed_us: f64,
    pub commits_per_sec: f64,
    /// Total firings observed — must equal `commits` (one edge-triggered
    /// firing each) for every policy: coalescing must not change results.
    pub firings: usize,
    pub firings_ok: bool,
}

/// Adaptive commit coalescing: 8 clients hammer one durable tenant
/// (`SyncPolicy::Always`, so every uncoalesced commit is one fsync).
/// Fixed windows trade latency for fsync amortization and the best width
/// depends on the (unknown) fsync latency; the adaptive window sizes
/// itself from the observed group-apply EWMA, certificate-ceilinged, and
/// should match or beat the best fixed setting without hand-tuning.
pub fn e20_adaptive_coalesce(commits_per_driver: usize) -> Vec<E20CoalesceRow> {
    use tdb_server::{Client, Server, ServerConfig};

    const DRIVERS: usize = 8;
    // Each commit dips below the watch threshold and crosses back: exactly
    // one firing per commit no matter how commits interleave or coalesce.
    let toggle = |k: usize| {
        use tdb_core::storage::LogicalOp;
        let set = |v: i64| LogicalOp::Update {
            ops: vec![WriteOp::SetItem {
                item: "n".into(),
                value: Value::Int(v),
            }],
        };
        vec![
            LogicalOp::AdvanceClock { delta: 1 },
            set(-1),
            set(100 + k as i64),
        ]
    };

    let mut rows = Vec::new();
    for (window, fixed_us, adaptive) in [
        ("none", 0u64, false),
        ("200", 200, false),
        ("1000", 1_000, false),
        ("adaptive", 0, true),
    ] {
        let dir = std::env::temp_dir().join(format!("tdb-e20-{}-{window}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let handle = Server::start(ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 1,
            data_dir: Some(dir.clone()),
            coalesce_window_us: fixed_us,
            adaptive_coalesce: adaptive,
            ..ServerConfig::default()
        })
        .expect("server starts");
        let addr = handle.addr();

        let mut setup = Client::connect(addr).expect("setup connect");
        setup.create_tenant("dur", true).expect("create");
        assert!(setup.commit("dur", e20_seed_ops()).expect("seed").all_ok());
        setup.register_rules("dur", E20_RULES).expect("register");

        let start = Instant::now();
        let drivers: Vec<_> = (0..DRIVERS)
            .map(|d| {
                std::thread::spawn(move || {
                    let mut c = Client::connect(addr).expect("driver connect");
                    let mut fired = 0usize;
                    for k in 1..=commits_per_driver {
                        let out = c.commit("dur", toggle(d * 10_000 + k)).expect("commit");
                        assert!(out.all_ok(), "driver {d} commit {k}");
                        fired += out.firings.len();
                    }
                    fired
                })
            })
            .collect();
        let fired: usize = drivers.into_iter().map(|t| t.join().expect("driver")).sum();
        let elapsed_us = micros(start.elapsed());

        let logged = setup.firings("dur", 0).expect("firings").len();
        handle.stop();
        let _ = std::fs::remove_dir_all(&dir);

        let commits = DRIVERS * commits_per_driver;
        rows.push(E20CoalesceRow {
            window,
            drivers: DRIVERS,
            commits,
            elapsed_us,
            commits_per_sec: commits as f64 / (elapsed_us / 1e6),
            firings: logged,
            firings_ok: fired == commits && logged == commits,
        });
    }
    rows
}

// ===== E21: watermarked out-of-order ingestion =============================

/// One row of the E21 table: one (Δ, disorder-rate) cell of the sweep.
#[derive(Debug, Clone)]
pub struct E21Row {
    pub max_delay: i64,
    pub rate_permille: u32,
    pub events: usize,
    /// Events whose arrival trailed their valid time.
    pub disordered: usize,
    pub elapsed_us: f64,
    pub us_per_event: f64,
    /// Stream-event tallies over the whole run (flush included).
    pub tentative: usize,
    pub confirmed: usize,
    pub retracted: usize,
    /// Peak retained history length — the O(Δ) memory claim.
    pub max_live_states: usize,
    /// Mean (clock ticks) from a firing's valid instant to its
    /// confirmation — the tentative-to-definite latency.
    pub mean_confirm_lag: f64,
    /// Definite log byte-identical to the in-order oracle replay?
    pub oracle_identical: bool,
}

/// Builds the E21 facade: item `n`, query `n`, a plain threshold rule and a
/// rising-edge (`lasttime`) rule — the latter is what disorder can retract,
/// since with unique valid instants a late arrival only *inserts* states.
fn e21_facade(max_delay: i64) -> tdb_core::VtActiveDatabase {
    let mut base = tdb_relation::Database::new();
    base.set_item("n", Value::Int(0));
    base.define_query(
        "n",
        tdb_relation::QueryDef::new(0, tdb_relation::Query::item("n")),
    );
    let mut vt = tdb_core::VtActiveDatabase::new_streaming(base, max_delay);
    vt.add_trigger(
        "high",
        parse_formula("n() >= 60").expect("static"),
        tdb_core::VtMode::Tentative,
    )
    .expect("rule");
    vt.add_trigger(
        "rise",
        parse_formula("n() >= 60 and lasttime(n() < 60)").expect("static"),
        tdb_core::VtMode::Tentative,
    )
    .expect("rule");
    vt
}

fn e21_op(value: i64) -> WriteOp {
    WriteOp::SetItem {
        item: "n".into(),
        value: Value::Int(value),
    }
}

/// §9 streaming claim: a watermarked ingest path over the valid-time layer
/// yields a definite firing stream *independent of arrival order* (checked
/// against an in-order oracle), confirms tentative firings within ~Δ of
/// their valid instant, and retains only O(Δ) live states.
pub fn e21_disorder_stream(
    n: usize,
    max_delays: &[i64],
    rates_permille: &[u32],
    seed: u64,
) -> Vec<E21Row> {
    let mut rows = Vec::new();
    for &delta in max_delays {
        for &rate in rates_permille {
            let events = crate::workload::disorder_events(n, delta, rate, seed);
            let disordered = events.iter().filter(|e| e.arrival > e.valid).count();

            let mut vt = e21_facade(delta);
            let (mut tentative, mut confirmed, mut retracted) = (0usize, 0usize, 0usize);
            let mut max_live = vt.engine().state_count();
            let mut confirm_lags: Vec<f64> = Vec::new();
            let mut tally = |vt_now: Timestamp, evs: &[tdb_core::VtFiringEvent]| {
                for e in evs {
                    match e.phase {
                        tdb_core::VtPhase::Tentative => tentative += 1,
                        tdb_core::VtPhase::Confirmed => {
                            confirmed += 1;
                            confirm_lags.push((vt_now.0 - e.record.time.0) as f64);
                        }
                        tdb_core::VtPhase::Retracted => retracted += 1,
                    }
                }
            };

            let start = Instant::now();
            for ev in &events {
                let out = vt.advance_to(ev.arrival).expect("advance");
                tally(vt.now(), &out);
                let out = vt.ingest(vec![e21_op(ev.value)], ev.valid).expect("ingest");
                tally(vt.now(), &out);
                max_live = max_live.max(vt.engine().state_count());
            }
            // Flush: push the watermark past every ingested instant so the
            // whole stream settles to Confirmed/Retracted.
            let end = Timestamp(n as i64 + delta + 2);
            let out = vt.advance_to(end).expect("flush");
            tally(vt.now(), &out);
            let elapsed = micros(start.elapsed());

            // In-order oracle: same history replayed with arrival = valid.
            let mut oracle = e21_facade(delta);
            let mut in_order = events.clone();
            in_order.sort_by_key(|e| e.valid);
            for ev in &in_order {
                oracle.advance_to(ev.valid).expect("advance");
                oracle
                    .ingest(vec![e21_op(ev.value)], ev.valid)
                    .expect("ingest");
            }
            oracle.advance_to(end).expect("flush");
            let oracle_identical = vt.confirmed_firings() == oracle.confirmed_firings();

            let mean_confirm_lag = if confirm_lags.is_empty() {
                0.0
            } else {
                confirm_lags.iter().sum::<f64>() / confirm_lags.len() as f64
            };
            rows.push(E21Row {
                max_delay: delta,
                rate_permille: rate,
                events: n,
                disordered,
                elapsed_us: elapsed,
                us_per_event: elapsed / n as f64,
                tentative,
                confirmed,
                retracted,
                max_live_states: max_live,
                mean_confirm_lag,
                oracle_identical,
            });
        }
    }
    rows
}
