//! # tdb-bench
//!
//! Workload generators, the experiment suite (E1–E11, one per claim of the
//! paper — see DESIGN.md and EXPERIMENTS.md) and the table-printing harness.

#![forbid(unsafe_code)]
#![warn(missing_debug_implementations)]

pub mod experiments;
pub mod table;
pub mod workload;
