//! The experiment harness: regenerates every table of EXPERIMENTS.md.
//!
//! ```text
//! cargo run --release -p tdb-bench --bin harness            # all experiments
//! cargo run --release -p tdb-bench --bin harness -- e1 e5   # a subset
//! cargo run --release -p tdb-bench --bin harness -- --quick # smaller sweeps
//! cargo run --release -p tdb-bench --bin harness -- e15 --metrics-json m.json
//! ```
//!
//! `--metrics-json PATH` enables the global obs registry for the whole run
//! and writes its JSON snapshot to `PATH` on exit.

use std::io::Write;

use tdb_bench::experiments as ex;
use tdb_bench::table::{f2, render};

/// Progress marker on stderr (stdout is block-buffered when redirected)
/// plus an explicit stdout flush after each table.
fn mark(name: &str) {
    eprintln!("[harness] running {name} …");
}

fn flush() {
    let _ = std::io::stdout().flush();
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    // `--metrics-json out.json`: turn the global obs registry on for the
    // whole run and dump its JSON snapshot to `out.json` before exiting.
    let metrics_json: Option<String> = args
        .iter()
        .position(|a| a == "--metrics-json")
        .and_then(|i| args.get(i + 1))
        .cloned();
    if metrics_json.is_some() {
        tdb_obs::set_enabled(true);
    }
    let mut wanted: Vec<String> = Vec::new();
    let mut skip_next = false;
    for a in &args {
        if skip_next {
            skip_next = false;
            continue;
        }
        if a == "--metrics-json" {
            skip_next = true;
        } else if !a.starts_with("--") {
            wanted.push(a.clone());
        }
    }
    let run = |name: &str| wanted.is_empty() || wanted.iter().any(|w| w == name);
    let seed = 42u64;

    if run("e1") {
        mark("e1");
        let sizes: &[usize] = if quick {
            &[100, 500, 2_000]
        } else {
            &[100, 1_000, 5_000, 20_000]
        };
        let rows = ex::e1_incremental_vs_naive(sizes, seed);
        let body: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    r.history_len.to_string(),
                    f2(r.incremental_us),
                    f2(r.naive_us),
                    f2(r.speedup),
                    r.firings_agree.to_string(),
                ]
            })
            .collect();
        println!(
            "{}",
            render(
                "E1: incremental vs naive re-evaluation (per-update µs, tail of history)",
                &[
                    "history",
                    "incremental",
                    "naive",
                    "speedup",
                    "firings agree"
                ],
                &body,
            )
        );
    }

    if run("e2") {
        mark("e2");
        let sizes: &[usize] = if quick {
            &[200, 1_000, 4_000]
        } else {
            &[200, 2_000, 5_000, 50_000]
        };
        let rows = ex::e2_pruning(sizes, seed);
        let body: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    r.history_len.to_string(),
                    r.retained_pruned.to_string(),
                    r.retained_unpruned
                        .map(|u| u.to_string())
                        .unwrap_or_else(|| "- (skipped: quadratic)".into()),
                ]
            })
            .collect();
        println!(
            "{}",
            render(
                "E2: retained formula-state size, with vs without §5 pruning",
                &["history", "pruned", "unpruned"],
                &body,
            )
        );
    }

    if run("e3") {
        mark("e3");
        let counts: &[usize] = if quick {
            &[8, 64]
        } else {
            &[8, 64, 256, 1_024]
        };
        let states = if quick { 200 } else { 500 };
        let rows = ex::e3_relevance(counts, states, seed);
        let body: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    r.rules.to_string(),
                    r.evals_filtered.to_string(),
                    r.evals_unfiltered.to_string(),
                    f2(r.us_per_state_filtered),
                    f2(r.us_per_state_unfiltered),
                    r.firings_agree.to_string(),
                ]
            })
            .collect();
        println!(
            "{}",
            render(
                "E3: §8 relevance filtering (rule evaluations and µs per state)",
                &[
                    "rules",
                    "evals(filt)",
                    "evals(all)",
                    "µs(filt)",
                    "µs(all)",
                    "agree"
                ],
                &body,
            )
        );
    }

    if run("e4") {
        mark("e4");
        let counts: &[usize] = if quick {
            &[50, 200]
        } else {
            &[50, 200, 1_000, 4_000]
        };
        let rows = ex::e4_aggregates(counts, seed);
        let body: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    r.samples.to_string(),
                    f2(r.rewritten_us),
                    f2(r.naive_us),
                    r.values_agree.to_string(),
                ]
            })
            .collect();
        println!(
            "{}",
            render(
                "E4: §6.1.1 aggregate rewriting vs naive recomputation (µs/sample)",
                &["samples", "rewritten", "naive", "values agree"],
                &body,
            )
        );
    }

    if run("e5") {
        mark("e5");
        let ks: &[usize] = if quick {
            &[2, 4, 6, 8]
        } else {
            &[2, 4, 6, 8, 10, 12]
        };
        let rows = ex::e5_eventexpr(ks, 300, seed);
        let body: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    r.k.to_string(),
                    r.expr_size.to_string(),
                    r.nfa_states.to_string(),
                    r.dfa_states.to_string(),
                    r.min_dfa_states.to_string(),
                    r.ptl_formula_size.to_string(),
                    r.ptl_retained_size.to_string(),
                    r.detectors_agree.to_string(),
                ]
            })
            .collect();
        println!(
            "{}",
            render(
                "E5: §10 event-expression DFA blowup vs PTL formula states (look-back k)",
                &[
                    "k",
                    "expr",
                    "NFA",
                    "DFA",
                    "minDFA",
                    "PTL size",
                    "PTL state",
                    "agree"
                ],
                &body,
            )
        );
    }

    if run("e6") {
        mark("e6");
        let retro: &[u32] = if quick {
            &[0, 200]
        } else {
            &[0, 100, 300, 500]
        };
        let updates = if quick { 150 } else { 400 };
        let rows = ex::e6_validtime(retro, updates, 20, seed);
        let body: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    format!("{:.1}%", r.retro_permille as f64 / 10.0),
                    r.max_delay.to_string(),
                    f2(r.tentative_us_per_update),
                    f2(r.definite_us_per_update),
                    r.tentative_firings.to_string(),
                    r.definite_firings.to_string(),
                    f2(r.definite_lag),
                ]
            })
            .collect();
        println!(
            "{}",
            render(
                "E6: §9.2 tentative vs definite triggers under retroactive updates",
                &[
                    "retro",
                    "Δ",
                    "tentative µs",
                    "definite µs",
                    "tent fires",
                    "def fires",
                    "lag"
                ],
                &body,
            )
        );
    }

    if run("e7") {
        mark("e7");
        let counts: &[usize] = if quick { &[1, 16] } else { &[1, 16, 64, 256] };
        let commits = if quick { 100 } else { 300 };
        let rows = ex::e7_constraints(counts, commits, seed);
        let body: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    r.constraints.to_string(),
                    f2(r.us_per_commit),
                    r.aborts.to_string(),
                    r.history_consistent.to_string(),
                ]
            })
            .collect();
        println!(
            "{}",
            render(
                "E7: temporal integrity-constraint gate cost per commit",
                &["constraints", "µs/commit", "aborts", "consistent"],
                &body,
            )
        );
    }

    if run("e8") {
        mark("e8");
        let r = ex::e8_temporal_action();
        println!(
            "{}",
            render(
                "E8: §7 temporal action — A every 10 minutes for 1 hour after C",
                &["schedule", "times"],
                &[
                    vec!["expected".into(), format!("{:?}", r.expected_times)],
                    vec!["executed".into(), format!("{:?}", r.execution_times)],
                    vec![
                        "match".into(),
                        (r.execution_times == r.expected_times).to_string(),
                    ],
                ],
            )
        );
    }

    if run("e9") {
        mark("e9");
        let trials = if quick { 200 } else { 2_000 };
        let r = ex::e9_online_offline(trials, seed);
        println!(
            "{}",
            render(
                "E9: §9.3 online vs offline constraint satisfaction",
                &["metric", "value"],
                &[
                    vec!["random valid-time histories".into(), r.trials.to_string()],
                    vec!["online ≠ offline".into(), r.disagreements.to_string()],
                    vec![
                        "disagreements on collapsed history (Thm 2 ⇒ 0)".into(),
                        r.collapsed_disagreements.to_string(),
                    ],
                ],
            )
        );
    }

    if run("e10") {
        mark("e10");
        let sizes: &[usize] = if quick {
            &[200, 1_000]
        } else {
            &[200, 2_000, 10_000]
        };
        let rows = ex::e10_auxrel(sizes, seed);
        let body: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    r.history_len.to_string(),
                    f2(r.formula_state_us),
                    f2(r.aux_relation_us),
                    r.formula_state_retained.to_string(),
                    r.aux_versions_retained.to_string(),
                    r.firings_agree.to_string(),
                ]
            })
            .collect();
        println!(
            "{}",
            render(
                "E10: formula-state vs auxiliary-relation strategy (µs/update)",
                &[
                    "history",
                    "F-state µs",
                    "aux-rel µs",
                    "F retained",
                    "aux versions",
                    "agree"
                ],
                &body,
            )
        );
    }

    flush();
    if run("e12") {
        mark("e12");
        let sizes: &[usize] = if quick {
            &[200, 1_000]
        } else {
            &[200, 2_000, 10_000]
        };
        let rows = ex::e12_durability(sizes, seed);
        let body: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    r.history_len.to_string(),
                    r.checkpoint_bytes.to_string(),
                    r.wal_tail_bytes.to_string(),
                    f2(r.recovery_ms),
                    r.ops_replayed.to_string(),
                    r.state_matches.to_string(),
                ]
            })
            .collect();
        println!(
            "{}",
            render(
                "E12: Theorem-1 checkpoints — size and recovery latency vs history",
                &[
                    "history",
                    "ckpt bytes",
                    "wal tail bytes",
                    "recovery ms",
                    "replayed",
                    "matches"
                ],
                &body,
            )
        );
    }

    flush();
    if run("e11") {
        mark("e11");
        let rows = ex::e11_worked_examples();
        let body: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    r.example.to_string(),
                    if r.pass { "PASS" } else { "FAIL" }.into(),
                ]
            })
            .collect();
        println!(
            "{}",
            render(
                "E11: worked examples from the paper",
                &["example", "result"],
                &body
            )
        );
    }

    flush();
    if run("e13") {
        mark("e13");
        let rules: &[usize] = if quick { &[10, 100] } else { &[10, 100, 1_000] };
        let workers: &[usize] = &[1, 2, 4, 8];
        let states = if quick { 100 } else { 300 };
        let rows = ex::e13_parallel_dispatch(rules, workers, states, seed);
        let body: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    r.rules.to_string(),
                    r.workers.to_string(),
                    f2(r.us_per_state),
                    f2(r.states_per_sec),
                    f2(r.speedup_vs_seq),
                    r.identical_firings.to_string(),
                    r.parallel_batches.to_string(),
                    r.adaptive_seq_batches.to_string(),
                ]
            })
            .collect();
        println!(
            "{}",
            render(
                "E13: parallel dispatch — throughput vs rules × workers",
                &[
                    "rules",
                    "workers",
                    "us/state",
                    "states/s",
                    "speedup",
                    "identical",
                    "par batches",
                    "adapt seq"
                ],
                &body,
            )
        );
        // Machine-readable copy for tooling (scripts/bench_e13.sh).
        let mut json = String::from("{\n  \"experiment\": \"e13\",\n  \"rows\": [\n");
        for (i, r) in rows.iter().enumerate() {
            json.push_str(&format!(
                "    {{\"rules\": {}, \"workers\": {}, \"us_per_state\": {:.3}, \
                 \"states_per_sec\": {:.1}, \"speedup_vs_seq\": {:.3}, \
                 \"identical_firings\": {}, \"parallel_batches\": {}, \
                 \"adaptive_seq_batches\": {}}}{}\n",
                r.rules,
                r.workers,
                r.us_per_state,
                r.states_per_sec,
                r.speedup_vs_seq,
                r.identical_firings,
                r.parallel_batches,
                r.adaptive_seq_batches,
                if i + 1 == rows.len() { "" } else { "," }
            ));
        }
        json.push_str("  ]\n}\n");
        match std::fs::write("BENCH_E13.json", &json) {
            Ok(()) => eprintln!("[harness] wrote BENCH_E13.json"),
            Err(e) => eprintln!("[harness] could not write BENCH_E13.json: {e}"),
        }
    }

    flush();
    if run("e15") {
        mark("e15");
        let (rules, relations, states) = if quick {
            (100, 10, 60)
        } else {
            (1_000, 100, 400)
        };
        let rows = ex::e15_delta_dispatch(rules, relations, states, seed);
        let body: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    r.rules.to_string(),
                    r.relations.to_string(),
                    r.delta_dispatch.to_string(),
                    f2(r.us_per_state),
                    f2(r.states_per_sec),
                    f2(r.speedup_vs_exhaustive),
                    r.identical_firings.to_string(),
                    r.evaluations.to_string(),
                    r.sparse_advances.to_string(),
                ]
            })
            .collect();
        println!(
            "{}",
            render(
                "E15: delta-driven dispatch — sparse updates over many rules",
                &[
                    "rules",
                    "relations",
                    "delta",
                    "us/state",
                    "states/s",
                    "speedup",
                    "identical",
                    "full evals",
                    "sparse"
                ],
                &body,
            )
        );
        // Machine-readable copy for tooling (scripts/bench_e15.sh and the
        // CI smoke job via scripts/check_bench_e15.py).
        let mut json = String::from("{\n  \"experiment\": \"e15\",\n  \"rows\": [\n");
        for (i, r) in rows.iter().enumerate() {
            json.push_str(&format!(
                "    {{\"rules\": {}, \"relations\": {}, \"delta_dispatch\": {}, \
                 \"us_per_state\": {:.3}, \"states_per_sec\": {:.1}, \
                 \"speedup_vs_exhaustive\": {:.3}, \"identical_firings\": {}, \
                 \"evaluations\": {}, \"sparse_advances\": {}}}{}\n",
                r.rules,
                r.relations,
                r.delta_dispatch,
                r.us_per_state,
                r.states_per_sec,
                r.speedup_vs_exhaustive,
                r.identical_firings,
                r.evaluations,
                r.sparse_advances,
                if i + 1 == rows.len() { "" } else { "," }
            ));
        }
        json.push_str("  ]\n}\n");
        match std::fs::write("BENCH_E15.json", &json) {
            Ok(()) => eprintln!("[harness] wrote BENCH_E15.json"),
            Err(e) => eprintln!("[harness] could not write BENCH_E15.json: {e}"),
        }
    }

    flush();
    if run("e16") {
        mark("e16");
        let (rules, relations, states) = if quick {
            (100, 10, 60)
        } else {
            (1_000, 100, 400)
        };
        let rows = ex::e16_obs_overhead(rules, relations, states, seed);
        let body: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    r.rules.to_string(),
                    r.obs_enabled.to_string(),
                    f2(r.us_per_state),
                    f2(r.states_per_sec),
                    format!("{:.2}%", r.overhead_pct),
                    r.identical_firings.to_string(),
                    r.distinct_metrics.to_string(),
                ]
            })
            .collect();
        println!(
            "{}",
            render(
                "E16: observability overhead — obs off vs recording registry",
                &[
                    "rules",
                    "obs",
                    "us/state",
                    "states/s",
                    "overhead",
                    "identical",
                    "metrics"
                ],
                &body,
            )
        );
        // Machine-readable copy for tooling (scripts/bench_e16.sh).
        let mut json = String::from("{\n  \"experiment\": \"e16\",\n  \"rows\": [\n");
        for (i, r) in rows.iter().enumerate() {
            json.push_str(&format!(
                "    {{\"rules\": {}, \"relations\": {}, \"obs_enabled\": {}, \
                 \"us_per_state\": {:.3}, \"states_per_sec\": {:.1}, \
                 \"overhead_pct\": {:.3}, \"identical_firings\": {}, \
                 \"distinct_metrics\": {}}}{}\n",
                r.rules,
                r.relations,
                r.obs_enabled,
                r.us_per_state,
                r.states_per_sec,
                r.overhead_pct,
                r.identical_firings,
                r.distinct_metrics,
                if i + 1 == rows.len() { "" } else { "," }
            ));
        }
        json.push_str("  ]\n}\n");
        match std::fs::write("BENCH_E16.json", &json) {
            Ok(()) => eprintln!("[harness] wrote BENCH_E16.json"),
            Err(e) => eprintln!("[harness] could not write BENCH_E16.json: {e}"),
        }
    }

    flush();
    if run("e17") {
        mark("e17");
        let states = if quick { 200 } else { 1_500 };
        let rows = ex::e17_shard_scaling(&[1, 2, 4, 8], states);
        let body: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    r.shards.to_string(),
                    r.total_states.to_string(),
                    f2(r.elapsed_us / 1e3),
                    f2(r.agg_states_per_sec),
                    f2(r.speedup_vs_one),
                    if r.shards > r.host_cpus { "yes" } else { "no" }.to_string(),
                    r.firings_ok.to_string(),
                ]
            })
            .collect();
        println!(
            "{}",
            render(
                "E17: server shard scaling — aggregate states/s over TCP, one tenant per worker",
                &[
                    "shards",
                    "states",
                    "ms",
                    "states/s",
                    "speedup",
                    "host-limited",
                    "firings ok"
                ],
                &body,
            )
        );
        // Machine-readable copy for tooling (scripts/bench_e17.sh).
        let mut json = String::from("{\n  \"experiment\": \"e17\",\n");
        let host_cpus = rows.first().map(|r| r.host_cpus).unwrap_or(1);
        json.push_str(&format!("  \"host_cpus\": {host_cpus},\n  \"rows\": [\n"));
        for (i, r) in rows.iter().enumerate() {
            json.push_str(&format!(
                "    {{\"shards\": {}, \"states_per_tenant\": {}, \"total_states\": {}, \
                 \"elapsed_us\": {:.1}, \"agg_states_per_sec\": {:.1}, \
                 \"speedup_vs_one\": {:.3}, \"host_limited\": {}, \"firings_ok\": {}}}{}\n",
                r.shards,
                r.states_per_tenant,
                r.total_states,
                r.elapsed_us,
                r.agg_states_per_sec,
                r.speedup_vs_one,
                r.shards > r.host_cpus,
                r.firings_ok,
                if i + 1 == rows.len() { "" } else { "," }
            ));
        }
        json.push_str("  ]\n}\n");
        match std::fs::write("BENCH_E17.json", &json) {
            Ok(()) => eprintln!("[harness] wrote BENCH_E17.json"),
            Err(e) => eprintln!("[harness] could not write BENCH_E17.json: {e}"),
        }
    }

    flush();
    if run("e18") {
        mark("e18");
        let (rule_counts, relations, states): (&[usize], usize, usize) = if quick {
            (&[20, 100], 10, 240)
        } else {
            (&[100, 1_000], 100, 2_000)
        };
        let rows = ex::e18_group_commit(rule_counts, relations, states, seed, &[1, 7, 64]);
        let body: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    r.rules.to_string(),
                    if r.batch == 0 {
                        "per-op".to_string()
                    } else {
                        r.batch.to_string()
                    },
                    f2(r.us_per_state),
                    f2(r.states_per_sec),
                    f2(r.speedup_vs_per_op),
                    r.identical_firings.to_string(),
                ]
            })
            .collect();
        println!(
            "{}",
            render(
                "E18: group commit — durable ingest throughput (SyncPolicy::Always)",
                &[
                    "rules",
                    "batch",
                    "us/state",
                    "states/s",
                    "speedup",
                    "identical"
                ],
                &body,
            )
        );
        // Machine-readable copy for tooling (scripts/bench_e18.sh and the
        // CI smoke job via scripts/check_bench_e18.py).
        let mut json = String::from("{\n  \"experiment\": \"e18\",\n  \"rows\": [\n");
        for (i, r) in rows.iter().enumerate() {
            json.push_str(&format!(
                "    {{\"rules\": {}, \"batch\": {}, \"us_per_state\": {:.3}, \
                 \"states_per_sec\": {:.1}, \"speedup_vs_per_op\": {:.3}, \
                 \"identical_firings\": {}}}{}\n",
                r.rules,
                r.batch,
                r.us_per_state,
                r.states_per_sec,
                r.speedup_vs_per_op,
                r.identical_firings,
                if i + 1 == rows.len() { "" } else { "," }
            ));
        }
        json.push_str("  ]\n}\n");
        match std::fs::write("BENCH_E18.json", &json) {
            Ok(()) => eprintln!("[harness] wrote BENCH_E18.json"),
            Err(e) => eprintln!("[harness] could not write BENCH_E18.json: {e}"),
        }
    }

    flush();
    if run("e19") {
        mark("e19");
        let (states, batches): (usize, &[usize]) = if quick {
            (360, &[7, 64])
        } else {
            (3_000, &[7, 64])
        };
        let rows = ex::e19_certified_batching(states, seed, batches);
        let body: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    r.catalog.to_string(),
                    r.certificate.clone(),
                    r.batch.to_string(),
                    f2(r.eager_us_per_state),
                    f2(r.eager_speedup),
                    f2(r.fused_speedup),
                    f2(r.retention),
                    r.identical_firings.to_string(),
                ]
            })
            .collect();
        println!(
            "{}",
            render(
                "E19: certified eager batching — speedup retained per certificate class",
                &[
                    "catalog",
                    "certificate",
                    "batch",
                    "us/state",
                    "eager x",
                    "fused x",
                    "retention",
                    "identical"
                ],
                &body,
            )
        );
        // Machine-readable copy for tooling (scripts/bench_e19.sh and the
        // CI smoke job via scripts/check_bench_e19.py).
        let mut json = String::from("{\n  \"experiment\": \"e19\",\n  \"rows\": [\n");
        for (i, r) in rows.iter().enumerate() {
            json.push_str(&format!(
                "    {{\"catalog\": \"{}\", \"certificate\": \"{}\", \"batch\": {}, \
                 \"eager_us_per_state\": {:.3}, \"eager_speedup\": {:.3}, \
                 \"fused_speedup\": {:.3}, \"retention\": {:.3}, \
                 \"identical_firings\": {}}}{}\n",
                r.catalog,
                r.certificate,
                r.batch,
                r.eager_us_per_state,
                r.eager_speedup,
                r.fused_speedup,
                r.retention,
                r.identical_firings,
                if i + 1 == rows.len() { "" } else { "," }
            ));
        }
        json.push_str("  ]\n}\n");
        match std::fs::write("BENCH_E19.json", &json) {
            Ok(()) => eprintln!("[harness] wrote BENCH_E19.json"),
            Err(e) => eprintln!("[harness] could not write BENCH_E19.json: {e}"),
        }
    }

    flush();
    if run("e20") {
        mark("e20");
        let (conn_counts, states_per_conn): (&[usize], usize) = if quick {
            (&[8, 32], 20)
        } else {
            (&[16, 64, 256], 30)
        };
        let scaling = ex::e20_conn_scaling(conn_counts, states_per_conn);
        let body: Vec<Vec<String>> = scaling
            .iter()
            .map(|r| {
                vec![
                    r.mode.to_string(),
                    r.conns.to_string(),
                    r.conn_threads.to_string(),
                    r.total_states.to_string(),
                    f2(r.elapsed_us / 1e3),
                    f2(r.agg_states_per_sec),
                    r.firings_ok.to_string(),
                ]
            })
            .collect();
        println!(
            "{}",
            render(
                "E20a: connection scaling — thread-per-connection vs readiness poller",
                &[
                    "mode",
                    "conns",
                    "conn threads",
                    "states",
                    "ms",
                    "states/s",
                    "firings ok"
                ],
                &body,
            )
        );

        let window = std::time::Duration::from_millis(if quick { 1_500 } else { 3_000 });
        let skew = ex::e20_skew_rebalance(window);
        let body: Vec<Vec<String>> = skew
            .iter()
            .map(|r| {
                vec![
                    r.rebalance.to_string(),
                    r.hot_states.to_string(),
                    r.cold_states.to_string(),
                    f2(r.cold_states_per_sec),
                    f2(r.agg_states_per_sec),
                    r.repins.to_string(),
                ]
            })
            .collect();
        println!(
            "{}",
            render(
                "E20b: skewed load — idle-shard re-pinning off vs on (1 hot + 7 cold tenants, 2 workers)",
                &[
                    "rebalance",
                    "hot states",
                    "cold states",
                    "cold/s",
                    "agg/s",
                    "repins"
                ],
                &body,
            )
        );

        let commits_per_driver = if quick { 40 } else { 120 };
        let coalesce = ex::e20_adaptive_coalesce(commits_per_driver);
        let body: Vec<Vec<String>> = coalesce
            .iter()
            .map(|r| {
                vec![
                    r.window.to_string(),
                    r.commits.to_string(),
                    f2(r.elapsed_us / 1e3),
                    f2(r.commits_per_sec),
                    r.firings.to_string(),
                    r.firings_ok.to_string(),
                ]
            })
            .collect();
        println!(
            "{}",
            render(
                "E20c: adaptive commit coalescing — fixed windows vs adaptive (durable tenant, fsync always, 8 clients)",
                &[
                    "window us",
                    "commits",
                    "ms",
                    "commits/s",
                    "firings",
                    "firings ok"
                ],
                &body,
            )
        );

        // Machine-readable copy for tooling (scripts/bench_e20.sh and the
        // CI smoke job via scripts/check_bench_e20.py).
        let host_cpus = scaling.first().map(|r| r.host_cpus).unwrap_or(1);
        let mut json = String::from("{\n  \"experiment\": \"e20\",\n");
        json.push_str(&format!(
            "  \"host_cpus\": {host_cpus},\n  \"scaling\": [\n"
        ));
        for (i, r) in scaling.iter().enumerate() {
            json.push_str(&format!(
                "    {{\"mode\": \"{}\", \"conns\": {}, \"conn_threads\": {}, \
                 \"states_per_conn\": {}, \"total_states\": {}, \"elapsed_us\": {:.1}, \
                 \"agg_states_per_sec\": {:.1}, \"firings_ok\": {}}}{}\n",
                r.mode,
                r.conns,
                r.conn_threads,
                r.states_per_conn,
                r.total_states,
                r.elapsed_us,
                r.agg_states_per_sec,
                r.firings_ok,
                if i + 1 == scaling.len() { "" } else { "," }
            ));
        }
        json.push_str("  ],\n  \"skew\": [\n");
        for (i, r) in skew.iter().enumerate() {
            json.push_str(&format!(
                "    {{\"rebalance\": {}, \"hot_states\": {}, \"cold_states\": {}, \
                 \"elapsed_us\": {:.1}, \"cold_states_per_sec\": {:.1}, \
                 \"agg_states_per_sec\": {:.1}, \"repins\": {}}}{}\n",
                r.rebalance,
                r.hot_states,
                r.cold_states,
                r.elapsed_us,
                r.cold_states_per_sec,
                r.agg_states_per_sec,
                r.repins,
                if i + 1 == skew.len() { "" } else { "," }
            ));
        }
        json.push_str("  ],\n  \"coalesce\": [\n");
        for (i, r) in coalesce.iter().enumerate() {
            json.push_str(&format!(
                "    {{\"window\": \"{}\", \"drivers\": {}, \"commits\": {}, \
                 \"elapsed_us\": {:.1}, \"commits_per_sec\": {:.1}, \
                 \"firings\": {}, \"firings_ok\": {}}}{}\n",
                r.window,
                r.drivers,
                r.commits,
                r.elapsed_us,
                r.commits_per_sec,
                r.firings,
                r.firings_ok,
                if i + 1 == coalesce.len() { "" } else { "," }
            ));
        }
        json.push_str("  ]\n}\n");
        match std::fs::write("BENCH_E20.json", &json) {
            Ok(()) => eprintln!("[harness] wrote BENCH_E20.json"),
            Err(e) => eprintln!("[harness] could not write BENCH_E20.json: {e}"),
        }
    }

    flush();
    if run("e21") {
        mark("e21");
        let n = if quick { 2_000 } else { 20_000 };
        let rows = ex::e21_disorder_stream(n, &[0, 5, 50], &[0, 200, 800], seed);
        let body: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    r.max_delay.to_string(),
                    r.rate_permille.to_string(),
                    r.events.to_string(),
                    r.disordered.to_string(),
                    f2(r.us_per_event),
                    r.tentative.to_string(),
                    r.confirmed.to_string(),
                    r.retracted.to_string(),
                    r.max_live_states.to_string(),
                    f2(r.mean_confirm_lag),
                    r.oracle_identical.to_string(),
                ]
            })
            .collect();
        println!(
            "{}",
            render(
                "E21: watermarked out-of-order ingestion — tentative/definite stream vs Δ and disorder rate",
                &[
                    "Δ",
                    "rate ‰",
                    "events",
                    "late",
                    "µs/event",
                    "tentative",
                    "confirmed",
                    "retracted",
                    "max live",
                    "confirm lag",
                    "oracle =="
                ],
                &body,
            )
        );

        // Machine-readable copy for tooling (scripts/bench_e21.sh and the
        // CI smoke job via scripts/check_bench_e21.py).
        let mut json = String::from("{\n  \"experiment\": \"e21\",\n  \"rows\": [\n");
        for (i, r) in rows.iter().enumerate() {
            json.push_str(&format!(
                "    {{\"max_delay\": {}, \"rate_permille\": {}, \"events\": {}, \
                 \"disordered\": {}, \"elapsed_us\": {:.1}, \"us_per_event\": {:.3}, \
                 \"tentative\": {}, \"confirmed\": {}, \"retracted\": {}, \
                 \"max_live_states\": {}, \"mean_confirm_lag\": {:.2}, \
                 \"oracle_identical\": {}}}{}\n",
                r.max_delay,
                r.rate_permille,
                r.events,
                r.disordered,
                r.elapsed_us,
                r.us_per_event,
                r.tentative,
                r.confirmed,
                r.retracted,
                r.max_live_states,
                r.mean_confirm_lag,
                r.oracle_identical,
                if i + 1 == rows.len() { "" } else { "," }
            ));
        }
        json.push_str("  ]\n}\n");
        match std::fs::write("BENCH_E21.json", &json) {
            Ok(()) => eprintln!("[harness] wrote BENCH_E21.json"),
            Err(e) => eprintln!("[harness] could not write BENCH_E21.json: {e}"),
        }
    }

    flush();
    if run("e14") {
        mark("e14");
        let (n_short, n_long) = if quick { (300, 1_200) } else { (1_000, 4_000) };
        let rows = ex::e14_verdict_vs_growth(n_short, n_long);
        let body: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    r.workload.to_string(),
                    r.verdict.clone(),
                    r.retained_short.to_string(),
                    r.retained_long.to_string(),
                    f2(r.growth),
                    r.consistent.to_string(),
                ]
            })
            .collect();
        println!(
            "{}",
            render(
                "E14: analyzer verdicts vs measured residual growth",
                &[
                    "workload",
                    "verdict",
                    "retained@short",
                    "retained@long",
                    "growth",
                    "consistent"
                ],
                &body,
            )
        );
    }
    flush();

    if let Some(path) = metrics_json {
        match std::fs::write(&path, tdb_obs::global().render_json()) {
            Ok(()) => eprintln!("[harness] wrote metrics snapshot to {path}"),
            Err(e) => eprintln!("[harness] could not write {path}: {e}"),
        }
    }
}
