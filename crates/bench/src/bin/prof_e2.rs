//! Quick profiling helper for the unpruned evaluator's growth (dev tool).
use std::time::Instant;
use tdb_bench::workload::{ibm_doubled_formula, ticker_engine};
use tdb_core::{EvalConfig, IncrementalEvaluator};

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2000);
    let engine = ticker_engine(n, 42);
    let f = ibm_doubled_formula();
    let mut ev = IncrementalEvaluator::new(
        &f,
        EvalConfig {
            pruning: false,
            max_residual: usize::MAX,
        },
    )
    .unwrap();
    let start = Instant::now();
    let mut last = Instant::now();
    for (i, s) in engine.history().iter() {
        ev.advance(s, i).unwrap();
        if i % 500 == 0 {
            eprintln!(
                "state {i}: retained={} chunk={:?}",
                ev.retained_size(),
                last.elapsed()
            );
            last = Instant::now();
        }
    }
    eprintln!("total {:?}", start.elapsed());
}
