//! Dev tool: times the PRUNED evaluator over a 50k-state ticker history
//! (pair of `prof_e2`, which times the unpruned evaluator).
use std::time::Instant;
use tdb_bench::workload::{ibm_doubled_formula, ticker_engine};
use tdb_core::IncrementalEvaluator;
fn main() {
    let t0 = Instant::now();
    let engine = ticker_engine(50_000, 42);
    eprintln!("engine build: {:?}", t0.elapsed());
    let f = ibm_doubled_formula();
    let mut ev = IncrementalEvaluator::compile(&f).unwrap();
    let t0 = Instant::now();
    for (i, s) in engine.history().iter() {
        ev.advance(s, i).unwrap();
        if i % 10000 == 0 {
            eprintln!(
                "state {i}: {:?} retained={}",
                t0.elapsed(),
                ev.retained_size()
            );
        }
    }
    eprintln!("advance total: {:?}", t0.elapsed());
}
