//! Property tests: engine invariants under random transaction scripts.

use proptest::prelude::*;

use tdb_engine::{Engine, EngineError, TxnId, WriteOp};
use tdb_relation::{Database, Query, QueryDef, Value};

#[derive(Debug, Clone, Copy)]
enum Step {
    Begin,
    Write { txn: u8, item: u8, value: i8 },
    Commit { txn: u8 },
    Abort { txn: u8 },
    Tick { by: u8 },
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        Just(Step::Begin),
        (any::<u8>(), 0u8..4, any::<i8>()).prop_map(|(txn, item, value)| Step::Write {
            txn,
            item,
            value
        }),
        any::<u8>().prop_map(|txn| Step::Commit { txn }),
        any::<u8>().prop_map(|txn| Step::Abort { txn }),
        (1u8..5).prop_map(|by| Step::Tick { by }),
    ]
}

fn base_db() -> Database {
    let mut db = Database::new();
    for i in 0..4 {
        db.set_item(format!("x{i}"), Value::Int(0));
        db.define_query(
            format!("x{i}_q"),
            QueryDef::new(0, Query::item(format!("x{i}"))),
        );
    }
    db
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// After any script: timestamps strictly increase, at most one commit
    /// per state, the database changes only at commits, and aborted
    /// transactions leave no trace.
    #[test]
    fn histories_satisfy_the_paper_invariants(
        steps in proptest::collection::vec(step_strategy(), 0..40),
    ) {
        let mut e = Engine::new(base_db());
        let mut open: Vec<TxnId> = Vec::new();
        let mut committed_writes: Vec<(String, i64)> = Vec::new();
        let mut pending: std::collections::BTreeMap<TxnId, Vec<(String, i64)>> =
            Default::default();
        for s in &steps {
            match *s {
                Step::Begin => {
                    let t = e.begin().unwrap();
                    open.push(t);
                    pending.insert(t, Vec::new());
                }
                Step::Write { txn, item, value } => {
                    if open.is_empty() { continue; }
                    let t = open[txn as usize % open.len()];
                    let item = format!("x{}", item % 4);
                    e.write(t, WriteOp::SetItem {
                        item: item.clone(),
                        value: Value::Int(i64::from(value)),
                    }).unwrap();
                    pending.get_mut(&t).unwrap().push((item, i64::from(value)));
                }
                Step::Commit { txn } => {
                    if open.is_empty() { continue; }
                    let k = txn as usize % open.len();
                    let t = open.remove(k);
                    let p = e.prepare_commit(t).unwrap();
                    e.finish_commit(p).unwrap();
                    committed_writes.extend(pending.remove(&t).unwrap());
                }
                Step::Abort { txn } => {
                    if open.is_empty() { continue; }
                    let k = txn as usize % open.len();
                    let t = open.remove(k);
                    e.abort(t).unwrap();
                    pending.remove(&t);
                }
                Step::Tick { by } => {
                    e.advance_clock(i64::from(by)).unwrap();
                }
            }
        }
        // Invariant 1+2 are enforced by History::push (would panic).
        // Invariant 3: db changes only at commits.
        prop_assert!(e.history().validate_transaction_time().is_ok());
        // Invariant 4: the final value of each item is the last committed
        // write (uncommitted/aborted writes invisible).
        let mut expect: std::collections::BTreeMap<String, i64> = Default::default();
        for (item, v) in committed_writes {
            expect.insert(item, v);
        }
        for i in 0..4 {
            let item = format!("x{i}");
            let got = e.db().item(&item).unwrap().as_i64().unwrap();
            prop_assert_eq!(got, *expect.get(&item).unwrap_or(&0), "{}", item);
        }
        // Timestamps strictly increase.
        let mut last = None;
        for (_, s) in e.history().iter() {
            if let Some(prev) = last {
                prop_assert!(s.time() > prev);
            }
            last = Some(s.time());
        }
    }

    /// Prepared commits are all-or-nothing even when interleaved with other
    /// transactions' writes.
    #[test]
    fn prepare_then_abort_leaves_no_trace(values in proptest::collection::vec(any::<i8>(), 1..6)) {
        let mut e = Engine::new(base_db());
        let before = e.db().clone();
        let t = e.begin().unwrap();
        for (i, v) in values.iter().enumerate() {
            e.write(t, WriteOp::SetItem {
                item: format!("x{}", i % 4),
                value: Value::Int(i64::from(*v)),
            }).unwrap();
        }
        let p = e.prepare_commit(t).unwrap();
        e.abort_prepared(p).unwrap();
        for i in 0..4 {
            prop_assert_eq!(
                e.db().item(&format!("x{i}")).unwrap(),
                before.item(&format!("x{i}")).unwrap()
            );
        }
    }
}

#[test]
fn clock_rejection_is_clean() {
    let mut e = Engine::new(base_db());
    e.advance_clock(5).unwrap();
    let err = e.advance_clock_to(tdb_relation::Timestamp(3)).unwrap_err();
    assert!(matches!(err, EngineError::ClockNotMonotonic { .. }));
    // The engine is still usable.
    e.advance_clock(1).unwrap();
    e.tick().unwrap();
}

#[test]
fn capped_history_engine_still_works() {
    let mut e = Engine::with_history(base_db(), tdb_engine::History::with_capacity_limit(4));
    for i in 0..20i64 {
        e.apply_update([WriteOp::SetItem {
            item: "x0".into(),
            value: Value::Int(i),
        }])
        .unwrap();
    }
    assert_eq!(e.history().len(), 21);
    assert_eq!(e.history().retained(), 4);
    assert_eq!(e.db().item("x0").unwrap(), Value::Int(19));
}
