//! The valid-time system model (Section 9).
//!
//! Updates carry a *valid time* that may precede the transaction time by up
//! to a maximum delay Δ; the engine inserts them retroactively at their
//! valid time. Because any database value younger than Δ may still change,
//! histories here are materialized on demand:
//!
//! * [`VtEngine::tentative_history`] — every posted update of a
//!   non-aborted transaction takes effect at its valid time (what a
//!   *tentative* trigger evaluates);
//! * [`VtEngine::committed_history`]`(t)` — the paper's *committed history
//!   at time t*: the prefix of states with timestamp ≤ t, with the effects
//!   of updates uncommitted in that prefix stripped out;
//! * [`VtEngine::definite_history`] — the committed history at `now − Δ`
//!   (what a *definite* trigger evaluates; firing is inherently delayed
//!   by Δ);
//! * [`VtEngine::collapsed_committed_history`] — each committed
//!   transaction's updates applied at its commit point instead of its valid
//!   time, turning the valid-time history into a transaction-time one
//!   (the construction of Theorem 2).

use std::collections::BTreeMap;

use tdb_relation::{Database, Timestamp};

use crate::clock::Clock;
use crate::error::{EngineError, Result};
use crate::event::{Event, EventSet};
use crate::state::{History, SystemState};
use crate::txn::{TxnId, TxnStatus, WriteOp};

/// One update occurrence in the valid-time history.
#[derive(Debug, Clone)]
struct VtUpdate {
    txn: TxnId,
    op: WriteOp,
}

/// One valid-time system state: events plus the updates that occurred at
/// this instant (database states are materialized on demand).
#[derive(Debug, Clone)]
struct VtState {
    time: Timestamp,
    events: EventSet,
    updates: Vec<VtUpdate>,
}

#[derive(Debug, Clone)]
struct VtTxn {
    status: TxnStatus,
    commit_time: Option<Timestamp>,
    /// Number of this transaction's updates still held in live (uncompacted)
    /// states; once it reaches zero a decided transaction behind the
    /// compaction cutoff can be forgotten, keeping the txn table O(Δ).
    live_updates: usize,
    /// Valid time of the transaction's earliest update (for re-evaluation
    /// after an abort).
    first_update: Option<Timestamp>,
}

/// The valid-time engine.
#[derive(Debug, Clone)]
pub struct VtEngine {
    base: Database,
    clock: Clock,
    states: Vec<VtState>,
    txns: BTreeMap<TxnId, VtTxn>,
    next_txn: u64,
    /// The maximum delay Δ: an update's valid time may lag the current time
    /// by at most this many clock units.
    max_delay: i64,
    /// Number of states folded into `base` by [`VtEngine::compact_before`];
    /// global state indices are `local index + compacted`.
    compacted: usize,
}

impl VtEngine {
    pub fn new(base: Database, max_delay: i64) -> VtEngine {
        VtEngine {
            base,
            clock: Clock::default(),
            states: Vec::new(),
            txns: BTreeMap::new(),
            next_txn: 1,
            max_delay: max_delay.max(0),
            compacted: 0,
        }
    }

    pub fn now(&self) -> Timestamp {
        self.clock.now()
    }

    pub fn max_delay(&self) -> i64 {
        self.max_delay
    }

    /// Values with timestamp at or before this instant are definite.
    pub fn definite_frontier(&self) -> Timestamp {
        self.now().minus(self.max_delay)
    }

    pub fn advance_clock(&mut self, delta: i64) -> Result<Timestamp> {
        self.clock.advance_by(delta)
    }

    /// Advances the clock to an absolute instant (equal is allowed — several
    /// events may arrive at one instant).
    pub fn advance_clock_to(&mut self, t: Timestamp) -> Result<Timestamp> {
        self.clock.advance_to(t)?;
        Ok(self.now())
    }

    /// A deep copy used to validate a commit against the constraints before
    /// actually committing (the valid-time engine has no prepared commits —
    /// a commit only adds a state, so probing a clone is cheap).
    pub fn clone_for_probe(&self) -> VtEngine {
        self.clone()
    }

    /// Mutable access to the base database, for schema seeding (relations,
    /// query definitions, item pokes) before the first update. States
    /// materialize lazily from the base, so once any state exists — live or
    /// compacted — or a transaction is open, a base edit would silently
    /// rewrite history; that is [`EngineError::SeedAfterHistory`].
    pub fn base_mut(&mut self) -> Result<&mut Database> {
        if !self.states.is_empty() || self.compacted > 0 || !self.txns.is_empty() {
            return Err(EngineError::SeedAfterHistory);
        }
        Ok(&mut self.base)
    }

    /// Begins a transaction (its begin event is recorded at the current
    /// time, which is also its valid time — lifecycle events are never
    /// retroactive).
    pub fn begin(&mut self) -> Result<TxnId> {
        let id = TxnId(self.next_txn);
        self.next_txn += 1;
        self.txns.insert(
            id,
            VtTxn {
                status: TxnStatus::Active,
                commit_time: None,
                live_updates: 0,
                first_update: None,
            },
        );
        self.merge_state(self.now(), EventSet::of([Event::txn_begin(id)]), Vec::new())?;
        Ok(id)
    }

    /// Posts an update with an explicit valid time. Returns the index of
    /// the (possibly newly created) state at that valid time — the earliest
    /// state a tentative trigger must re-evaluate from.
    pub fn update_at(&mut self, txn: TxnId, op: WriteOp, valid: Timestamp) -> Result<usize> {
        let info = self.txns.get(&txn).ok_or(EngineError::NoSuchTxn(txn))?;
        if info.status != TxnStatus::Active {
            return Err(EngineError::NoSuchTxn(txn));
        }
        let now = self.now();
        if valid > now {
            return Err(EngineError::ValidTimeInFuture {
                valid: valid.0,
                now: now.0,
            });
        }
        let limit = now.minus(self.max_delay);
        if valid < limit {
            return Err(EngineError::ValidTimeTooOld {
                valid: valid.0,
                limit: limit.0,
            });
        }
        let events = EventSet::of([Event::update(op.target())]);
        let idx = self.merge_state(valid, events, vec![VtUpdate { txn, op }])?;
        let info = self.txns.get_mut(&txn).expect("checked above");
        info.live_updates += 1;
        info.first_update = Some(info.first_update.map_or(valid, |f| f.min(valid)));
        Ok(idx)
    }

    /// Stream ingestion for watermarked out-of-order arrival: posts `ops` at
    /// their valid time as a transaction that commits instantly, recording
    /// no lifecycle event states. The commit point is the *valid* instant,
    /// so the resulting state set depends only on `(valid, ops)` — never on
    /// arrival time — which is what makes Δ-bounded disorder replayable:
    /// every arrival permutation of the same events yields byte-identical
    /// histories. Returns the (local) index of the state at `valid`.
    pub fn ingest_committed(&mut self, ops: Vec<WriteOp>, valid: Timestamp) -> Result<usize> {
        let now = self.now();
        if valid > now {
            return Err(EngineError::ValidTimeInFuture {
                valid: valid.0,
                now: now.0,
            });
        }
        let limit = now.minus(self.max_delay);
        if valid < limit {
            return Err(EngineError::ValidTimeTooOld {
                valid: valid.0,
                limit: limit.0,
            });
        }
        let id = TxnId(self.next_txn);
        self.next_txn += 1;
        self.txns.insert(
            id,
            VtTxn {
                status: TxnStatus::Committed,
                commit_time: Some(valid),
                live_updates: ops.len(),
                first_update: if ops.is_empty() { None } else { Some(valid) },
            },
        );
        let events = EventSet::of(ops.iter().map(|op| Event::update(op.target())));
        let updates = ops.into_iter().map(|op| VtUpdate { txn: id, op }).collect();
        self.merge_state(valid, events, updates)
    }

    /// Posts an update effective right now.
    pub fn update(&mut self, txn: TxnId, op: WriteOp) -> Result<usize> {
        self.update_at(txn, op, self.now())
    }

    /// Records user events at a (possibly retroactive) valid time.
    pub fn emit_at(&mut self, events: EventSet, valid: Timestamp) -> Result<usize> {
        let now = self.now();
        if valid > now {
            return Err(EngineError::ValidTimeInFuture {
                valid: valid.0,
                now: now.0,
            });
        }
        self.merge_state(valid, events, Vec::new())
    }

    /// Commits a transaction at the current time. At most one commit per
    /// instant is allowed; the clock is bumped if a commit already occupies
    /// the current instant.
    pub fn commit(&mut self, txn: TxnId) -> Result<usize> {
        let info = self.txns.get(&txn).ok_or(EngineError::NoSuchTxn(txn))?;
        if info.status != TxnStatus::Active {
            return Err(EngineError::NoSuchTxn(txn));
        }
        // Enforce "no two transactions commit simultaneously".
        if let Some(s) = self.state_at(self.now()) {
            if s.events.commit_count() > 0 {
                self.clock.advance_by(1)?;
            }
        }
        let now = self.now();
        let events = EventSet::of([Event::attempts_to_commit(txn), Event::txn_commit(txn)]);
        let idx = self.merge_state(now, events, Vec::new())?;
        let info = self.txns.get_mut(&txn).expect("checked above");
        info.status = TxnStatus::Committed;
        info.commit_time = Some(now);
        Ok(idx)
    }

    /// Aborts a transaction; its updates are ignored by every history view.
    pub fn abort(&mut self, txn: TxnId) -> Result<usize> {
        let info = self.txns.get_mut(&txn).ok_or(EngineError::NoSuchTxn(txn))?;
        if info.status != TxnStatus::Active {
            return Err(EngineError::NoSuchTxn(txn));
        }
        info.status = TxnStatus::Aborted;
        let now = self.now();
        self.merge_state(now, EventSet::of([Event::txn_abort(txn)]), Vec::new())
    }

    /// Number of live (uncompacted) valid-time states.
    pub fn state_count(&self) -> usize {
        self.states.len()
    }

    /// Number of states folded into the base by [`VtEngine::compact_before`].
    /// The global index of live state `i` is `i + compacted()`.
    pub fn compacted(&self) -> usize {
        self.compacted
    }

    /// Local index of the live state at exactly `t`, if one exists.
    pub fn state_index_at(&self, t: Timestamp) -> Option<usize> {
        self.states.binary_search_by_key(&t, |s| s.time).ok()
    }

    /// Valid time of `txn`'s earliest update, if any survive uncompacted.
    pub fn first_update_of(&self, txn: TxnId) -> Option<Timestamp> {
        self.txns.get(&txn).and_then(|i| i.first_update)
    }

    /// Folds every state strictly before `cutoff` into the base database and
    /// drops it from the live history, keeping memory O(Δ) instead of
    /// O(history). Folding must not change any future materialized view, so
    /// every update in the folded prefix must belong to a *decided*
    /// transaction whose commit point is itself behind `cutoff` (always true
    /// for [`VtEngine::ingest_committed`] streams, where the commit point is
    /// the valid instant); otherwise [`EngineError::CompactionBlocked`] is
    /// returned and nothing is folded. Returns the number of folded states.
    pub fn compact_before(&mut self, cutoff: Timestamp) -> Result<usize> {
        let k = self.states.partition_point(|s| s.time < cutoff);
        if k == 0 {
            return Ok(0);
        }
        // Validate before mutating: all-or-nothing.
        for s in &self.states[..k] {
            for u in &s.updates {
                let decided_behind = self.txns.get(&u.txn).is_some_and(|i| match i.status {
                    TxnStatus::Aborted => true,
                    TxnStatus::Committed => i.commit_time.is_some_and(|ct| ct < cutoff),
                    TxnStatus::Active => false,
                });
                if !decided_behind {
                    return Err(EngineError::CompactionBlocked { txn: u.txn });
                }
            }
        }
        for s in &self.states[..k] {
            for u in &s.updates {
                if self
                    .txns
                    .get(&u.txn)
                    .is_some_and(|i| i.status == TxnStatus::Committed)
                {
                    u.op.apply(&mut self.base)?;
                }
                if let Some(info) = self.txns.get_mut(&u.txn) {
                    info.live_updates = info.live_updates.saturating_sub(1);
                }
            }
        }
        self.states.drain(..k);
        self.compacted += k;
        // Transactions wholly behind the fold can be forgotten.
        self.txns.retain(|_, i| {
            i.status == TxnStatus::Active
                || i.live_updates > 0
                || i.commit_time.is_some_and(|ct| ct >= cutoff)
        });
        Ok(k)
    }

    fn state_at(&self, t: Timestamp) -> Option<&VtState> {
        self.states
            .binary_search_by_key(&t, |s| s.time)
            .ok()
            .map(|i| &self.states[i])
    }

    /// Inserts or merges a state at `t`; returns its index.
    fn merge_state(
        &mut self,
        t: Timestamp,
        events: EventSet,
        updates: Vec<VtUpdate>,
    ) -> Result<usize> {
        match self.states.binary_search_by_key(&t, |s| s.time) {
            Ok(i) => {
                let s = &mut self.states[i];
                let new_commits = events.commit_count();
                if new_commits > 0 && s.events.commit_count() + new_commits > 1 {
                    return Err(EngineError::SimultaneousCommit);
                }
                s.events.union_with(&events);
                s.updates.extend(updates);
                Ok(i)
            }
            Err(i) => {
                self.states.insert(
                    i,
                    VtState {
                        time: t,
                        events,
                        updates,
                    },
                );
                Ok(i)
            }
        }
    }

    // ---- materialized history views ---------------------------------------

    /// Commit time of `txn`, if committed.
    pub fn commit_time(&self, txn: TxnId) -> Option<Timestamp> {
        self.txns.get(&txn).and_then(|i| i.commit_time)
    }

    /// Materializes a history, applying at each state only the updates that
    /// satisfy `include`.
    fn materialize(
        &self,
        cutoff: Timestamp,
        mut include: impl FnMut(&VtUpdate) -> bool,
    ) -> History {
        let mut h = History::new();
        let mut db = self.base.clone();
        for s in &self.states {
            if s.time > cutoff {
                break;
            }
            for u in &s.updates {
                if include(u) {
                    // Unknown-relation errors cannot occur here: update_at
                    // validated nothing, so surface them loudly.
                    u.op.apply(&mut db).expect("valid-time update must apply");
                }
            }
            h.push(SystemState::new(db.clone(), s.events.clone(), s.time));
        }
        h
    }

    /// The tentative history: all updates of non-aborted transactions take
    /// effect at their valid times.
    pub fn tentative_history(&self) -> History {
        self.materialize(Timestamp::MAX, |u| {
            self.txns
                .get(&u.txn)
                .is_some_and(|i| i.status != TxnStatus::Aborted)
        })
    }

    /// The paper's *committed history at time t*.
    pub fn committed_history(&self, t: Timestamp) -> History {
        self.materialize(t, |u| {
            self.txns
                .get(&u.txn)
                .and_then(|i| i.commit_time)
                .is_some_and(|ct| ct <= t)
        })
    }

    /// The committed history at time infinity (every ever-committed update
    /// included, full length).
    pub fn committed_history_at_infinity(&self) -> History {
        self.materialize(Timestamp::MAX, |u| {
            self.txns
                .get(&u.txn)
                .is_some_and(|i| i.status == TxnStatus::Committed)
        })
    }

    /// The committed history at the definite frontier `now − Δ` — what a
    /// definite trigger evaluates.
    pub fn definite_history(&self) -> History {
        self.committed_history(self.definite_frontier())
    }

    /// The collapsed committed history: database changes applied at commit
    /// time rather than valid time (Theorem 2's transaction-time view).
    pub fn collapsed_committed_history(&self) -> History {
        // Group each committed transaction's updates, in valid-time order.
        let mut by_txn: BTreeMap<TxnId, Vec<&VtUpdate>> = BTreeMap::new();
        for s in &self.states {
            for u in &s.updates {
                if self
                    .txns
                    .get(&u.txn)
                    .is_some_and(|i| i.status == TxnStatus::Committed)
                {
                    by_txn.entry(u.txn).or_default().push(u);
                }
            }
        }
        let mut h = History::new();
        let mut db = self.base.clone();
        for s in &self.states {
            // Apply the updates of every transaction committing at this state.
            for e in s.events.iter().filter(|e| e.is_commit()) {
                if let Some(txn) = e.txn_id() {
                    for u in by_txn.get(&txn).into_iter().flatten() {
                        u.op.apply(&mut db).expect("collapsed update must apply");
                    }
                }
            }
            h.push(SystemState::new(db.clone(), s.events.clone(), s.time));
        }
        h
    }

    /// Commit points (timestamps carrying a `transaction_commit` event), in
    /// order — the instants at which integrity constraints are checked.
    pub fn commit_points(&self) -> Vec<Timestamp> {
        self.states
            .iter()
            .filter(|s| s.events.commit_count() > 0)
            .map(|s| s.time)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdb_relation::{Relation, Schema, Value};

    fn base() -> Database {
        let mut db = Database::new();
        db.create_relation(
            "STOCK",
            Relation::empty(Schema::untyped(&["name", "price"])),
        )
        .unwrap();
        db
    }

    fn set_price(p: i64) -> WriteOp {
        WriteOp::SetItem {
            item: "price_IBM".into(),
            value: Value::Int(p),
        }
    }

    #[test]
    fn retroactive_update_lands_at_valid_time() {
        let mut e = VtEngine::new(base(), 100);
        e.advance_clock(10).unwrap();
        let t = e.begin().unwrap();
        // Posted at time 10, valid at time 5.
        e.update_at(t, set_price(72), Timestamp(5)).unwrap();
        e.commit(t).unwrap();
        let h = e.committed_history(Timestamp(100));
        // The state at valid time 5 must carry the new price.
        let idx = h.index_at(Timestamp(5)).unwrap();
        assert_eq!(
            h.get(idx).unwrap().db().item("price_IBM").unwrap(),
            Value::Int(72)
        );
    }

    #[test]
    fn max_delay_enforced() {
        let mut e = VtEngine::new(base(), 3);
        e.advance_clock(10).unwrap();
        let t = e.begin().unwrap();
        assert!(matches!(
            e.update_at(t, set_price(1), Timestamp(6)),
            Err(EngineError::ValidTimeTooOld { .. })
        ));
        assert!(matches!(
            e.update_at(t, set_price(1), Timestamp(11)),
            Err(EngineError::ValidTimeInFuture { .. })
        ));
        assert!(e.update_at(t, set_price(1), Timestamp(7)).is_ok());
    }

    #[test]
    fn committed_history_strips_uncommitted_updates() {
        let mut e = VtEngine::new(base(), 100);
        e.advance_clock(1).unwrap();
        let t1 = e.begin().unwrap();
        e.update(t1, set_price(10)).unwrap();
        e.advance_clock(1).unwrap();
        let t2 = e.begin().unwrap();
        e.update(t2, set_price(20)).unwrap();
        e.advance_clock(1).unwrap();
        e.commit(t2).unwrap(); // t2 commits at 3; t1 never commits

        let h = e.committed_history(Timestamp(10));
        let last = h.last().unwrap();
        assert_eq!(last.db().item("price_IBM").unwrap(), Value::Int(20));
        // At time 2 (t2's update posted, not yet committed at cutoff? —
        // committed AT 3 <= 10, so the update IS included at its valid time).
        let idx = h.index_at(Timestamp(2)).unwrap();
        assert_eq!(
            h.get(idx).unwrap().db().item("price_IBM").unwrap(),
            Value::Int(20)
        );
        // Cutoff before t2's commit: the update is stripped.
        let h2 = e.committed_history(Timestamp(2));
        assert!(h2.last().unwrap().db().item("price_IBM").is_err());
    }

    #[test]
    fn aborted_updates_never_appear() {
        let mut e = VtEngine::new(base(), 100);
        e.advance_clock(1).unwrap();
        let t = e.begin().unwrap();
        e.update(t, set_price(10)).unwrap();
        e.abort(t).unwrap();
        assert!(e
            .tentative_history()
            .last()
            .unwrap()
            .db()
            .item("price_IBM")
            .is_err());
        assert!(e
            .committed_history_at_infinity()
            .last()
            .unwrap()
            .db()
            .item("price_IBM")
            .is_err());
    }

    #[test]
    fn u1_before_u2_offline_vs_online_setup() {
        // The paper's Section 9.3 example history:
        // u1 (by T1), u2 (by T2), commit-T2, commit-T1.
        let mut e = VtEngine::new(base(), 100);
        e.advance_clock(1).unwrap();
        let t1 = e.begin().unwrap();
        let t2 = e.begin().unwrap();
        e.advance_clock(1).unwrap();
        e.update(
            t1,
            WriteOp::SetItem {
                item: "u1".into(),
                value: Value::Int(1),
            },
        )
        .unwrap();
        e.advance_clock(1).unwrap();
        e.update(
            t2,
            WriteOp::SetItem {
                item: "u2".into(),
                value: Value::Int(1),
            },
        )
        .unwrap();
        e.advance_clock(1).unwrap();
        let c2 = e.commit(t2).unwrap();
        e.advance_clock(1).unwrap();
        e.commit(t1).unwrap();
        let _ = c2;

        // Online view at T2's commit point: u1 is NOT visible (T1 not yet
        // committed), u2 IS visible.
        let t2_commit = e.commit_time(t2).unwrap();
        let online = e.committed_history(t2_commit);
        let last = online.last().unwrap();
        assert!(last.db().item("u1").is_err());
        assert_eq!(last.db().item("u2").unwrap(), Value::Int(1));

        // Offline view (committed history at infinity), truncated to the
        // same commit point: u1 IS visible because T1 eventually commits.
        let offline = e.committed_history_at_infinity();
        let idx = offline.index_at(t2_commit).unwrap();
        assert_eq!(
            offline.get(idx).unwrap().db().item("u1").unwrap(),
            Value::Int(1)
        );
    }

    #[test]
    fn collapsed_history_moves_updates_to_commit_points() {
        let mut e = VtEngine::new(base(), 100);
        e.advance_clock(5).unwrap();
        let t = e.begin().unwrap();
        // Valid time 1, commit at 6.
        e.update_at(t, set_price(72), Timestamp(1)).unwrap();
        e.advance_clock(1).unwrap();
        e.commit(t).unwrap();

        let collapsed = e.collapsed_committed_history();
        // Before the commit point the item must be absent…
        let before = collapsed.index_at(Timestamp(5)).unwrap();
        assert!(collapsed
            .get(before)
            .unwrap()
            .db()
            .item("price_IBM")
            .is_err());
        // …and present exactly from the commit point.
        let at = collapsed.index_at(Timestamp(6)).unwrap();
        assert_eq!(
            collapsed.get(at).unwrap().db().item("price_IBM").unwrap(),
            Value::Int(72)
        );
        collapsed.validate_transaction_time().unwrap();
    }

    #[test]
    fn definite_history_lags_by_delta() {
        let mut e = VtEngine::new(base(), 5);
        e.advance_clock(1).unwrap();
        let t = e.begin().unwrap();
        e.update(t, set_price(10)).unwrap();
        e.commit(t).unwrap();
        // now = 1, frontier = -4: nothing definite yet.
        assert_eq!(e.definite_history().len(), 0);
        e.advance_clock(10).unwrap();
        // now = 11, frontier = 6 >= all states: everything definite.
        let h = e.definite_history();
        assert_eq!(
            h.last().unwrap().db().item("price_IBM").unwrap(),
            Value::Int(10)
        );
    }

    #[test]
    fn simultaneous_events_merge_into_one_state() {
        let mut e = VtEngine::new(base(), 100);
        e.advance_clock(4).unwrap();
        let t = e.begin().unwrap();
        e.update_at(t, set_price(1), Timestamp(2)).unwrap();
        e.update_at(t, set_price(2), Timestamp(2)).unwrap();
        e.commit(t).unwrap();
        // begin@4, updates@2 (merged), commit@4 (merged with begin).
        assert_eq!(e.state_count(), 2);
        let h = e.committed_history_at_infinity();
        assert_eq!(h.len(), 2);
        // Later write at the same instant wins (application order).
        let idx = h.index_at(Timestamp(2)).unwrap();
        assert_eq!(
            h.get(idx).unwrap().db().item("price_IBM").unwrap(),
            Value::Int(2)
        );
    }

    /// `(time, price-if-set)` fingerprint of a materialized history.
    fn fingerprint(h: &History) -> Vec<(i64, Option<i64>)> {
        (0..h.len())
            .map(|i| {
                let s = h.get(i).unwrap();
                let p = s.db().item("price_IBM").ok().and_then(|v| v.as_i64());
                (s.time().0, p)
            })
            .collect()
    }

    #[test]
    fn ingest_committed_is_arrival_order_independent() {
        // The same three events under two Δ-bounded arrival orders must
        // produce byte-identical state sets: no lifecycle states, and the
        // commit point is the valid instant.
        let drive = |order: &[(i64, i64)]| {
            let mut e = VtEngine::new(base(), 10);
            e.advance_clock(5).unwrap();
            for &(v, p) in order {
                e.ingest_committed(vec![set_price(p)], Timestamp(v))
                    .unwrap();
            }
            e
        };
        let in_order = drive(&[(1, 10), (2, 20), (3, 30)]);
        let shuffled = drive(&[(3, 30), (1, 10), (2, 20)]);
        assert_eq!(
            fingerprint(&in_order.committed_history_at_infinity()),
            fingerprint(&shuffled.committed_history_at_infinity())
        );
        assert_eq!(
            fingerprint(&in_order.tentative_history()),
            fingerprint(&shuffled.tentative_history())
        );
        // Instant commit at the valid instant: tentative and committed agree.
        assert_eq!(
            fingerprint(&in_order.tentative_history()),
            fingerprint(&in_order.committed_history_at_infinity())
        );
    }

    #[test]
    fn ingest_committed_enforces_delta_window() {
        let mut e = VtEngine::new(base(), 3);
        e.advance_clock(10).unwrap();
        assert!(matches!(
            e.ingest_committed(vec![set_price(1)], Timestamp(6)),
            Err(EngineError::ValidTimeTooOld { .. })
        ));
        assert!(matches!(
            e.ingest_committed(vec![set_price(1)], Timestamp(11)),
            Err(EngineError::ValidTimeInFuture { .. })
        ));
        assert!(e.ingest_committed(vec![set_price(1)], Timestamp(7)).is_ok());
    }

    #[test]
    fn compaction_preserves_views_and_offsets_indices() {
        let mut e = VtEngine::new(base(), 3);
        for v in 1..=5 {
            e.advance_clock_to(Timestamp(v)).unwrap();
            e.ingest_committed(vec![set_price(v)], Timestamp(v))
                .unwrap();
        }
        let before = fingerprint(&e.tentative_history());
        // Watermark at now − Δ = 2: states strictly before it fold away.
        let folded = e.compact_before(e.definite_frontier()).unwrap();
        assert_eq!(folded, 1);
        assert_eq!(e.compacted(), 1);
        assert_eq!(e.state_count(), 4);
        // The surviving suffix is unchanged (the fold moved state 1's write
        // into the base, so state 2 still sees price 2 on top of it).
        let after = fingerprint(&e.tentative_history());
        assert_eq!(after, before[1..].to_vec());
        // The folded transaction was pruned from the txn table.
        assert_eq!(e.commit_time(TxnId(1)), None);
        assert_eq!(e.commit_time(TxnId(2)), Some(Timestamp(2)));
        // Compacting again at the same cutoff is a no-op.
        assert_eq!(e.compact_before(e.definite_frontier()).unwrap(), 0);
    }

    #[test]
    fn compaction_blocked_by_undecided_transaction() {
        let mut e = VtEngine::new(base(), 100);
        e.advance_clock(1).unwrap();
        let t = e.begin().unwrap();
        e.update(t, set_price(9)).unwrap();
        e.advance_clock(10).unwrap();
        assert!(matches!(
            e.compact_before(Timestamp(5)),
            Err(EngineError::CompactionBlocked { .. })
        ));
        // Nothing was folded.
        assert_eq!(e.compacted(), 0);
        // Once decided (aborted), the fold goes through and the update is
        // skipped.
        e.abort(t).unwrap();
        assert!(e.compact_before(Timestamp(5)).unwrap() > 0);
        assert!(e
            .tentative_history()
            .last()
            .unwrap()
            .db()
            .item("price_IBM")
            .is_err());
    }

    #[test]
    fn commit_points_listed() {
        let mut e = VtEngine::new(base(), 100);
        e.advance_clock(1).unwrap();
        let t1 = e.begin().unwrap();
        e.advance_clock(1).unwrap();
        let t2 = e.begin().unwrap();
        e.advance_clock(1).unwrap();
        e.commit(t1).unwrap();
        e.commit(t2).unwrap(); // bumped to 4 automatically
        assert_eq!(e.commit_points(), vec![Timestamp(3), Timestamp(4)]);
    }
}
