//! # tdb-engine
//!
//! The active-database engine substrate of `temporal-adb`: the system the
//! paper's *temporal component* is an "add-on component executed on top of".
//!
//! It provides:
//!
//! * [`Event`] / [`EventSet`] — instantaneous parameterized events
//!   (transaction lifecycle, updates, user events);
//! * [`SystemState`] / [`History`] — `(database-state, event-set,
//!   timestamp)` snapshots with the paper's invariants (strictly increasing
//!   timestamps, at most one commit per state);
//! * [`Clock`] — the fixed global clock, exposed to queries as the `time`
//!   data item;
//! * [`Engine`] — the transaction-time engine with buffered write sets and
//!   a two-phase prepared-commit protocol for integrity-constraint gating;
//! * [`VtEngine`] — the valid-time engine (Section 9) with retroactive
//!   updates bounded by a maximum delay Δ, and the tentative / committed /
//!   definite / collapsed history views.

#![forbid(unsafe_code)]
#![warn(missing_debug_implementations)]

mod clock;
mod engine;
mod error;
pub mod event;
mod state;
mod txn;
mod validtime;

pub use clock::Clock;
pub use engine::{Engine, PreparedCommit};
pub use error::{EngineError, Result};
pub use event::{Event, EventSet};
pub use state::{History, SystemState, TIME_ITEM};
pub use tdb_relation::Delta;
pub use txn::{Transaction, TxnId, TxnStatus, Write, WriteOp};
pub use validtime::VtEngine;
