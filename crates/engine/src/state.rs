//! System states and histories.
//!
//! "A system state is a pair (S, E) where S is the database state and E is
//! the set of events … A system history is a finite sequence
//! (S0, E0), …, (Si, Ei)." Each state also carries the timestamp at which
//! its event set occurred; timestamps are strictly increasing.

use std::fmt;
use std::sync::Arc;

use tdb_relation::{Database, Timestamp, Value};

use crate::event::EventSet;

/// The reserved name of the data item exposing the global clock.
pub const TIME_ITEM: &str = "time";

/// One snapshot of the system: database state + simultaneous events + time.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemState {
    /// Shared so that per-rule evaluation (and snapshots of the state taken
    /// by residual formulas) can hold the database without copying it.
    db: Arc<Database>,
    events: EventSet,
    time: Timestamp,
}

impl SystemState {
    /// Builds a state, stamping the `time` data item into the snapshot so
    /// that queries (and PTL terms) can read the clock.
    pub fn new(mut db: Database, events: EventSet, time: Timestamp) -> SystemState {
        db.set_item(TIME_ITEM, Value::Time(time));
        SystemState {
            db: Arc::new(db),
            events,
            time,
        }
    }

    pub fn db(&self) -> &Database {
        &self.db
    }

    /// The database snapshot as a cheaply clonable handle.
    pub fn db_arc(&self) -> Arc<Database> {
        Arc::clone(&self.db)
    }

    pub fn events(&self) -> &EventSet {
        &self.events
    }

    pub fn time(&self) -> Timestamp {
        self.time
    }
}

impl fmt::Display for SystemState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{} {}", self.time, self.events)
    }
}

/// A finite sequence of system states with strictly increasing timestamps.
///
/// The incremental evaluator never reads old states, so a history may be
/// capped: `with_capacity_limit(k)` keeps only the most recent `k` states
/// (the *offset* of the first retained state is tracked so global indices
/// stay stable). The naive baseline and the valid-time machinery use
/// unbounded histories.
#[derive(Debug, Clone, Default)]
pub struct History {
    states: Vec<SystemState>,
    /// Global index of `states[0]`.
    offset: usize,
    /// If set, retain at most this many states.
    cap: Option<usize>,
}

impl History {
    pub fn new() -> History {
        History::default()
    }

    /// A history that retains only the `cap` most recent states.
    pub fn with_capacity_limit(cap: usize) -> History {
        History {
            states: Vec::new(),
            offset: 0,
            cap: Some(cap.max(1)),
        }
    }

    /// Rebuilds a history from checkpointed parts: the global index of the
    /// first retained state, the retained suffix itself, and the retention
    /// cap. Panics under the same conditions as [`History::push`] (callers
    /// deserializing untrusted bytes must validate order first).
    pub fn from_parts(offset: usize, states: Vec<SystemState>, cap: Option<usize>) -> History {
        for w in states.windows(2) {
            assert!(
                w[1].time() > w[0].time(),
                "history timestamps must strictly increase ({} then {})",
                w[0].time(),
                w[1].time()
            );
        }
        for s in &states {
            assert!(
                s.events().commit_count() <= 1,
                "at most one transaction may commit per system state"
            );
        }
        let mut h = History {
            states,
            offset,
            cap,
        };
        if let Some(cap) = h.cap {
            while h.states.len() > cap.max(1) {
                h.states.remove(0);
                h.offset += 1;
            }
        }
        h
    }

    /// The retention cap this history was built with, if any.
    pub fn capacity_limit(&self) -> Option<usize> {
        self.cap
    }

    /// Total number of states ever appended.
    pub fn len(&self) -> usize {
        self.offset + self.states.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of states currently retained in memory.
    pub fn retained(&self) -> usize {
        self.states.len()
    }

    /// The state at global index `i`, if still retained.
    pub fn get(&self, i: usize) -> Option<&SystemState> {
        i.checked_sub(self.offset).and_then(|j| self.states.get(j))
    }

    /// The most recent state.
    pub fn last(&self) -> Option<&SystemState> {
        self.states.last()
    }

    /// Global index of the most recent state.
    pub fn last_index(&self) -> Option<usize> {
        self.len().checked_sub(1)
    }

    /// Appends a state, enforcing strictly increasing timestamps and the
    /// at-most-one-commit-per-state constraint. Returns the global index.
    pub fn push(&mut self, s: SystemState) -> usize {
        if let Some(prev) = self.states.last() {
            assert!(
                s.time() > prev.time(),
                "history timestamps must strictly increase ({} then {})",
                prev.time(),
                s.time()
            );
        }
        assert!(
            s.events().commit_count() <= 1,
            "at most one transaction may commit per system state"
        );
        self.states.push(s);
        if let Some(cap) = self.cap {
            while self.states.len() > cap {
                self.states.remove(0);
                self.offset += 1;
            }
        }
        self.len() - 1
    }

    /// Iterates retained states with their global indices.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &SystemState)> {
        self.states
            .iter()
            .enumerate()
            .map(|(j, s)| (self.offset + j, s))
    }

    /// Index of the latest state with `time() <= t`, if any is retained.
    pub fn index_at(&self, t: Timestamp) -> Option<usize> {
        let j = self.states.partition_point(|s| s.time() <= t);
        j.checked_sub(1).map(|j| self.offset + j)
    }

    /// Validates the transaction-time invariant: the database state changes
    /// only across a commit. Used by tests and debug assertions.
    pub fn validate_transaction_time(&self) -> std::result::Result<(), String> {
        fn normalized(db: &Database) -> Database {
            // The `time` item differs in every state by construction; ignore it.
            let mut db = db.clone();
            db.set_item(TIME_ITEM, Value::Null);
            db
        }
        for w in self.states.windows(2) {
            let (a, b) = (&w[0], &w[1]);
            if b.events().commit_count() == 0 && normalized(a.db()) != normalized(b.db()) {
                return Err(format!(
                    "database changed at {} without a commit event",
                    b.time()
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, EventSet};
    use crate::txn::TxnId;

    fn state(t: i64, events: EventSet) -> SystemState {
        SystemState::new(Database::new(), events, Timestamp(t))
    }

    #[test]
    fn time_item_is_stamped() {
        let s = state(7, EventSet::new());
        assert_eq!(s.db().item(TIME_ITEM).unwrap(), Value::Time(Timestamp(7)));
    }

    #[test]
    #[should_panic(expected = "strictly increase")]
    fn rejects_non_increasing_time() {
        let mut h = History::new();
        h.push(state(5, EventSet::new()));
        h.push(state(5, EventSet::new()));
    }

    #[test]
    #[should_panic(expected = "at most one transaction")]
    fn rejects_two_commits() {
        let mut h = History::new();
        h.push(state(
            1,
            EventSet::of([Event::txn_commit(TxnId(1)), Event::txn_commit(TxnId(2))]),
        ));
    }

    #[test]
    fn capped_history_keeps_global_indices() {
        let mut h = History::with_capacity_limit(2);
        for t in 0..5 {
            let idx = h.push(state(t, EventSet::new()));
            assert_eq!(idx as i64, t);
        }
        assert_eq!(h.len(), 5);
        assert_eq!(h.retained(), 2);
        assert!(h.get(0).is_none());
        assert_eq!(h.get(4).unwrap().time(), Timestamp(4));
        assert_eq!(h.last_index(), Some(4));
    }

    #[test]
    fn index_at_finds_latest_not_after() {
        let mut h = History::new();
        for t in [1i64, 3, 7] {
            h.push(state(t, EventSet::new()));
        }
        assert_eq!(h.index_at(Timestamp(0)), None);
        assert_eq!(h.index_at(Timestamp(3)), Some(1));
        assert_eq!(h.index_at(Timestamp(5)), Some(1));
        assert_eq!(h.index_at(Timestamp(9)), Some(2));
    }

    #[test]
    fn validate_transaction_time_detects_untracked_change() {
        let mut h = History::new();
        let mut db = Database::new();
        h.push(SystemState::new(db.clone(), EventSet::new(), Timestamp(1)));
        db.set_item("x", Value::Int(1));
        h.push(SystemState::new(db, EventSet::new(), Timestamp(2)));
        assert!(h.validate_transaction_time().is_err());
    }
}
