//! System states and histories.
//!
//! "A system state is a pair (S, E) where S is the database state and E is
//! the set of events … A system history is a finite sequence
//! (S0, E0), …, (Si, Ei)." Each state also carries the timestamp at which
//! its event set occurred; timestamps are strictly increasing.

use std::fmt;
use std::sync::Arc;

use tdb_relation::{Database, Delta, Timestamp, Value};

use crate::event::names::UPDATE;
use crate::event::EventSet;

/// The reserved name of the data item exposing the global clock.
pub const TIME_ITEM: &str = "time";

/// Registry handle for `tdb_states_total` (system states appended to any
/// history), resolved once per process. Touched only while
/// [`tdb_obs::enabled`].
fn states_counter() -> &'static tdb_obs::Counter {
    static COUNTER: std::sync::OnceLock<tdb_obs::Counter> = std::sync::OnceLock::new();
    COUNTER.get_or_init(|| tdb_obs::global().counter("tdb_states_total"))
}

/// One snapshot of the system: database state + simultaneous events + time.
#[derive(Debug, Clone)]
pub struct SystemState {
    /// Shared so that per-rule evaluation (and snapshots of the state taken
    /// by residual formulas) can hold the database without copying it.
    db: Arc<Database>,
    events: EventSet,
    time: Timestamp,
    /// What this state changed: touched catalog names + raised event names.
    /// Shared because dispatch consults it once per registered rule set.
    delta: Arc<Delta>,
}

/// Equality compares the observable state — database, events, time. The
/// delta is derived data (commit states carry one `update(target)` event
/// per touched name, so it reconstructs from the event set) and two equal
/// states always carry equal deltas.
impl PartialEq for SystemState {
    fn eq(&self, other: &SystemState) -> bool {
        self.db == other.db && self.events == other.events && self.time == other.time
    }
}

/// Reconstructs the delta a state's event set implies: `update(target)`
/// events name the touched catalog entries; every event name is "raised".
fn delta_from_events(events: &EventSet) -> Delta {
    let mut touched = Vec::new();
    for e in events.named(UPDATE) {
        if let Some(target) = e.args().first().and_then(|v| v.as_str()) {
            touched.push(target.to_string());
        }
    }
    let raised = events.iter().map(|e| e.name().to_string()).collect();
    Delta::new(touched, raised)
}

impl SystemState {
    /// Builds a state, stamping the `time` data item into the snapshot so
    /// that queries (and PTL terms) can read the clock. The delta is
    /// derived from the event set (sufficient for every state the engine
    /// produces, since commits tag their writes with `update` events).
    pub fn new(mut db: Database, events: EventSet, time: Timestamp) -> SystemState {
        let delta = delta_from_events(&events);
        db.set_item(TIME_ITEM, Value::Time(time));
        SystemState {
            db: Arc::new(db),
            events,
            time,
            delta: Arc::new(delta),
        }
    }

    /// Builds a state with an explicitly tracked write set (from
    /// [`Database::track_changes`]); the engine's commit paths use this so
    /// the delta comes from the writes actually applied rather than from
    /// the event annotations. The two sources coincide for engine-built
    /// states — [`SystemState::new`] is the general fallback.
    pub fn with_delta(
        mut db: Database,
        events: EventSet,
        time: Timestamp,
        touched: Vec<String>,
    ) -> SystemState {
        let raised = events.iter().map(|e| e.name().to_string()).collect();
        let delta = Delta::new(touched, raised);
        db.set_item(TIME_ITEM, Value::Time(time));
        SystemState {
            db: Arc::new(db),
            events,
            time,
            delta: Arc::new(delta),
        }
    }

    pub fn db(&self) -> &Database {
        &self.db
    }

    /// The database snapshot as a cheaply clonable handle.
    pub fn db_arc(&self) -> Arc<Database> {
        Arc::clone(&self.db)
    }

    pub fn events(&self) -> &EventSet {
        &self.events
    }

    pub fn time(&self) -> Timestamp {
        self.time
    }

    /// What this state changed (touched catalog names, raised events).
    pub fn delta(&self) -> &Delta {
        &self.delta
    }
}

impl fmt::Display for SystemState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{} {}", self.time, self.events)
    }
}

/// A finite sequence of system states with strictly increasing timestamps.
///
/// The incremental evaluator never reads old states, so a history may be
/// capped: `with_capacity_limit(k)` keeps only the most recent `k` states
/// (the *offset* of the first retained state is tracked so global indices
/// stay stable). The naive baseline and the valid-time machinery use
/// unbounded histories.
#[derive(Debug, Clone, Default)]
pub struct History {
    states: Vec<SystemState>,
    /// Global index of `states[0]`.
    offset: usize,
    /// If set, retain at most this many states.
    cap: Option<usize>,
}

impl History {
    pub fn new() -> History {
        History::default()
    }

    /// A history that retains only the `cap` most recent states.
    pub fn with_capacity_limit(cap: usize) -> History {
        History {
            states: Vec::new(),
            offset: 0,
            cap: Some(cap.max(1)),
        }
    }

    /// Rebuilds a history from checkpointed parts: the global index of the
    /// first retained state, the retained suffix itself, and the retention
    /// cap. Panics under the same conditions as [`History::push`] (callers
    /// deserializing untrusted bytes must validate order first).
    pub fn from_parts(offset: usize, states: Vec<SystemState>, cap: Option<usize>) -> History {
        for w in states.windows(2) {
            assert!(
                w[1].time() > w[0].time(),
                "history timestamps must strictly increase ({} then {})",
                w[0].time(),
                w[1].time()
            );
        }
        for s in &states {
            assert!(
                s.events().commit_count() <= 1,
                "at most one transaction may commit per system state"
            );
        }
        let mut h = History {
            states,
            offset,
            cap,
        };
        if let Some(cap) = h.cap {
            while h.states.len() > cap.max(1) {
                h.states.remove(0);
                h.offset += 1;
            }
        }
        h
    }

    /// The retention cap this history was built with, if any.
    pub fn capacity_limit(&self) -> Option<usize> {
        self.cap
    }

    /// Total number of states ever appended.
    pub fn len(&self) -> usize {
        self.offset + self.states.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of states currently retained in memory.
    pub fn retained(&self) -> usize {
        self.states.len()
    }

    /// The state at global index `i`, if still retained.
    pub fn get(&self, i: usize) -> Option<&SystemState> {
        i.checked_sub(self.offset).and_then(|j| self.states.get(j))
    }

    /// The most recent state.
    pub fn last(&self) -> Option<&SystemState> {
        self.states.last()
    }

    /// Global index of the most recent state.
    pub fn last_index(&self) -> Option<usize> {
        self.len().checked_sub(1)
    }

    /// Appends a state, enforcing strictly increasing timestamps and the
    /// at-most-one-commit-per-state constraint. Returns the global index.
    pub fn push(&mut self, s: SystemState) -> usize {
        if let Some(prev) = self.states.last() {
            assert!(
                s.time() > prev.time(),
                "history timestamps must strictly increase ({} then {})",
                prev.time(),
                s.time()
            );
        }
        assert!(
            s.events().commit_count() <= 1,
            "at most one transaction may commit per system state"
        );
        if tdb_obs::enabled() {
            states_counter().inc();
        }
        self.states.push(s);
        if let Some(cap) = self.cap {
            while self.states.len() > cap {
                self.states.remove(0);
                self.offset += 1;
            }
        }
        self.len() - 1
    }

    /// Iterates retained states with their global indices.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &SystemState)> {
        self.states
            .iter()
            .enumerate()
            .map(|(j, s)| (self.offset + j, s))
    }

    /// Index of the latest state with `time() <= t`, if any is retained.
    pub fn index_at(&self, t: Timestamp) -> Option<usize> {
        let j = self.states.partition_point(|s| s.time() <= t);
        j.checked_sub(1).map(|j| self.offset + j)
    }

    /// Validates the transaction-time invariant: the database state changes
    /// only across a commit. Used by tests and debug assertions.
    pub fn validate_transaction_time(&self) -> std::result::Result<(), String> {
        fn normalized(db: &Database) -> Database {
            // The `time` item differs in every state by construction; ignore it.
            let mut db = db.clone();
            db.set_item(TIME_ITEM, Value::Null);
            db
        }
        for w in self.states.windows(2) {
            let (a, b) = (&w[0], &w[1]);
            if b.events().commit_count() == 0 && normalized(a.db()) != normalized(b.db()) {
                return Err(format!(
                    "database changed at {} without a commit event",
                    b.time()
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, EventSet};
    use crate::txn::TxnId;

    fn state(t: i64, events: EventSet) -> SystemState {
        SystemState::new(Database::new(), events, Timestamp(t))
    }

    #[test]
    fn time_item_is_stamped() {
        let s = state(7, EventSet::new());
        assert_eq!(s.db().item(TIME_ITEM).unwrap(), Value::Time(Timestamp(7)));
    }

    #[test]
    fn delta_derives_from_update_events() {
        let s = state(
            1,
            EventSet::of([
                Event::txn_commit(TxnId(1)),
                Event::update("STOCK"),
                Event::update("balance"),
            ]),
        );
        assert_eq!(
            s.delta().touched_relations,
            vec!["STOCK".to_string(), "balance".to_string()]
        );
        assert!(s.delta().raises(crate::event::names::TXN_COMMIT));
        assert!(s.delta().raises(crate::event::names::UPDATE));
        assert!(s.delta().touches("STOCK"));
        assert!(!s.delta().touches("OTHER"));
    }

    #[test]
    fn explicit_delta_matches_event_derived_delta() {
        let events = EventSet::of([
            Event::txn_commit(TxnId(3)),
            Event::update("A"),
            Event::update("B"),
        ]);
        let derived = state(2, events.clone());
        let explicit = SystemState::with_delta(
            Database::new(),
            events,
            Timestamp(2),
            vec!["B".into(), "A".into()],
        );
        assert_eq!(derived.delta(), explicit.delta());
        assert_eq!(derived, explicit, "delta never affects state equality");
    }

    #[test]
    #[should_panic(expected = "strictly increase")]
    fn rejects_non_increasing_time() {
        let mut h = History::new();
        h.push(state(5, EventSet::new()));
        h.push(state(5, EventSet::new()));
    }

    #[test]
    #[should_panic(expected = "at most one transaction")]
    fn rejects_two_commits() {
        let mut h = History::new();
        h.push(state(
            1,
            EventSet::of([Event::txn_commit(TxnId(1)), Event::txn_commit(TxnId(2))]),
        ));
    }

    #[test]
    fn capped_history_keeps_global_indices() {
        let mut h = History::with_capacity_limit(2);
        for t in 0..5 {
            let idx = h.push(state(t, EventSet::new()));
            assert_eq!(idx as i64, t);
        }
        assert_eq!(h.len(), 5);
        assert_eq!(h.retained(), 2);
        assert!(h.get(0).is_none());
        assert_eq!(h.get(4).unwrap().time(), Timestamp(4));
        assert_eq!(h.last_index(), Some(4));
    }

    #[test]
    fn index_at_finds_latest_not_after() {
        let mut h = History::new();
        for t in [1i64, 3, 7] {
            h.push(state(t, EventSet::new()));
        }
        assert_eq!(h.index_at(Timestamp(0)), None);
        assert_eq!(h.index_at(Timestamp(3)), Some(1));
        assert_eq!(h.index_at(Timestamp(5)), Some(1));
        assert_eq!(h.index_at(Timestamp(9)), Some(2));
    }

    #[test]
    fn validate_transaction_time_detects_untracked_change() {
        let mut h = History::new();
        let mut db = Database::new();
        h.push(SystemState::new(db.clone(), EventSet::new(), Timestamp(1)));
        db.set_item("x", Value::Int(1));
        h.push(SystemState::new(db, EventSet::new(), Timestamp(2)));
        assert!(h.validate_transaction_time().is_err());
    }
}
