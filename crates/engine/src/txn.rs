//! Transactions: buffered write sets applied atomically at commit.
//!
//! In the transaction-time model "the database states of two consecutive
//! system states are identical, unless the event set contains the commit of
//! a transaction" — so writes are buffered in the transaction and applied to
//! the database in one step when (and only when) the commit is allowed.

use std::fmt;

use tdb_relation::{Database, Timestamp, Tuple, Value};

use crate::error::Result;

/// A transaction identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TxnId(pub u64);

impl fmt::Display for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// One buffered write. `valid_time` is used only by the valid-time engine;
/// in the transaction-time model it is `None` (changes take effect at commit
/// time).
#[derive(Debug, Clone, PartialEq)]
pub struct Write {
    pub op: WriteOp,
    pub valid_time: Option<Timestamp>,
}

/// The kinds of buffered writes.
#[derive(Debug, Clone, PartialEq)]
pub enum WriteOp {
    Insert { relation: String, tuple: Tuple },
    Delete { relation: String, tuple: Tuple },
    SetItem { item: String, value: Value },
}

impl WriteOp {
    /// The catalog name this write touches (for update events and relevance
    /// filtering).
    pub fn target(&self) -> &str {
        match self {
            WriteOp::Insert { relation, .. } | WriteOp::Delete { relation, .. } => relation,
            WriteOp::SetItem { item, .. } => item,
        }
    }

    /// Applies the write to a database state.
    pub fn apply(&self, db: &mut Database) -> Result<()> {
        match self {
            WriteOp::Insert { relation, tuple } => {
                db.insert_tuple(relation, tuple.clone())?;
            }
            WriteOp::Delete { relation, tuple } => {
                db.delete_tuple(relation, tuple)?;
            }
            WriteOp::SetItem { item, value } => {
                db.set_item(item.clone(), value.clone());
            }
        }
        Ok(())
    }

    /// Applies the *inverse* of the write (used when stripping uncommitted
    /// updates out of a valid-time committed history). Insert/delete are
    /// inverses of each other; `SetItem` needs the previous value, which the
    /// caller must have recorded.
    pub fn undo(&self, db: &mut Database, prev_item: Option<&Value>) -> Result<()> {
        match self {
            WriteOp::Insert { relation, tuple } => {
                db.delete_tuple(relation, tuple)?;
            }
            WriteOp::Delete { relation, tuple } => {
                db.insert_tuple(relation, tuple.clone())?;
            }
            WriteOp::SetItem { item, .. } => {
                if let Some(v) = prev_item {
                    db.set_item(item.clone(), v.clone());
                }
            }
        }
        Ok(())
    }
}

impl fmt::Display for WriteOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WriteOp::Insert { relation, tuple } => write!(f, "insert {tuple} into {relation}"),
            WriteOp::Delete { relation, tuple } => write!(f, "delete {tuple} from {relation}"),
            WriteOp::SetItem { item, value } => write!(f, "set {item} := {value}"),
        }
    }
}

/// The lifecycle status of a transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnStatus {
    Active,
    Committed,
    Aborted,
}

/// An open transaction: an id, a begin time and a buffered write set.
#[derive(Debug, Clone)]
pub struct Transaction {
    id: TxnId,
    begin_time: Timestamp,
    writes: Vec<Write>,
    status: TxnStatus,
}

impl Transaction {
    pub fn new(id: TxnId, begin_time: Timestamp) -> Transaction {
        Transaction {
            id,
            begin_time,
            writes: Vec::new(),
            status: TxnStatus::Active,
        }
    }

    pub fn id(&self) -> TxnId {
        self.id
    }

    pub fn begin_time(&self) -> Timestamp {
        self.begin_time
    }

    pub fn status(&self) -> TxnStatus {
        self.status
    }

    pub fn writes(&self) -> &[Write] {
        &self.writes
    }

    /// Buffers a write effective at commit time (transaction-time model).
    pub fn push_write(&mut self, op: WriteOp) {
        debug_assert_eq!(self.status, TxnStatus::Active);
        self.writes.push(Write {
            op,
            valid_time: None,
        });
    }

    /// Buffers a write with an explicit valid time (valid-time model).
    pub fn push_write_at(&mut self, op: WriteOp, valid_time: Timestamp) {
        debug_assert_eq!(self.status, TxnStatus::Active);
        self.writes.push(Write {
            op,
            valid_time: Some(valid_time),
        });
    }

    /// Applies the whole write set to `db` (commit in the transaction-time
    /// model). Individual write errors (e.g. unknown relation) abort the
    /// application midway, so callers apply to a scratch copy first.
    pub fn apply_all(&self, db: &mut Database) -> Result<()> {
        for w in &self.writes {
            w.op.apply(db)?;
        }
        Ok(())
    }

    /// Distinct catalog names touched by the write set, sorted.
    pub fn touched(&self) -> Vec<String> {
        let mut t: Vec<String> = self
            .writes
            .iter()
            .map(|w| w.op.target().to_string())
            .collect();
        t.sort();
        t.dedup();
        t
    }

    pub(crate) fn mark_committed(&mut self) {
        self.status = TxnStatus::Committed;
    }

    pub(crate) fn mark_aborted(&mut self) {
        self.status = TxnStatus::Aborted;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdb_relation::{tuple, Relation, Schema};

    fn db() -> Database {
        let mut db = Database::new();
        db.create_relation("S", Relation::empty(Schema::untyped(&["name", "price"])))
            .unwrap();
        db
    }

    #[test]
    fn writes_are_buffered_not_applied() {
        let mut t = Transaction::new(TxnId(1), Timestamp(0));
        t.push_write(WriteOp::Insert {
            relation: "S".into(),
            tuple: tuple!["IBM", 72i64],
        });
        let d = db();
        assert!(
            d.relation("S").unwrap().is_empty(),
            "no effect before apply"
        );
        let mut d2 = d.clone();
        t.apply_all(&mut d2).unwrap();
        assert_eq!(d2.relation("S").unwrap().len(), 1);
    }

    #[test]
    fn apply_order_is_preserved() {
        let mut t = Transaction::new(TxnId(1), Timestamp(0));
        t.push_write(WriteOp::SetItem {
            item: "x".into(),
            value: Value::Int(1),
        });
        t.push_write(WriteOp::SetItem {
            item: "x".into(),
            value: Value::Int(2),
        });
        let mut d = db();
        t.apply_all(&mut d).unwrap();
        assert_eq!(d.item("x").unwrap(), Value::Int(2));
    }

    #[test]
    fn undo_inverts_insert_and_delete() {
        let mut d = db();
        let ins = WriteOp::Insert {
            relation: "S".into(),
            tuple: tuple!["IBM", 72i64],
        };
        ins.apply(&mut d).unwrap();
        ins.undo(&mut d, None).unwrap();
        assert!(d.relation("S").unwrap().is_empty());

        let del = WriteOp::Delete {
            relation: "S".into(),
            tuple: tuple!["IBM", 72i64],
        };
        ins.apply(&mut d).unwrap();
        del.apply(&mut d).unwrap();
        del.undo(&mut d, None).unwrap();
        assert_eq!(d.relation("S").unwrap().len(), 1);
    }

    #[test]
    fn touched_deduplicates() {
        let mut t = Transaction::new(TxnId(1), Timestamp(0));
        t.push_write(WriteOp::Insert {
            relation: "S".into(),
            tuple: tuple!["a", 1i64],
        });
        t.push_write(WriteOp::Delete {
            relation: "S".into(),
            tuple: tuple!["a", 1i64],
        });
        t.push_write(WriteOp::SetItem {
            item: "F".into(),
            value: Value::Int(0),
        });
        assert_eq!(t.touched(), vec!["F".to_string(), "S".into()]);
    }

    #[test]
    fn unknown_relation_fails_apply() {
        let mut t = Transaction::new(TxnId(1), Timestamp(0));
        t.push_write(WriteOp::Insert {
            relation: "NOPE".into(),
            tuple: tuple![1i64],
        });
        assert!(t.apply_all(&mut db()).is_err());
    }
}
