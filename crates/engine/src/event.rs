//! Instantaneous, parameterized events (the paper's set `U`).
//!
//! "Transaction-begin, Transaction-commit, Rule-execute, Insert-tuple etc.,
//! are some of the events. Many of these events may be parameterized."
//! An [`Event`] is a name plus a list of parameter values; an [`EventSet`]
//! is the (possibly simultaneous) set of events of one system state.

use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

use tdb_relation::Value;

use crate::txn::TxnId;

/// Well-known event names used by the engine itself. User events may use any
/// other name.
pub mod names {
    pub const TXN_BEGIN: &str = "transaction_begin";
    pub const TXN_COMMIT: &str = "transaction_commit";
    pub const TXN_ABORT: &str = "transaction_abort";
    pub const ATTEMPTS_TO_COMMIT: &str = "attempts_to_commit";
    pub const INSERT_TUPLE: &str = "insert_tuple";
    pub const DELETE_TUPLE: &str = "delete_tuple";
    pub const SET_ITEM: &str = "set_item";
    pub const RULE_EXECUTE: &str = "rule_execute";
    pub const UPDATE: &str = "update";
    pub const CLOCK_TICK: &str = "clock_tick";
}

/// A single instantaneous event occurrence.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Event {
    name: Arc<str>,
    args: Vec<Value>,
}

impl Event {
    pub fn new(name: impl Into<Arc<str>>, args: Vec<Value>) -> Event {
        Event {
            name: name.into(),
            args,
        }
    }

    /// A parameterless event.
    pub fn simple(name: impl Into<Arc<str>>) -> Event {
        Event::new(name, Vec::new())
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn args(&self) -> &[Value] {
        &self.args
    }

    // -- engine-generated events ------------------------------------------

    pub fn txn_begin(t: TxnId) -> Event {
        Event::new(names::TXN_BEGIN, vec![Value::Int(t.0 as i64)])
    }

    pub fn txn_commit(t: TxnId) -> Event {
        Event::new(names::TXN_COMMIT, vec![Value::Int(t.0 as i64)])
    }

    pub fn txn_abort(t: TxnId) -> Event {
        Event::new(names::TXN_ABORT, vec![Value::Int(t.0 as i64)])
    }

    pub fn attempts_to_commit(t: TxnId) -> Event {
        Event::new(names::ATTEMPTS_TO_COMMIT, vec![Value::Int(t.0 as i64)])
    }

    /// An update event on a named relation or item.
    pub fn update(target: &str) -> Event {
        Event::new(names::UPDATE, vec![Value::str(target)])
    }

    /// The rule-execution event backing the `executed` predicate.
    pub fn rule_execute(rule: &str, params: &[Value]) -> Event {
        let mut args = vec![Value::str(rule)];
        args.extend_from_slice(params);
        Event::new(names::RULE_EXECUTE, args)
    }

    /// True if this is a `transaction_commit` event (of any transaction).
    pub fn is_commit(&self) -> bool {
        self.name() == names::TXN_COMMIT
    }

    /// The transaction id if this is a transaction lifecycle event.
    pub fn txn_id(&self) -> Option<TxnId> {
        match self.name() {
            names::TXN_BEGIN | names::TXN_COMMIT | names::TXN_ABORT | names::ATTEMPTS_TO_COMMIT => {
                self.args
                    .first()
                    .and_then(Value::as_i64)
                    .map(|i| TxnId(i as u64))
            }
            _ => None,
        }
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.name)?;
        for (i, a) in self.args.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, ")")
    }
}

/// The set of events of one system state.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EventSet {
    events: BTreeSet<Event>,
}

impl EventSet {
    pub fn new() -> EventSet {
        EventSet::default()
    }

    pub fn of(events: impl IntoIterator<Item = Event>) -> EventSet {
        EventSet {
            events: events.into_iter().collect(),
        }
    }

    pub fn insert(&mut self, e: Event) {
        self.events.insert(e);
    }

    pub fn iter(&self) -> impl Iterator<Item = &Event> {
        self.events.iter()
    }

    pub fn len(&self) -> usize {
        self.events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    pub fn contains(&self, e: &Event) -> bool {
        self.events.contains(e)
    }

    /// True if any event has the given name.
    pub fn has_named(&self, name: &str) -> bool {
        self.events.iter().any(|e| e.name() == name)
    }

    /// Events with the given name.
    pub fn named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Event> {
        self.events.iter().filter(move |e| e.name() == name)
    }

    /// Number of `transaction_commit` events (the model allows at most one).
    pub fn commit_count(&self) -> usize {
        self.events.iter().filter(|e| e.is_commit()).count()
    }

    pub fn union_with(&mut self, other: &EventSet) {
        self.events.extend(other.events.iter().cloned());
    }
}

impl FromIterator<Event> for EventSet {
    fn from_iter<T: IntoIterator<Item = Event>>(iter: T) -> Self {
        EventSet::of(iter)
    }
}

impl fmt::Display for EventSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{e}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parameterized_events_are_distinct() {
        let a = Event::new("login", vec![Value::str("alice")]);
        let b = Event::new("login", vec![Value::str("bob")]);
        assert_ne!(a, b);
        let set = EventSet::of([a.clone(), b, a.clone()]);
        assert_eq!(set.len(), 2);
        assert!(set.contains(&a));
        assert!(set.has_named("login"));
        assert_eq!(set.named("login").count(), 2);
    }

    #[test]
    fn txn_events_roundtrip_id() {
        let e = Event::txn_commit(TxnId(30));
        assert!(e.is_commit());
        assert_eq!(e.txn_id(), Some(TxnId(30)));
        assert_eq!(e.to_string(), "transaction_commit(30)");
        assert_eq!(Event::simple("tick").txn_id(), None);
    }

    #[test]
    fn commit_count() {
        let set = EventSet::of([
            Event::txn_commit(TxnId(1)),
            Event::txn_begin(TxnId(2)),
            Event::update("STOCK"),
        ]);
        assert_eq!(set.commit_count(), 1);
    }

    #[test]
    fn union_merges() {
        let mut a = EventSet::of([Event::simple("x")]);
        a.union_with(&EventSet::of([Event::simple("y"), Event::simple("x")]));
        assert_eq!(a.len(), 2);
    }
}
