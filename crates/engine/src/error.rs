//! Engine error types.

use std::fmt;

use tdb_relation::RelError;

use crate::txn::TxnId;

/// Errors raised by the active-database engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// An operation referenced a transaction that is not open.
    NoSuchTxn(TxnId),
    /// A transaction id was reused while still open.
    TxnAlreadyOpen(TxnId),
    /// The logical clock was asked to move backwards.
    ClockNotMonotonic { now: i64, requested: i64 },
    /// Two transactions attempted to commit at the same instant (the model
    /// requires at most one commit event per system state).
    SimultaneousCommit,
    /// A retroactive update's valid time precedes the allowed window.
    ValidTimeTooOld { valid: i64, limit: i64 },
    /// A valid time in the future of the transaction time.
    ValidTimeInFuture { valid: i64, now: i64 },
    /// Compaction would fold an update whose transaction is still undecided
    /// (or commits at/after the cutoff), which could change a future view.
    CompactionBlocked { txn: TxnId },
    /// An error bubbled up from the relational substrate.
    Rel(RelError),
    /// The transaction was aborted by an integrity constraint.
    Aborted { txn: TxnId, reason: String },
    /// Base-schema seeding attempted after the valid-time history already
    /// holds states (which materialize lazily from the base, so a later
    /// base edit would silently rewrite them).
    SeedAfterHistory,
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::NoSuchTxn(t) => write!(f, "no open transaction {t}"),
            EngineError::TxnAlreadyOpen(t) => write!(f, "transaction {t} is already open"),
            EngineError::ClockNotMonotonic { now, requested } => {
                write!(f, "clock cannot move from {now} back to {requested}")
            }
            EngineError::SimultaneousCommit => {
                write!(f, "at most one transaction may commit per instant")
            }
            EngineError::ValidTimeTooOld { valid, limit } => {
                write!(
                    f,
                    "valid time {valid} older than the maximum-delay limit {limit}"
                )
            }
            EngineError::ValidTimeInFuture { valid, now } => {
                write!(
                    f,
                    "valid time {valid} is in the future of transaction time {now}"
                )
            }
            EngineError::CompactionBlocked { txn } => {
                write!(f, "cannot compact past undecided transaction {txn}")
            }
            EngineError::Rel(e) => write!(f, "{e}"),
            EngineError::Aborted { txn, reason } => {
                write!(f, "transaction {txn} aborted: {reason}")
            }
            EngineError::SeedAfterHistory => {
                write!(
                    f,
                    "base-schema seeding requires an empty valid-time history"
                )
            }
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Rel(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RelError> for EngineError {
    fn from(e: RelError) -> Self {
        EngineError::Rel(e)
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, EngineError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = EngineError::Rel(RelError::UnknownTable("T".into()));
        assert_eq!(e.to_string(), "unknown relation `T`");
        assert!(std::error::Error::source(&e).is_some());
        let e = EngineError::NoSuchTxn(TxnId(3));
        assert!(e.to_string().contains("no open transaction"));
    }
}
