//! The fixed global clock.
//!
//! The paper assumes a single global clock whose value is readable through
//! the `time` data item. We use a deterministic logical clock so that every
//! experiment replays bit-for-bit; workloads advance it explicitly.

use tdb_relation::Timestamp;

use crate::error::{EngineError, Result};

/// A monotone logical clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Clock {
    now: Timestamp,
}

impl Clock {
    /// Starts the clock at `start`.
    pub fn starting_at(start: Timestamp) -> Clock {
        Clock { now: start }
    }

    pub fn now(&self) -> Timestamp {
        self.now
    }

    /// Advances to an absolute instant; must not move backwards (equal is
    /// allowed — several events may occur at one instant).
    pub fn advance_to(&mut self, t: Timestamp) -> Result<()> {
        if t < self.now {
            return Err(EngineError::ClockNotMonotonic {
                now: self.now.0,
                requested: t.0,
            });
        }
        self.now = t;
        Ok(())
    }

    /// Advances by a non-negative number of clock units.
    pub fn advance_by(&mut self, delta: i64) -> Result<Timestamp> {
        if delta < 0 {
            return Err(EngineError::ClockNotMonotonic {
                now: self.now.0,
                requested: self.now.0.saturating_add(delta),
            });
        }
        self.now = self.now.plus(delta);
        Ok(self.now)
    }
}

impl Default for Clock {
    fn default() -> Self {
        Clock::starting_at(Timestamp(0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonicity_enforced() {
        let mut c = Clock::default();
        c.advance_to(Timestamp(5)).unwrap();
        c.advance_to(Timestamp(5)).unwrap();
        assert!(c.advance_to(Timestamp(4)).is_err());
        assert_eq!(c.now(), Timestamp(5));
    }

    #[test]
    fn advance_by() {
        let mut c = Clock::starting_at(Timestamp(10));
        assert_eq!(c.advance_by(7).unwrap(), Timestamp(17));
        assert!(c.advance_by(-1).is_err());
    }
}
