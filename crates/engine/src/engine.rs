//! The transaction-time active database engine.
//!
//! This is the substrate the paper's "temporal component" runs on top of: it
//! owns the current database state, the logical clock, the set of open
//! transactions and the system history, and it turns every occurrence —
//! transaction lifecycle, updates at commit, user events — into a new system
//! state appended to the history.
//!
//! Integrity-constraint gating uses a two-phase commit protocol:
//! [`Engine::prepare_commit`] builds the *candidate* post-commit system
//! state (with the `attempts_to_commit` event, exactly when the paper says
//! TCA rules run); the caller evaluates its constraints against it and then
//! either [`Engine::finish_commit`]s or [`Engine::abort_prepared`]s.

use std::collections::BTreeMap;

use tdb_relation::{Database, Timestamp};

use crate::clock::Clock;
use crate::error::{EngineError, Result};
use crate::event::{Event, EventSet};
use crate::state::{History, SystemState};
use crate::txn::{Transaction, TxnId, WriteOp};

/// A commit that has been prepared but not yet finished or aborted.
#[derive(Debug)]
pub struct PreparedCommit {
    txn: TxnId,
    candidate: SystemState,
}

impl PreparedCommit {
    pub fn txn(&self) -> TxnId {
        self.txn
    }

    /// The candidate post-commit system state (its event set contains
    /// `attempts_to_commit(T)` and `transaction_commit(T)` plus one
    /// `update(target)` event per touched catalog name).
    pub fn candidate(&self) -> &SystemState {
        &self.candidate
    }
}

/// The transaction-time engine.
#[derive(Debug)]
pub struct Engine {
    db: Database,
    clock: Clock,
    history: History,
    open: BTreeMap<TxnId, Transaction>,
    next_txn: u64,
    /// Advance the clock by one unit automatically when a new state would
    /// collide with the previous state's timestamp.
    auto_tick: bool,
}

impl Engine {
    /// Builds an engine over an initial database, recording the initial
    /// state at the clock origin.
    pub fn new(db: Database) -> Engine {
        Engine::with_history(db, History::new())
    }

    /// Builds an engine with a custom (e.g. capacity-limited) history.
    pub fn with_history(db: Database, mut history: History) -> Engine {
        let clock = Clock::default();
        history.push(SystemState::new(db.clone(), EventSet::new(), clock.now()));
        Engine {
            db,
            clock,
            history,
            open: BTreeMap::new(),
            next_txn: 1,
            auto_tick: true,
        }
    }

    /// Rebuilds an engine from checkpointed parts. The history must be
    /// non-empty and end at or before `now`; checkpoints are taken at
    /// quiescent points, so no open transactions are restored (their ids
    /// resume from `next_txn`).
    pub fn from_parts(
        db: Database,
        now: Timestamp,
        history: History,
        next_txn: u64,
        auto_tick: bool,
    ) -> Result<Engine> {
        if let Some(last) = history.last() {
            if last.time() > now {
                return Err(EngineError::ClockNotMonotonic {
                    now: now.0,
                    requested: last.time().0,
                });
            }
        }
        Ok(Engine {
            db,
            clock: Clock::starting_at(now),
            history,
            open: BTreeMap::new(),
            next_txn,
            auto_tick,
        })
    }

    /// Disables automatic clock bumping; emitting two states at the same
    /// instant then becomes an error surfaced as a panic from `History`.
    pub fn set_auto_tick(&mut self, on: bool) {
        self.auto_tick = on;
    }

    /// The id the next transaction will receive (durable across restarts).
    pub fn next_txn_id(&self) -> u64 {
        self.next_txn
    }

    /// Whether the clock auto-bumps to keep state timestamps unique.
    pub fn auto_tick(&self) -> bool {
        self.auto_tick
    }

    pub fn now(&self) -> Timestamp {
        self.clock.now()
    }

    /// The current (committed) database state.
    pub fn db(&self) -> &Database {
        &self.db
    }

    /// Mutable access to the current database *outside* any transaction —
    /// for schema setup (creating relations, defining queries) only.
    pub fn db_mut(&mut self) -> &mut Database {
        &mut self.db
    }

    pub fn history(&self) -> &History {
        &self.history
    }

    pub fn open_txns(&self) -> impl Iterator<Item = TxnId> + '_ {
        self.open.keys().copied()
    }

    /// Advances the logical clock (no system state is created; states are
    /// created by events).
    pub fn advance_clock(&mut self, delta: i64) -> Result<Timestamp> {
        self.clock.advance_by(delta)
    }

    pub fn advance_clock_to(&mut self, t: Timestamp) -> Result<()> {
        self.clock.advance_to(t)
    }

    /// The timestamp the next emitted state will carry, honoring auto-tick.
    fn next_state_time(&mut self) -> Result<Timestamp> {
        let last = self.history.last().map(|s| s.time());
        match last {
            Some(last) if self.clock.now() <= last => {
                if self.auto_tick {
                    self.clock.advance_to(last.plus(1))?;
                    Ok(self.clock.now())
                } else {
                    Err(EngineError::ClockNotMonotonic {
                        now: last.0,
                        requested: self.clock.now().0,
                    })
                }
            }
            _ => Ok(self.clock.now()),
        }
    }

    /// Emits a new system state carrying `events` (database unchanged).
    /// Returns the global state index.
    pub fn emit(&mut self, events: EventSet) -> Result<usize> {
        let t = self.next_state_time()?;
        Ok(self
            .history
            .push(SystemState::new(self.db.clone(), events, t)))
    }

    /// Emits a single user event.
    pub fn emit_event(&mut self, e: Event) -> Result<usize> {
        self.emit(EventSet::of([e]))
    }

    /// Emits a bare clock-tick state (used by timer-driven rules).
    pub fn tick(&mut self) -> Result<usize> {
        self.emit_event(Event::simple(crate::event::names::CLOCK_TICK))
    }

    /// Begins a transaction, emitting its `transaction_begin` state.
    pub fn begin(&mut self) -> Result<TxnId> {
        let id = TxnId(self.next_txn);
        self.next_txn += 1;
        let txn = Transaction::new(id, self.clock.now());
        self.open.insert(id, txn);
        self.emit_event(Event::txn_begin(id))?;
        Ok(id)
    }

    /// Buffers a write in an open transaction.
    pub fn write(&mut self, txn: TxnId, op: WriteOp) -> Result<()> {
        self.open
            .get_mut(&txn)
            .ok_or(EngineError::NoSuchTxn(txn))?
            .push_write(op);
        Ok(())
    }

    /// Builds the candidate post-commit state without committing. The write
    /// set is validated by applying it to a scratch copy of the database.
    pub fn prepare_commit(&mut self, txn: TxnId) -> Result<PreparedCommit> {
        let t = self.open.get(&txn).ok_or(EngineError::NoSuchTxn(txn))?;
        let mut post = self.db.clone();
        post.track_changes();
        t.apply_all(&mut post)?;
        let touched = post.take_changes();

        let mut events = EventSet::of([Event::attempts_to_commit(txn), Event::txn_commit(txn)]);
        for target in t.touched() {
            events.insert(Event::update(&target));
        }
        let time = self.next_state_time()?;
        Ok(PreparedCommit {
            txn,
            candidate: SystemState::with_delta(post, events, time, touched),
        })
    }

    /// Finishes a prepared commit: appends the candidate state and installs
    /// the post-commit database. Returns the global state index.
    pub fn finish_commit(&mut self, prepared: PreparedCommit) -> Result<usize> {
        let mut t = self
            .open
            .remove(&prepared.txn)
            .ok_or(EngineError::NoSuchTxn(prepared.txn))?;
        t.mark_committed();
        self.db = prepared.candidate.db().clone();
        Ok(self.history.push(prepared.candidate))
    }

    /// Aborts a prepared commit (the candidate state is discarded); emits a
    /// `transaction_abort` state with the database unchanged.
    pub fn abort_prepared(&mut self, prepared: PreparedCommit) -> Result<usize> {
        self.abort(prepared.txn)
    }

    /// Aborts an open transaction outright.
    pub fn abort(&mut self, txn: TxnId) -> Result<usize> {
        let mut t = self.open.remove(&txn).ok_or(EngineError::NoSuchTxn(txn))?;
        t.mark_aborted();
        self.emit_event(Event::txn_abort(txn))
    }

    /// Builds a prepared commit for `ops` as a one-shot transaction without
    /// a separate `transaction_begin` state. `extra_events` are merged into
    /// the candidate state's event set (e.g. `rule_execute` when the update
    /// is a rule action). The caller gates it exactly like
    /// [`Engine::prepare_commit`].
    pub fn prepare_update(
        &mut self,
        ops: impl IntoIterator<Item = WriteOp>,
        extra_events: impl IntoIterator<Item = Event>,
    ) -> Result<PreparedCommit> {
        let id = TxnId(self.next_txn);
        self.next_txn += 1;
        let mut txn = Transaction::new(id, self.clock.now());
        for op in ops {
            txn.push_write(op);
        }
        let mut post = self.db.clone();
        post.track_changes();
        txn.apply_all(&mut post)?;
        let touched = post.take_changes();
        let mut events = EventSet::of([Event::attempts_to_commit(id), Event::txn_commit(id)]);
        for target in txn.touched() {
            events.insert(Event::update(&target));
        }
        for e in extra_events {
            events.insert(e);
        }
        let time = self.next_state_time()?;
        self.open.insert(id, txn);
        Ok(PreparedCommit {
            txn: id,
            candidate: SystemState::with_delta(post, events, time, touched),
        })
    }

    /// Applies `ops` as one atomic, immediately committed update, producing
    /// a *single* system state (no separate `transaction_begin` state).
    /// This is the compact form used by workloads and by histories built to
    /// match the paper's worked examples, where each update is one state.
    pub fn apply_update(&mut self, ops: impl IntoIterator<Item = WriteOp>) -> Result<usize> {
        let id = TxnId(self.next_txn);
        self.next_txn += 1;
        let mut txn = Transaction::new(id, self.clock.now());
        for op in ops {
            txn.push_write(op);
        }
        let mut post = self.db.clone();
        post.track_changes();
        txn.apply_all(&mut post)?;
        let touched = post.take_changes();
        let mut events = EventSet::of([Event::attempts_to_commit(id), Event::txn_commit(id)]);
        for target in txn.touched() {
            events.insert(Event::update(&target));
        }
        let time = self.next_state_time()?;
        self.db = post.clone();
        Ok(self
            .history
            .push(SystemState::with_delta(post, events, time, touched)))
    }

    /// One-shot convenience: begin, apply `ops`, commit unconditionally.
    /// Returns the commit state index.
    pub fn run_txn(&mut self, ops: impl IntoIterator<Item = WriteOp>) -> Result<usize> {
        let txn = self.begin()?;
        for op in ops {
            self.write(txn, op)?;
        }
        let p = self.prepare_commit(txn)?;
        self.finish_commit(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tdb_relation::{tuple, Relation, Schema, Value};

    fn engine() -> Engine {
        let mut db = Database::new();
        db.create_relation(
            "STOCK",
            Relation::empty(Schema::untyped(&["name", "price"])),
        )
        .unwrap();
        Engine::new(db)
    }

    #[test]
    fn initial_state_recorded() {
        let e = engine();
        assert_eq!(e.history().len(), 1);
        assert_eq!(e.history().get(0).unwrap().time(), Timestamp(0));
    }

    #[test]
    fn commit_applies_writes_atomically() {
        let mut e = engine();
        let t = e.begin().unwrap();
        e.write(
            t,
            WriteOp::Insert {
                relation: "STOCK".into(),
                tuple: tuple!["IBM", 72i64],
            },
        )
        .unwrap();
        assert!(
            e.db().relation("STOCK").unwrap().is_empty(),
            "buffered until commit"
        );
        let p = e.prepare_commit(t).unwrap();
        assert!(
            p.candidate().db().relation("STOCK").unwrap().len() == 1,
            "candidate sees the write"
        );
        assert!(
            e.db().relation("STOCK").unwrap().is_empty(),
            "prepare has no effect"
        );
        e.finish_commit(p).unwrap();
        assert_eq!(e.db().relation("STOCK").unwrap().len(), 1);
        e.history().validate_transaction_time().unwrap();
    }

    #[test]
    fn abort_discards_writes() {
        let mut e = engine();
        let t = e.begin().unwrap();
        e.write(
            t,
            WriteOp::SetItem {
                item: "x".into(),
                value: Value::Int(1),
            },
        )
        .unwrap();
        let p = e.prepare_commit(t).unwrap();
        e.abort_prepared(p).unwrap();
        assert!(e.db().item("x").is_err());
        assert!(e
            .write(
                t,
                WriteOp::SetItem {
                    item: "x".into(),
                    value: Value::Int(2)
                }
            )
            .is_err());
        // History ends with a transaction_abort event.
        let last = e.history().last().unwrap();
        assert!(last.events().has_named(crate::event::names::TXN_ABORT));
    }

    #[test]
    fn commit_state_carries_update_events() {
        let mut e = engine();
        let idx = e
            .run_txn([
                WriteOp::Insert {
                    relation: "STOCK".into(),
                    tuple: tuple!["IBM", 72i64],
                },
                WriteOp::SetItem {
                    item: "F".into(),
                    value: Value::Int(0),
                },
            ])
            .unwrap();
        let s = e.history().get(idx).unwrap();
        assert!(s.events().contains(&Event::update("STOCK")));
        assert!(s.events().contains(&Event::update("F")));
        assert!(s
            .events()
            .has_named(crate::event::names::ATTEMPTS_TO_COMMIT));
        assert_eq!(s.events().commit_count(), 1);
    }

    #[test]
    fn auto_tick_keeps_time_strictly_increasing() {
        let mut e = engine();
        let a = e.emit_event(Event::simple("x")).unwrap();
        let b = e.emit_event(Event::simple("y")).unwrap();
        let (ta, tb) = (
            e.history().get(a).unwrap().time(),
            e.history().get(b).unwrap().time(),
        );
        assert!(tb > ta);
    }

    #[test]
    fn no_auto_tick_errors_on_collision() {
        let mut e = engine();
        e.set_auto_tick(false);
        // Initial state is at t0 and the clock is still at t0.
        assert!(matches!(
            e.emit_event(Event::simple("x")),
            Err(EngineError::ClockNotMonotonic { .. })
        ));
        e.advance_clock(1).unwrap();
        assert!(e.emit_event(Event::simple("x")).is_ok());
    }

    #[test]
    fn clock_advances_are_reflected_in_states() {
        let mut e = engine();
        e.advance_clock(10).unwrap();
        let idx = e.tick().unwrap();
        assert_eq!(e.history().get(idx).unwrap().time(), Timestamp(10));
        assert_eq!(
            e.history().get(idx).unwrap().db().item("time").unwrap(),
            Value::Time(Timestamp(10))
        );
    }

    #[test]
    fn unknown_txn_operations_fail() {
        let mut e = engine();
        let ghost = TxnId(99);
        assert!(e
            .write(
                ghost,
                WriteOp::SetItem {
                    item: "x".into(),
                    value: Value::Int(1)
                }
            )
            .is_err());
        assert!(e.prepare_commit(ghost).is_err());
        assert!(e.abort(ghost).is_err());
    }

    #[test]
    fn invalid_write_fails_at_prepare() {
        let mut e = engine();
        let t = e.begin().unwrap();
        e.write(
            t,
            WriteOp::Insert {
                relation: "NOPE".into(),
                tuple: tuple![1i64],
            },
        )
        .unwrap();
        assert!(e.prepare_commit(t).is_err());
        // Transaction is still open; it can be aborted cleanly.
        e.abort(t).unwrap();
    }
}
