//! # temporal-adb
//!
//! A from-scratch implementation of *Sistla & Wolfson, "Temporal Conditions
//! and Integrity Constraints in Active Database Systems" (SIGMOD 1995)*:
//! Past Temporal Logic (PTL) conditions for active-database rules, an
//! incremental condition-evaluation algorithm, temporal aggregates,
//! composite/temporal actions via the `executed` predicate, temporal
//! integrity constraints, and the valid-time trigger/constraint semantics.
//!
//! This crate re-exports the workspace's public API:
//!
//! * [`relation`] — the relational substrate (values, relations, queries);
//! * [`engine`] — the active-database engine (transactions, events,
//!   system histories; transaction-time and valid-time);
//! * [`ptl`] — the PTL language (AST, parser, analyses, naive semantics);
//! * [`core`] — the temporal component (incremental evaluator, rules,
//!   aggregates, constraints, the `ActiveDatabase` facade);
//! * [`analysis`] — the whole-rule-set static verifier (boundedness
//!   certification, triggering-graph analysis, lint diagnostics) behind
//!   the `tdb-lint` CLI;
//! * [`storage`] — durability (write-ahead log, Theorem-1 checkpoints,
//!   crash recovery);
//! * [`baseline`] — comparator implementations (naive re-evaluation,
//!   event-expression automata);
//! * [`obs`] — zero-dependency observability (metrics registry, tracing
//!   spans, slow-rule log) wired through every layer above.
//!
//! ## Quickstart
//!
//! ```
//! use temporal_adb::prelude::*;
//!
//! // A database with one scalar item and a query reading it.
//! let mut db = Database::new();
//! db.set_item("balance", Value::Int(100));
//! db.define_query("balance", QueryDef::new(0, Query::item("balance")));
//!
//! let mut adb = ActiveDatabase::new(db);
//!
//! // Trigger: the balance dropped below half of what it was some time in
//! // the past — a genuinely temporal condition.
//! adb.add_rule(Rule::trigger(
//!     "halved",
//!     parse_formula("[x := balance()] previously(balance() >= 2 * x)").unwrap(),
//!     Action::Notify,
//! ))
//! .unwrap();
//!
//! adb.advance_clock(1).unwrap();
//! adb.update([WriteOp::SetItem { item: "balance".into(), value: Value::Int(40) }])
//!     .unwrap();
//! assert_eq!(adb.firings().len(), 1);
//! ```

#![forbid(unsafe_code)]

pub use tdb_analysis as analysis;
pub use tdb_baseline as baseline;
pub use tdb_core as core;
pub use tdb_engine as engine;
pub use tdb_obs as obs;
pub use tdb_ptl as ptl;
pub use tdb_relation as relation;
pub use tdb_storage as storage;

/// The most commonly used items, for `use temporal_adb::prelude::*`.
pub mod prelude {
    pub use tdb_analysis::{certify, Boundedness, LintLevel, Report};
    pub use tdb_core::{
        Action, ActionOp, ActiveDatabase, EvalConfig, FiringRecord, IncrementalEvaluator,
        ManagerConfig, Program, Rule,
    };
    pub use tdb_engine::{Engine, Event, EventSet, History, VtEngine, WriteOp};
    pub use tdb_ptl::{parse_formula, parse_term, Formula, Term};
    pub use tdb_relation::{
        parse_query, tuple, Database, Query, QueryDef, Relation, Schema, Timestamp, Tuple, Value,
    };
}
