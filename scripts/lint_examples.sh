#!/usr/bin/env bash
# Runs the tdb-lint binary over every examples/lint/*.rules file and diffs
# the text report against its checked-in .expected snapshot. Used by the
# `lint-examples` CI job; run locally from the repo root:
#
#   scripts/lint_examples.sh
#
# Regenerate snapshots after an intentional output change with:
#
#   TDB_UPDATE_SNAPSHOTS=1 cargo test --test lint_snapshots
#
# Note: tdb-lint exits 1 on deny-level findings (quickstart, login_audit);
# that is expected — only an output/snapshot divergence fails this script.
set -u

cargo build --release -p tdb-analysis --bin tdb-lint || exit 2

fail=0
for rules in examples/lint/*.rules; do
    expected="${rules%.rules}.expected"
    if [ ! -f "$expected" ]; then
        echo "MISSING SNAPSHOT: $expected" >&2
        fail=1
        continue
    fi
    actual="$(./target/release/tdb-lint "$rules")"
    if ! diff -u "$expected" <(printf '%s\n' "$actual"); then
        echo "MISMATCH: $rules diverged from $expected" >&2
        fail=1
    else
        echo "ok: $rules"
    fi
done
exit $fail
