#!/usr/bin/env bash
# Runs the tdb-lint binary over every examples/lint/*.rules file and diffs
# the text report against its checked-in .expected snapshot. Used by the
# `lint-examples` CI job; run locally from the repo root:
#
#   scripts/lint_examples.sh
#
# Regenerate snapshots after an intentional output change with:
#
#   TDB_UPDATE_SNAPSHOTS=1 cargo test --test lint_snapshots
#
# Note: tdb-lint exits 1 on deny-level findings (quickstart, login_audit);
# that is expected — only an output/snapshot divergence fails this script.
set -u

cargo build --release -p tdb-analysis --bin tdb-lint || exit 2

fail=0
for rules in examples/lint/*.rules; do
    expected="${rules%.rules}.expected"
    if [ ! -f "$expected" ]; then
        echo "MISSING SNAPSHOT: $expected" >&2
        fail=1
        continue
    fi
    actual="$(./target/release/tdb-lint "$rules")"
    if ! diff -u "$expected" <(printf '%s\n' "$actual"); then
        echo "MISMATCH: $rules diverged from $expected" >&2
        fail=1
    else
        echo "ok: $rules"
    fi
done

# The batch-safety SARIF view over the batch examples has a checked-in
# golden; CI uploads the same log as an artifact (sarif_out, below).
sarif_golden="examples/lint/batch_safety.sarif.expected"
sarif_out="${TDB_SARIF_OUT:-}"
actual_sarif="$(./target/release/tdb-lint --batch-safety --sarif \
    examples/lint/batch_notify_only.rules \
    examples/lint/batch_stratified.rules \
    examples/lint/batch_opaque.rules)"
if ! diff -u "$sarif_golden" <(printf '%s\n' "$actual_sarif"); then
    echo "MISMATCH: --batch-safety --sarif diverged from $sarif_golden" >&2
    fail=1
else
    echo "ok: batch-safety SARIF golden"
fi
if [ -n "$sarif_out" ]; then
    printf '%s\n' "$actual_sarif" > "$sarif_out"
fi
exit $fail
