#!/usr/bin/env python3
"""Schema/correctness check for BENCH_E21.json (watermarked out-of-order
ingestion over the valid-time layer).

Every bar here is structural — the run is single-threaded and in-library,
so no host-speed floors are needed:

* arrival-independence: every cell's definite log is byte-identical to an
  in-order oracle replay of the same history, and because the generator
  fixes the value history across cells, the confirmed count is the same
  number in every row of the sweep;
* stream soundness: once the final flush passes the watermark over every
  ingested instant, each tentative announcement has settled to exactly one
  confirmation or retraction (tentative == confirmed + retracted), and an
  in-order cell never retracts;
* O(Δ) memory: the peak retained history is a small constant over Δ and
  does not scale with the event count;
* bounded latency: the mean valid-instant-to-confirmation lag sits in
  [0, Δ + 2] (the watermark must pass *strictly* beyond an instant to
  confirm it, hence the +2 slack on integer ticks)."""
import json
import sys

doc = json.load(open(sys.argv[1] if len(sys.argv) > 1 else "BENCH_E21.json"))
assert doc.get("experiment") == "e21", "not an E21 result"
rows = doc["rows"]
assert rows, "no rows"

deltas = sorted({r["max_delay"] for r in rows})
rates = sorted({r["rate_permille"] for r in rows})
assert len(deltas) >= 2 and len(rates) >= 2, \
    f"sweep too small: deltas={deltas} rates={rates}"

confirmed_counts = {r["confirmed"] for r in rows}
for r in rows:
    cell = f"Δ={r['max_delay']} rate={r['rate_permille']}‰"
    # --- arrival-independence ------------------------------------------
    assert r["oracle_identical"], \
        f"{cell}: definite log diverged from the in-order oracle"
    # --- stream soundness ----------------------------------------------
    assert r["tentative"] == r["confirmed"] + r["retracted"], \
        (f"{cell}: {r['tentative']} tentative != "
         f"{r['confirmed']} confirmed + {r['retracted']} retracted")
    if r["rate_permille"] == 0 or r["max_delay"] == 0:
        assert r["disordered"] == 0, f"{cell}: in-order cell reports lateness"
        assert r["retracted"] == 0, f"{cell}: in-order cell retracted a firing"
    elif r["disordered"] > 0:
        assert r["retracted"] > 0, \
            f"{cell}: {r['disordered']} late arrivals but nothing retracted"
    # --- O(Δ) memory ---------------------------------------------------
    assert r["max_live_states"] <= r["max_delay"] + 8, \
        (f"{cell}: {r['max_live_states']} live states exceeds "
         f"Δ + 8 = {r['max_delay'] + 8}")
    assert r["max_live_states"] * 4 <= r["events"], \
        f"{cell}: retained history scales with the event count"
    # --- bounded confirmation latency ----------------------------------
    assert 0.0 <= r["mean_confirm_lag"] <= r["max_delay"] + 2, \
        (f"{cell}: mean confirm lag {r['mean_confirm_lag']:.2f} outside "
         f"[0, Δ + 2]")

# The generator holds the value history fixed across cells, so the
# definite stream — already oracle-checked per cell — must also be the
# same *count* everywhere in the sweep.
assert len(confirmed_counts) == 1, \
    f"confirmed count varies across cells: {sorted(confirmed_counts)}"

n_rows = len(rows)
max_rate = max(rates)
retr = sum(r["retracted"] for r in rows)
print(f"check_bench_e21: OK ({n_rows} cells, Δ∈{deltas}, rates∈{rates}‰; "
      f"definite log oracle-identical everywhere "
      f"(confirmed={confirmed_counts.pop()} in every cell); "
      f"{retr} retractions all matched by confirmations; "
      f"peak live states ≤ Δ+8 in every cell)")
