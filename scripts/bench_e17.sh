#!/usr/bin/env bash
# Runs the E17 server shard-scaling experiment (1/2/4/8 tenants, one per
# pool worker, driven concurrently over real TCP) and leaves a
# machine-readable copy in BENCH_E17.json at the repo root.
#
# On a single-CPU host every multi-shard row is host-limited: the JSON
# carries `host_cpus` and a per-row `host_limited` flag, and the
# acceptance bar there is "no degradation + identical firings", not
# speedup. See EXPERIMENTS.md E17.
#
# Usage:
#   scripts/bench_e17.sh            # full run (1500 states per tenant)
#   scripts/bench_e17.sh --quick    # smaller run for smoke tests / CI
set -euo pipefail

cd "$(dirname "$0")/.."

cargo build --release -p tdb-bench

./target/release/harness e17 "$@"

if [[ -f BENCH_E17.json ]]; then
    echo "== BENCH_E17.json =="
    cat BENCH_E17.json
    python3 - <<'EOF'
import json
doc = json.load(open("BENCH_E17.json"))
rows = doc["rows"]
assert len(rows) == 4, f"expected 4 rows, got {len(rows)}"
assert all(r["firings_ok"] for r in rows), "a tenant diverged from the library oracle"
base = rows[0]["agg_states_per_sec"]
for r in rows[1:]:
    # Host-limited rows must not collapse; unconstrained rows must scale.
    floor = 0.5 if r["host_limited"] else 0.8 * min(r["shards"], doc["host_cpus"])
    ratio = r["agg_states_per_sec"] / base
    assert ratio >= floor, f"shards={r['shards']}: {ratio:.2f}x < floor {floor:.2f}x"
print(f"E17 OK: host_cpus={doc['host_cpus']}, "
      + ", ".join(f"{r['shards']}sh={r['agg_states_per_sec']:.0f}/s" for r in rows))
EOF
fi
