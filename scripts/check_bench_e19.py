#!/usr/bin/env python3
"""Schema/correctness check for BENCH_E19.json: certified eager batching
must be byte-identical to the per-op baseline for EVERY certificate
class, and the exact / stratified classes must retain most of the
always-fused group-commit speedup.

The retention floor is 0.6 rather than the ~0.85+ these classes reach in
steady state: each retention value is a ratio of two independently timed
runs on a shared host, so fsync jitter compounds (a slow eager rep over a
lucky fused rep). The experiment table documents the typical ~0.85-1.0
retention; the check enforces the conservative floor so the CI job stays
meaningful on noisy 1-CPU runners. cascade-required has no floor — its
per-op drains are the documented price of exactness — but identity still
has to hold."""
import json
import sys

FIELDS = {"catalog", "certificate", "batch", "eager_us_per_state",
          "eager_speedup", "fused_speedup", "retention",
          "identical_firings"}
MIN_RETENTION = 0.6
FLOOR_CATALOGS = {"exact", "stratified"}

doc = json.load(open(sys.argv[1] if len(sys.argv) > 1 else "BENCH_E19.json"))
rows = doc["rows"]
assert doc["experiment"] == "e19" and rows, "not an E19 result"
seen = set()
for row in rows:
    missing = FIELDS - row.keys()
    assert not missing, f"row missing fields: {sorted(missing)}"
    assert row["identical_firings"] is True, f"firings diverged: {row}"
    seen.add(row["catalog"])
    if row["catalog"] in FLOOR_CATALOGS:
        assert row["retention"] >= MIN_RETENTION, \
            (f"{row['catalog']} batch={row['batch']} retains only "
             f"{row['retention']:.2f} of the fused speedup "
             f"(floor {MIN_RETENTION})")
assert seen == {"exact", "stratified", "cascade-required"}, \
    f"catalog classes missing: {seen}"
best = {c: max(r["retention"] for r in rows if r["catalog"] == c)
        for c in sorted(seen)}
print("check_bench_e19: OK (" + ", ".join(
    f"{c} retention {v:.2f}" for c, v in best.items()) +
    "; firings identical everywhere)")
