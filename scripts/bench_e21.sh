#!/usr/bin/env bash
# Runs the E21 watermarked-ingestion experiment and leaves a
# machine-readable copy in BENCH_E21.json at the repo root.
#
# E21 feeds a seeded Δ-bounded out-of-order event stream (disorder rates
# 0/200/800‰, Δ ∈ {0, 5, 50}) through the streaming valid-time facade and
# measures the tentative/confirmed/retracted stream, the tentative-to-
# definite confirmation lag, and the peak retained history. The definite
# log of every cell is compared byte-for-byte against an in-order oracle
# replay of the same history; scripts/check_bench_e21.py asserts the
# correctness and O(Δ)-memory bars.
#
# All timings are single-threaded and in-library (no server), so the
# checker's bars are structural, not host-speed floors. See
# EXPERIMENTS.md E21.
#
# Usage:
#   scripts/bench_e21.sh            # full run (20k events per cell)
#   scripts/bench_e21.sh --quick    # 2k events, for smoke tests / CI
set -euo pipefail

cd "$(dirname "$0")/.."

cargo build --release -p tdb-bench

./target/release/harness e21 "$@"

if [[ -f BENCH_E21.json ]]; then
    echo "== BENCH_E21.json =="
    cat BENCH_E21.json
    python3 scripts/check_bench_e21.py BENCH_E21.json
fi
