#!/usr/bin/env python3
"""Schema/correctness check for BENCH_E15.json: every row must carry the
expected fields, and delta dispatch must never change the firing sequence."""
import json
import sys

FIELDS = {"rules", "relations", "delta_dispatch", "us_per_state", "states_per_sec",
          "speedup_vs_exhaustive", "identical_firings", "evaluations", "sparse_advances"}

doc = json.load(open(sys.argv[1] if len(sys.argv) > 1 else "BENCH_E15.json"))
rows = doc["rows"]
assert doc["experiment"] == "e15" and rows, "not an E15 result"
for row in rows:
    missing = FIELDS - row.keys()
    assert not missing, f"row missing fields: {sorted(missing)}"
    assert row["identical_firings"] is True, f"firings diverged: {row}"
assert any(r["delta_dispatch"] and r["sparse_advances"] > 0 for r in rows), "sparse path never ran"
print(f"check_bench_e15: OK ({len(rows)} rows, firings identical)")
