#!/usr/bin/env bash
# Runs the E19 certified-batching experiment (durable ingest under the
# batch-safety certificate: per-op baseline vs always-fused vs certified
# eager batching, per certificate class) and leaves a machine-readable
# copy in BENCH_E19.json at the repo root.
#
# Usage:
#   scripts/bench_e19.sh            # full run (3000 states)
#   scripts/bench_e19.sh --quick    # smaller run for smoke tests / CI
set -euo pipefail

cd "$(dirname "$0")/.."

cargo build --release -p tdb-bench

./target/release/harness e19 "$@"

if [[ -f BENCH_E19.json ]]; then
    echo "== BENCH_E19.json =="
    cat BENCH_E19.json
    python3 scripts/check_bench_e19.py BENCH_E19.json
fi
