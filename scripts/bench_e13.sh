#!/usr/bin/env bash
# Runs the E13 parallel-dispatch sweep (rules × workers) and leaves a
# machine-readable copy in BENCH_E13.json at the repo root.
#
# Usage:
#   scripts/bench_e13.sh            # full sweep (10/100/1000 rules)
#   scripts/bench_e13.sh --quick    # smaller sweep for smoke runs
set -euo pipefail

cd "$(dirname "$0")/.."

cargo build --release -p tdb-bench

./target/release/harness e13 "$@"

if [[ -f BENCH_E13.json ]]; then
    echo "== BENCH_E13.json =="
    cat BENCH_E13.json
fi
