#!/usr/bin/env python3
"""Schema/correctness check for BENCH_E18.json: every row must carry the
expected fields, batching must never change the firing sequence, and the
largest batch size must clear the group-commit throughput floor.

The floor is 3x rather than the 10x the fsync-bound regime reaches on
real durable media: CI hosts (and fast local NVMe with an effective page
cache) serve an fsync in ~100us, so the per-op baseline is far cheaper
there than on commodity disks and the measured ratio is host-limited.
The experiment's small-catalog rows document the fsync-bound regime; the
check only enforces the conservative floor so the job stays meaningful
on 1-CPU runners."""
import json
import sys

FIELDS = {"rules", "batch", "us_per_state", "states_per_sec",
          "speedup_vs_per_op", "identical_firings"}
MIN_SPEEDUP = 3.0

doc = json.load(open(sys.argv[1] if len(sys.argv) > 1 else "BENCH_E18.json"))
rows = doc["rows"]
assert doc["experiment"] == "e18" and rows, "not an E18 result"
for row in rows:
    missing = FIELDS - row.keys()
    assert not missing, f"row missing fields: {sorted(missing)}"
    assert row["identical_firings"] is True, f"firings diverged: {row}"
batched = [r for r in rows if r["batch"] > 0]
assert batched, "no batched rows"
best = max(r["speedup_vs_per_op"] for r in batched)
assert best >= MIN_SPEEDUP, \
    f"group commit speedup {best:.2f}x below the {MIN_SPEEDUP}x floor"
print(f"check_bench_e18: OK ({len(rows)} rows, firings identical, "
      f"best speedup {best:.2f}x)")
