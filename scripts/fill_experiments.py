"""Fills EXPERIMENTS.md {{EN}} placeholders from harness_output.txt."""
import re, sys

out = open("harness_output.txt").read()
md = open("EXPERIMENTS.md").read()

# Split harness output into tables keyed by experiment id.
tables = {}
current = None
for line in out.splitlines():
    m = re.match(r"== (E\d+):", line)
    if m:
        current = m.group(1)
        tables[current] = [line]
    elif current and line.strip():
        tables[current].append(line)
    elif current and not line.strip():
        current = None

missing = []
for key, lines in tables.items():
    placeholder = "{{" + key + "}}"
    if placeholder in md:
        md = md.replace(placeholder, "\n".join(lines))
    else:
        missing.append(key)

left = re.findall(r"\{\{E\d+\}\}", md)
open("EXPERIMENTS.md", "w").write(md)
print("filled:", sorted(tables.keys()), "unfilled:", left, "no-slot:", missing)
