#!/usr/bin/env python3
"""Schema/correctness check for BENCH_E20.json (readiness poller vs
thread-per-connection, idle-shard re-pinning, adaptive coalescing).

Correctness bars are hard everywhere: every scaling and coalesce row must
report firings byte-identical to the single-threaded library oracle, and
the rebalance=on skew row must actually re-pin at least one tenant.

Performance bars follow the E13/E17 host-limited precedent: ratios of two
independently timed runs on a shared (often 1-CPU) runner compound
scheduler jitter, so the floors are conservative. On a 1-CPU host the
poller only has to avoid collapse (0.5x of the thread baseline); on real
parallel hardware it must hold 0.75x or better while using a small
constant number of connection threads instead of one per socket. The
adaptive coalescer must stay within 0.5x / 0.8x (1-CPU / multi-CPU) of
the best fixed window it is replacing."""
import json
import sys

doc = json.load(open(sys.argv[1] if len(sys.argv) > 1 else "BENCH_E20.json"))
assert doc.get("experiment") == "e20", "not an E20 result"
cpus = doc["host_cpus"]
host_limited = cpus <= 1

# --- E20a: connection scaling -------------------------------------------
scaling = doc["scaling"]
assert scaling, "no scaling rows"
assert all(r["firings_ok"] for r in scaling), \
    "a connection diverged from the library oracle"
by_conns = {}
for r in scaling:
    by_conns.setdefault(r["conns"], {})[r["mode"]] = r
floor = 0.5 if host_limited else 0.75
for conns, modes in sorted(by_conns.items()):
    assert {"thread", "poll"} <= modes.keys(), \
        f"conns={conns}: need both modes, got {sorted(modes)}"
    t, p = modes["thread"], modes["poll"]
    ratio = p["agg_states_per_sec"] / t["agg_states_per_sec"]
    assert ratio >= floor, \
        (f"conns={conns}: poller at {ratio:.2f}x of thread baseline "
         f"(floor {floor:.2f}, host_cpus={cpus})")
    # The point of the poller: O(1) connection threads, not one per socket.
    assert p["conn_threads"] < t["conn_threads"], \
        f"conns={conns}: poller uses {p['conn_threads']} conn threads, " \
        f"thread mode {t['conn_threads']}"
    if conns >= 8:
        assert p["conn_threads"] * 4 <= t["conn_threads"], \
            f"conns={conns}: poller thread count is not a small fraction"

# --- E20b: skewed load / re-pinning -------------------------------------
skew = {r["rebalance"]: r for r in doc["skew"]}
assert set(skew) == {True, False}, f"skew rows: {sorted(skew)}"
assert skew[False]["repins"] == 0, "re-pinning fired with rebalance off"
assert skew[True]["repins"] >= 1, \
    "rebalance on but no tenant was ever re-pinned off the hot worker"
for r in skew.values():
    assert r["cold_states"] > 0 and r["hot_states"] > 0, f"starved row: {r}"
if not host_limited:
    # With real cores, moving idle shards off the hot worker must not make
    # the cold tenants slower than leaving them stranded.
    ratio = (skew[True]["cold_states_per_sec"]
             / skew[False]["cold_states_per_sec"])
    assert ratio >= 0.8, f"re-pinning degraded cold tenants to {ratio:.2f}x"

# --- E20c: adaptive coalescing ------------------------------------------
coalesce = doc["coalesce"]
assert all(r["firings_ok"] for r in coalesce), \
    "a coalesce row lost or duplicated firings"
by_window = {r["window"]: r for r in coalesce}
assert "adaptive" in by_window and "none" in by_window, \
    f"coalesce windows: {sorted(by_window)}"
fixed = [r for r in coalesce if r["window"] != "adaptive"]
best_fixed = max(r["commits_per_sec"] for r in fixed)
floor = 0.5 if host_limited else 0.8
ratio = by_window["adaptive"]["commits_per_sec"] / best_fixed
assert ratio >= floor, \
    (f"adaptive window at {ratio:.2f}x of the best fixed window "
     f"(floor {floor:.2f}, host_cpus={cpus})")

print(f"check_bench_e20: OK (host_cpus={cpus}"
      + (", host-limited floors" if host_limited else "")
      + "; scaling "
      + ", ".join(
          f"{c}conns poll/thread "
          f"{m['poll']['agg_states_per_sec'] / m['thread']['agg_states_per_sec']:.2f}x"
          for c, m in sorted(by_conns.items()))
      + f"; repins={skew[True]['repins']}"
      + f"; adaptive {ratio:.2f}x of best fixed window"
      + "; firings identical everywhere)")
