#!/usr/bin/env bash
# Runs the E18 group-commit experiment (durable ingest throughput: per-op
# fsync'd commits vs batched commit_batch groups) and leaves a
# machine-readable copy in BENCH_E18.json at the repo root.
#
# Usage:
#   scripts/bench_e18.sh            # full run (100 and 1000 rules / 100 relations)
#   scripts/bench_e18.sh --quick    # smaller run for smoke tests / CI
set -euo pipefail

cd "$(dirname "$0")/.."

cargo build --release -p tdb-bench

./target/release/harness e18 "$@"

if [[ -f BENCH_E18.json ]]; then
    echo "== BENCH_E18.json =="
    cat BENCH_E18.json
    python3 scripts/check_bench_e18.py BENCH_E18.json
fi
