#!/usr/bin/env python3
"""Checks the E16 observability results.

Usage: check_metrics.py [BENCH_E16.json] [BENCH_E16_METRICS.json]

BENCH_E16.json (harness table): schema check, instrumentation must not
change the firing sequence, and the enabled row must record a healthy
spread of metric families (>= 12 per the PR-5 acceptance bar).

BENCH_E16_METRICS.json (global registry snapshot, written by the harness's
--metrics-json flag): structural check plus cross-layer coverage — the
free-function instrumentation sites (engine states, parteval memo, readset
fan-out, relation deltas) must all have recorded.
"""
import json
import sys

FIELDS = {"rules", "relations", "obs_enabled", "us_per_state", "states_per_sec",
          "overhead_pct", "identical_firings", "distinct_metrics"}

# Metric families the harness run must touch, one per instrumented layer
# that records through free functions into the global registry.
GLOBAL_COVERAGE = {
    "tdb_states_total",           # engine
    "tdb_atom_memo_lookups_total",  # core/parteval
    "tdb_readset_affected_marks_total",  # core/readset
    "tdb_delta_touched_names_total",     # relation
}

table_path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_E16.json"
doc = json.load(open(table_path))
rows = doc["rows"]
assert doc["experiment"] == "e16" and rows, "not an E16 result"
for row in rows:
    missing = FIELDS - row.keys()
    assert not missing, f"row missing fields: {sorted(missing)}"
    assert row["identical_firings"] is True, f"firings diverged: {row}"
on_rows = [r for r in rows if r["obs_enabled"]]
assert on_rows, "no obs-enabled row"
for row in on_rows:
    assert row["distinct_metrics"] >= 12, \
        f"expected >= 12 distinct metric families, got {row['distinct_metrics']}"
print(f"check_metrics: table OK ({len(rows)} rows, firings identical, "
      f"{on_rows[0]['distinct_metrics']} families recorded)")

if len(sys.argv) > 2:
    snap = json.load(open(sys.argv[2]))
    for section in ("counters", "gauges", "histograms"):
        assert section in snap, f"snapshot missing section {section!r}"
    recorded = set(snap["counters"]) | set(snap["gauges"]) | set(snap["histograms"])
    missing = GLOBAL_COVERAGE - recorded
    assert not missing, f"layers missing from global snapshot: {sorted(missing)}"
    for hist in snap["histograms"].values():
        total = sum(n for _, n in hist["buckets"])
        assert total == hist["count"], f"histogram buckets disagree with count: {hist}"
    print(f"check_metrics: snapshot OK ({len(recorded)} global families, "
          "all instrumented layers present)")
