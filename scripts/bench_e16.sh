#!/usr/bin/env bash
# Runs the E16 observability-overhead experiment (obs off vs a recording
# registry over the E15 sparse-update workload) and leaves a
# machine-readable copy in BENCH_E16.json at the repo root, plus a full
# metrics snapshot in BENCH_E16_METRICS.json.
#
# Usage:
#   scripts/bench_e16.sh            # full run (1000 rules / 100 relations)
#   scripts/bench_e16.sh --quick    # smaller run for smoke tests / CI
set -euo pipefail

cd "$(dirname "$0")/.."

cargo build --release -p tdb-bench

./target/release/harness e16 --metrics-json BENCH_E16_METRICS.json "$@"

if [[ -f BENCH_E16.json ]]; then
    echo "== BENCH_E16.json =="
    cat BENCH_E16.json
    python3 scripts/check_metrics.py BENCH_E16.json BENCH_E16_METRICS.json
fi
