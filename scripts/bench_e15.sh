#!/usr/bin/env bash
# Runs the E15 delta-dispatch experiment (sparse updates over many rules)
# and leaves a machine-readable copy in BENCH_E15.json at the repo root.
#
# Usage:
#   scripts/bench_e15.sh            # full run (1000 rules / 100 relations)
#   scripts/bench_e15.sh --quick    # smaller run for smoke tests / CI
set -euo pipefail

cd "$(dirname "$0")/.."

cargo build --release -p tdb-bench

./target/release/harness e15 "$@"

if [[ -f BENCH_E15.json ]]; then
    echo "== BENCH_E15.json =="
    cat BENCH_E15.json
    python3 scripts/check_bench_e15.py BENCH_E15.json
fi
