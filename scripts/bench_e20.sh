#!/usr/bin/env bash
# Runs the E20 connection-layer experiment and leaves a machine-readable
# copy in BENCH_E20.json at the repo root:
#
#   E20a  thread-per-connection vs readiness poller at 16/64/256
#         concurrent committing connections (one tenant each), firings
#         checked byte-for-byte against the single-threaded library oracle
#   E20b  skewed load (1 hot + 7 cold tenants on 2 workers) with
#         idle-shard re-pinning off vs on
#   E20c  fixed commit-coalescing windows vs the adaptive fsync-latency
#         driven window on a durable tenant
#
# On a single-CPU host every concurrency row is host-limited: the JSON
# carries `host_cpus` and scripts/check_bench_e20.py drops to the
# no-collapse floors (E13/E17 precedent) instead of demanding speedup.
# See EXPERIMENTS.md E20.
#
# Usage:
#   scripts/bench_e20.sh            # full run
#   scripts/bench_e20.sh --quick    # smaller run for smoke tests / CI
set -euo pipefail

cd "$(dirname "$0")/.."

cargo build --release -p tdb-bench

./target/release/harness e20 "$@"

if [[ -f BENCH_E20.json ]]; then
    echo "== BENCH_E20.json =="
    cat BENCH_E20.json
    python3 scripts/check_bench_e20.py BENCH_E20.json
fi
