//! Property tests for the residual-formula algebra: the smart constructors
//! preserve semantics under substitution, and the Section 5 pruning is
//! sound for monotone clock substitutions.

use std::collections::BTreeSet;
use std::sync::Arc;

use proptest::prelude::*;

use temporal_adb::core::residual::{
    prune_time, rand, rcmp, rnot, ror, solve, subst_env, Env, PTerm, Residual,
};
use temporal_adb::relation::{ArithOp, CmpOp, Timestamp, Value};

/// A small symbolic term over variables x, y and the time variable t.
fn pterm_strategy() -> impl Strategy<Value = Arc<PTerm>> {
    let leaf = prop_oneof![
        (-20i64..20).prop_map(PTerm::val),
        Just(PTerm::var("x")),
        Just(PTerm::var("y")),
        Just(PTerm::var("t")),
    ];
    leaf.prop_recursive(2, 8, 2, |inner| {
        (inner.clone(), inner.clone(), 0usize..3).prop_map(|(a, b, op)| {
            let op = [ArithOp::Add, ArithOp::Sub, ArithOp::Mul][op];
            PTerm::arith(op, a, b).unwrap_or_else(|_| PTerm::val(0i64))
        })
    })
}

fn cmp_strategy() -> impl Strategy<Value = CmpOp> {
    prop_oneof![
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
        Just(CmpOp::Ge),
        Just(CmpOp::Gt),
    ]
}

fn residual_strategy() -> impl Strategy<Value = Arc<Residual>> {
    let atom = (cmp_strategy(), pterm_strategy(), pterm_strategy()).prop_map(|(op, a, b)| {
        rcmp(op, a, b).unwrap_or_else(|_| temporal_adb::core::residual::rfalse())
    });
    atom.prop_recursive(3, 16, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(rnot),
            proptest::collection::vec(inner.clone(), 0..3).prop_map(rand),
            proptest::collection::vec(inner.clone(), 0..3).prop_map(ror),
        ]
    })
}

fn env(x: i64, y: i64, t: i64) -> Env {
    let mut e = Env::new();
    e.insert("x".into(), Value::Int(x));
    e.insert("y".into(), Value::Int(y));
    e.insert("t".into(), Value::Time(Timestamp(t)));
    e
}

/// Ground truth: evaluate a residual under a full environment by
/// substituting everything (the constructors fold ground formulas).
fn eval_full(r: &Arc<Residual>, e: &Env) -> Option<bool> {
    match *subst_env(r, e).ok()? {
        Residual::True => Some(true),
        Residual::False => Some(false),
        _ => None,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Substitution in any order gives the same verdict.
    #[test]
    fn substitution_order_is_irrelevant(
        r in residual_strategy(),
        x in -20i64..20, y in -20i64..20, t in 0i64..40,
    ) {
        let full = env(x, y, t);
        let via_x_first = subst_env(&r, &full).ok().map(|s| (*s).clone());
        // Reverse order.
        let mut rev = Env::new();
        for (k, v) in full.iter().rev() {
            rev.insert(k.clone(), v.clone());
        }
        let via_rev = subst_env(&r, &rev).ok().map(|s| (*s).clone());
        prop_assert_eq!(via_x_first, via_rev);
    }

    /// Every binding returned by `solve` actually satisfies the residual.
    #[test]
    fn solve_is_sound(r in residual_strategy()) {
        if let Ok(solutions) = solve(&r) {
            for env in solutions {
                // Extend with arbitrary values for unmentioned variables:
                // the solution must hold regardless.
                let mut full = env.clone();
                for v in ["x", "y", "t"] {
                    full.entry(v.into()).or_insert(Value::Int(7));
                }
                prop_assert_eq!(
                    eval_full(&r, &full),
                    Some(true),
                    "solution {:?} does not satisfy {}",
                    env, r
                );
            }
        }
    }

    /// Pruning with time threshold `now` preserves the verdict for every
    /// substitution whose t is strictly greater than `now` (which is how
    /// the evaluator uses it).
    #[test]
    fn pruning_is_sound_for_future_clocks(
        r in residual_strategy(),
        x in -20i64..20, y in -20i64..20,
        now in 0i64..30,
        ahead in 1i64..10,
    ) {
        let tv: BTreeSet<String> = ["t".to_string()].into();
        let pruned = prune_time(&r, Timestamp(now), &tv);
        let e = env(x, y, now + ahead);
        prop_assert_eq!(
            eval_full(&r, &e),
            eval_full(&pruned, &e),
            "pruned {} vs original {} at t={}",
            pruned, r, now + ahead
        );
    }

    /// The boolean constructors satisfy De Morgan-style laws under full
    /// substitution.
    #[test]
    fn constructors_respect_boolean_semantics(
        a in residual_strategy(),
        b in residual_strategy(),
        x in -20i64..20, y in -20i64..20, t in 0i64..40,
    ) {
        let e = env(x, y, t);
        let (va, vb) = (eval_full(&a, &e), eval_full(&b, &e));
        if let (Some(va), Some(vb)) = (va, vb) {
            prop_assert_eq!(eval_full(&rand([a.clone(), b.clone()]), &e), Some(va && vb));
            prop_assert_eq!(eval_full(&ror([a.clone(), b.clone()]), &e), Some(va || vb));
            prop_assert_eq!(eval_full(&rnot(a.clone()), &e), Some(!va));
        }
    }
}

// ===== hash-consing: structurally equal residuals share one node =============

mod interning {
    use std::sync::Arc;

    use proptest::prelude::*;
    use temporal_adb::core::residual::{intern_arc, rand, rcmp, rnot, ror, PTerm, Residual};
    use temporal_adb::relation::CmpOp;

    /// A symbolic comparison that cannot fold to a constant.
    fn atom(var: &str, k: i64) -> Arc<Residual> {
        rcmp(CmpOp::Gt, PTerm::var(var), PTerm::val(k)).unwrap()
    }

    #[test]
    fn equal_constructions_are_pointer_equal() {
        let a1 = atom("x", 3);
        let a2 = atom("x", 3);
        assert!(Arc::ptr_eq(&a1, &a2), "equal atoms must share one node");
        assert!(!Arc::ptr_eq(&a1, &atom("x", 4)));
        assert!(!Arc::ptr_eq(&a1, &atom("y", 3)));

        let c1 = rand([atom("x", 3), atom("y", 1)]);
        let c2 = rand([atom("y", 1), atom("x", 3)]); // rand sorts children
        assert!(Arc::ptr_eq(&c1, &c2), "And nodes must unify");

        let d1 = ror([c1.clone(), rnot(atom("x", 0))]);
        let d2 = ror([rnot(atom("x", 0)), c2]);
        assert!(Arc::ptr_eq(&d1, &d2), "Or nodes must unify");
    }

    #[test]
    fn foreign_trees_reintern_to_canonical_nodes() {
        // x > y is not linearizable, so the constructor keeps a Cmp node
        // and we can reproduce the exact structure by hand.
        let canonical = rnot(rcmp(CmpOp::Gt, PTerm::var("x"), PTerm::var("y")).unwrap());
        let foreign = Arc::new(Residual::Not(Arc::new(Residual::Cmp(
            CmpOp::Gt,
            PTerm::var("x"),
            PTerm::var("y"),
        ))));
        assert!(!Arc::ptr_eq(&canonical, &foreign));
        let reinterned = intern_arc(&foreign);
        assert!(
            Arc::ptr_eq(&canonical, &reinterned),
            "intern_arc must map a foreign copy onto the canonical node"
        );
        // Idempotent and O(1) on already-canonical nodes.
        assert!(Arc::ptr_eq(&reinterned, &intern_arc(&reinterned)));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Any residual built by the constructors re-interns to itself:
        /// the arena holds exactly one node per structure.
        #[test]
        fn constructed_residuals_are_canonical(r in super::residual_strategy()) {
            prop_assert!(Arc::ptr_eq(&r, &intern_arc(&r)));
        }
    }
}
