//! Spot checks tying implementation details back to specific sentences of
//! the paper.

use temporal_adb::core::ManagerConfig;
use temporal_adb::prelude::*;

/// "Two or more events may occur simultaneously, but if so, then a single
/// new database state is added to the history" — a condition over two
/// simultaneous events is satisfiable at one state.
#[test]
fn simultaneous_events_share_a_state() {
    let mut adb = ActiveDatabase::new(Database::new());
    adb.add_rule(Rule::trigger(
        "both",
        parse_formula("@fire_alarm and @door_open").unwrap(),
        Action::Notify,
    ))
    .unwrap();
    adb.advance_clock(1).unwrap();
    // Sequential events never co-occur…
    adb.emit(Event::simple("fire_alarm")).unwrap();
    adb.emit(Event::simple("door_open")).unwrap();
    assert!(adb.firings().is_empty());
    // …but one state may carry both.
    adb.emit_all(EventSet::of([
        Event::simple("fire_alarm"),
        Event::simple("door_open"),
    ]))
    .unwrap();
    assert_eq!(adb.firings().len(), 1);
}

/// "We assume that the value of this time stamp is given by a data-item
/// called time" — `time` is an ordinary item readable by queries.
#[test]
fn time_is_a_queryable_data_item() {
    let mut db = Database::new();
    db.define_query(
        "now",
        QueryDef::new(0, Query::item(temporal_adb::engine::TIME_ITEM)),
    );
    let mut adb = ActiveDatabase::new(db);
    adb.add_rule(Rule::trigger(
        "at_nine",
        parse_formula("now() = 540").unwrap(),
        Action::Notify,
    ))
    .unwrap();
    adb.advance_clock(539).unwrap();
    adb.tick().unwrap();
    assert!(adb.firings().is_empty());
    adb.advance_clock(1).unwrap();
    adb.tick().unwrap(); // now = 540
    assert_eq!(adb.firings().len(), 1);
}

/// The SHARP-INCREASE shape the paper calls natural-but-unsafe in
/// Chomicki's logic: a free stock name whose price is compared across two
/// instants. Safe here because the membership generator range-restricts it.
#[test]
fn sharp_increase_with_free_stock_variable() {
    let mut db = Database::new();
    db.create_relation(
        "STOCK",
        Relation::empty(Schema::untyped(&["name", "price"])),
    )
    .unwrap();
    db.define_query(
        "price",
        QueryDef::new(
            1,
            parse_query("select price from STOCK where name = $0").unwrap(),
        ),
    );
    db.define_query(
        "names",
        QueryDef::new(0, parse_query("select name from STOCK").unwrap()),
    );
    let mut adb = ActiveDatabase::new(db);
    // Some listed stock tripled since the previous state: the same term
    // price(x) denotes different instants inside and outside Lasttime —
    // the incremental evaluator snapshots it per state.
    adb.add_rule(Rule::trigger(
        "sharp_increase",
        parse_formula("x in names() and lasttime(price(x) * 3 <= 30) and price(x) >= 30").unwrap(),
        Action::Notify,
    ))
    .unwrap();
    let set = |adb: &mut ActiveDatabase, name: &str, p: i64| {
        let old = adb
            .db()
            .relation("STOCK")
            .unwrap()
            .iter()
            .find(|t| t.get(0) == Some(&Value::str(name)))
            .cloned();
        let mut ops = Vec::new();
        if let Some(old) = old {
            ops.push(WriteOp::Delete {
                relation: "STOCK".into(),
                tuple: old,
            });
        }
        ops.push(WriteOp::Insert {
            relation: "STOCK".into(),
            tuple: tuple![name, p],
        });
        adb.advance_clock(1).unwrap();
        adb.update(ops).unwrap();
    };
    set(&mut adb, "IBM", 10); // 10*3 <= 30 qualifies as the "before" state
    set(&mut adb, "DEC", 90); // DEC listed high, never tripled
    set(&mut adb, "IBM", 35); // 35 >= 30 and lasttime qualified: fires for IBM
    let fired: Vec<_> = adb.firings().iter().map(|f| f.env["x"].clone()).collect();
    assert_eq!(fired, vec![Value::str("IBM")]);
}

/// "Rules may be associated with relations or object classes, and
/// evaluated only when an event relating to the object class occurs" —
/// data-dependency relevance propagates through named queries.
#[test]
fn relevance_follows_query_dependencies() {
    let mut db = Database::new();
    db.create_relation("A", Relation::empty(Schema::untyped(&["v"])))
        .unwrap();
    db.create_relation("B", Relation::empty(Schema::untyped(&["v"])))
        .unwrap();
    db.define_query(
        "count_a",
        QueryDef::new(0, parse_query("select count(*) as n from A").unwrap()),
    );
    let mut adb = ActiveDatabase::with_config(
        db,
        ManagerConfig {
            relevance_filtering: true,
            ..Default::default()
        },
    );
    adb.add_rule(Rule::trigger(
        "watch_a",
        parse_formula("count_a() > 0").unwrap(),
        Action::Notify,
    ))
    .unwrap();
    adb.advance_clock(1).unwrap();
    // Updating B is irrelevant to the rule: skipped.
    adb.update([WriteOp::Insert {
        relation: "B".into(),
        tuple: tuple![1i64],
    }])
    .unwrap();
    let skips_after_b = adb.stats().skips;
    assert!(skips_after_b > 0);
    // Updating A is relevant: evaluated and fired.
    adb.update([WriteOp::Insert {
        relation: "A".into(),
        tuple: tuple![1i64],
    }])
    .unwrap();
    assert_eq!(adb.firings().len(), 1);
}

/// Engine-level: at most one transaction commits per instant, enforced
/// through the facade's auto-ticking.
#[test]
fn commits_never_share_an_instant() {
    let mut adb = ActiveDatabase::new(Database::new());
    adb.set_item("x", Value::Int(0)).unwrap();
    adb.advance_clock(1).unwrap();
    // Two immediate updates without advancing the clock in between.
    adb.update([WriteOp::SetItem {
        item: "x".into(),
        value: Value::Int(1),
    }])
    .unwrap();
    adb.update([WriteOp::SetItem {
        item: "x".into(),
        value: Value::Int(2),
    }])
    .unwrap();
    let mut commit_times = Vec::new();
    for (_, s) in adb.history().iter() {
        if s.events().commit_count() > 0 {
            commit_times.push(s.time());
        }
    }
    assert_eq!(commit_times.len(), 2);
    assert!(commit_times[0] < commit_times[1]);
}

/// The Dow-Jones condition from the introduction: "the Dow Jones Industrial
/// Average fell more than 250 points in the last 2 hours."
#[test]
fn dow_jones_drop_condition() {
    let mut db = Database::new();
    db.set_item("dow", Value::Int(10_000));
    db.define_query("dow", QueryDef::new(0, Query::item("dow")));
    let mut adb = ActiveDatabase::new(db);
    adb.add_rule(Rule::trigger(
        "dow_drop",
        parse_formula(
            "[t := time] [d := dow()] \
             previously(dow() >= d + 250 and time >= t - 120)",
        )
        .unwrap(),
        Action::Notify,
    ))
    .unwrap();
    let set = |adb: &mut ActiveDatabase, t: i64, v: i64| {
        while adb.now().0 < t {
            adb.advance_clock(1).unwrap();
        }
        adb.update([WriteOp::SetItem {
            item: "dow".into(),
            value: Value::Int(v),
        }])
        .unwrap();
    };
    set(&mut adb, 10, 10_100); // high point
    set(&mut adb, 60, 10_000);
    set(&mut adb, 100, 9_840); // fell 260 from t=10 within 120 → fires
    assert_eq!(adb.firings().len(), 1);
    // A slow decline over more than 2 hours must NOT fire.
    set(&mut adb, 400, 9_700);
    set(&mut adb, 600, 9_500); // 340 down, but over 200 units
    assert_eq!(adb.firings().len(), 1, "no new firing for the slow drift");
}
