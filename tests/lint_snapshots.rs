//! Snapshot tests for `tdb-lint` over the example rule files.
//!
//! Each `examples/lint/NAME.rules` has a checked-in
//! `examples/lint/NAME.expected` holding the exact text report. Regenerate
//! after an intentional output change with:
//!
//! ```text
//! TDB_UPDATE_SNAPSHOTS=1 cargo test --test lint_snapshots
//! ```

use temporal_adb::analysis::{analyze_rule_set, parse_rule_file, Boundedness, Report};

const DIR: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/examples/lint");

fn report_for(name: &str) -> (String, Report) {
    let src = std::fs::read_to_string(format!("{DIR}/{name}.rules")).unwrap();
    let file = parse_rule_file(&src).unwrap();
    (src.clone(), analyze_rule_set(&file.rules))
}

fn check_snapshot(name: &str) -> Report {
    let (src, report) = report_for(name);
    let rendered = report.render_text(Some(&src));
    let expected_path = format!("{DIR}/{name}.expected");
    if std::env::var_os("TDB_UPDATE_SNAPSHOTS").is_some() {
        std::fs::write(&expected_path, &rendered).unwrap();
        return report;
    }
    let expected = std::fs::read_to_string(&expected_path).unwrap_or_else(|e| {
        panic!("missing snapshot {expected_path} ({e}); run with TDB_UPDATE_SNAPSHOTS=1")
    });
    assert_eq!(
        rendered, expected,
        "lint output for {name}.rules diverged from its snapshot; \
         rerun with TDB_UPDATE_SNAPSHOTS=1 if the change is intentional"
    );
    report
}

#[test]
fn quickstart_flags_raw_rule_and_certifies_windowed_variant() {
    let report = check_snapshot("quickstart");
    assert_eq!(report.verdicts[0].rule, "audit_raw");
    assert_eq!(report.verdicts[0].boundedness, Boundedness::Unbounded);
    assert_eq!(report.verdicts[1].rule, "audit_windowed");
    assert_eq!(
        report.verdicts[1].boundedness,
        Boundedness::BoundedByWindow { delta: 30 }
    );
    // The TDB001 span must point at the offending `once` subformula.
    let (src, _) = report_for("quickstart");
    let tdb001: Vec<_> = report
        .diagnostics
        .iter()
        .filter(|d| d.code.code() == "TDB001")
        .collect();
    assert_eq!(tdb001.len(), 1);
    assert_eq!(
        tdb001[0].span.unwrap().slice(&src).unwrap(),
        "once @login(u)"
    );
}

#[test]
fn stock_monitor_certified_window_bounded_and_graph_silent() {
    let report = check_snapshot("stock_monitor");
    assert_eq!(
        report.verdicts[0].boundedness,
        Boundedness::BoundedByWindow { delta: 10 }
    );
    assert_eq!(
        report.verdicts[1].boundedness,
        Boundedness::BoundedByWindow { delta: 120 }
    );
    assert!(report.diagnostics.is_empty());
}

#[test]
fn login_audit_reports_unbounded_per_user_state() {
    let report = check_snapshot("login_audit");
    assert_eq!(report.verdicts[0].boundedness, Boundedness::Unbounded);
    assert!(report.has_denials());
}

#[test]
fn inventory_constraints_are_clean() {
    let report = check_snapshot("inventory_constraints");
    assert!(matches!(
        report.verdicts[0].boundedness,
        Boundedness::Bounded { .. }
    ));
    assert_eq!(
        report.verdicts[1].boundedness,
        Boundedness::BoundedByWindow { delta: 7 }
    );
    assert!(report.diagnostics.is_empty(), "{:?}", report.diagnostics);
}

#[test]
fn cycle_example_reports_trigger_cycle() {
    let report = check_snapshot("cycle");
    assert!(report.diagnostics.iter().any(|d| d.code.code() == "TDB010"));
    assert!(report.diagnostics.iter().any(|d| d.code.code() == "TDB012"));
    assert!(!report.has_denials(), "cycle is warn-level, not deny");
}

#[test]
fn json_rendering_is_stable_for_quickstart() {
    let (src, report) = report_for("quickstart");
    let json = report.render_json(Some(&src));
    assert!(json.contains("\"verdict\":\"unbounded\""));
    assert!(json.contains("\"verdict\":\"bounded-by-window\",\"delta\":30"));
    assert!(json.contains("\"code\":\"TDB001\""));
    assert!(json.contains("\"snippet\":\"once @login(u)\""));
}
