//! Snapshot tests for `tdb-lint` over the example rule files.
//!
//! Each `examples/lint/NAME.rules` has a checked-in
//! `examples/lint/NAME.expected` holding the exact text report. Regenerate
//! after an intentional output change with:
//!
//! ```text
//! TDB_UPDATE_SNAPSHOTS=1 cargo test --test lint_snapshots
//! ```

use temporal_adb::analysis::{
    analyze_rule_set, parse_rule_file, render_sarif, BatchCertificate, Boundedness, Report,
    SarifEntry,
};

const DIR: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/examples/lint");

fn report_for(name: &str) -> (String, Report) {
    let src = std::fs::read_to_string(format!("{DIR}/{name}.rules")).unwrap();
    let file = parse_rule_file(&src).unwrap();
    (src.clone(), analyze_rule_set(&file.rules))
}

fn check_snapshot(name: &str) -> Report {
    let (src, report) = report_for(name);
    let rendered = report.render_text(Some(&src));
    let expected_path = format!("{DIR}/{name}.expected");
    if std::env::var_os("TDB_UPDATE_SNAPSHOTS").is_some() {
        std::fs::write(&expected_path, &rendered).unwrap();
        return report;
    }
    let expected = std::fs::read_to_string(&expected_path).unwrap_or_else(|e| {
        panic!("missing snapshot {expected_path} ({e}); run with TDB_UPDATE_SNAPSHOTS=1")
    });
    assert_eq!(
        rendered, expected,
        "lint output for {name}.rules diverged from its snapshot; \
         rerun with TDB_UPDATE_SNAPSHOTS=1 if the change is intentional"
    );
    report
}

#[test]
fn quickstart_flags_raw_rule_and_certifies_windowed_variant() {
    let report = check_snapshot("quickstart");
    assert_eq!(report.verdicts[0].rule, "audit_raw");
    assert_eq!(report.verdicts[0].boundedness, Boundedness::Unbounded);
    assert_eq!(report.verdicts[1].rule, "audit_windowed");
    assert_eq!(
        report.verdicts[1].boundedness,
        Boundedness::BoundedByWindow { delta: 30 }
    );
    // The TDB001 span must point at the offending `once` subformula.
    let (src, _) = report_for("quickstart");
    let tdb001: Vec<_> = report
        .diagnostics
        .iter()
        .filter(|d| d.code.code() == "TDB001")
        .collect();
    assert_eq!(tdb001.len(), 1);
    assert_eq!(
        tdb001[0].span.unwrap().slice(&src).unwrap(),
        "once @login(u)"
    );
}

#[test]
fn stock_monitor_certified_window_bounded_and_graph_silent() {
    let report = check_snapshot("stock_monitor");
    assert_eq!(
        report.verdicts[0].boundedness,
        Boundedness::BoundedByWindow { delta: 10 }
    );
    assert_eq!(
        report.verdicts[1].boundedness,
        Boundedness::BoundedByWindow { delta: 120 }
    );
    // Both rules read `time`, so as writers they are order-sensitive and
    // self-cycle: batched evaluation must drain the cascade per op.
    let bs = report.batch_safety.as_ref().unwrap();
    assert_eq!(bs.certificate, BatchCertificate::CascadeRequired);
    assert!(
        !report.has_denials(),
        "batch hazards are info/warn, not deny"
    );
}

#[test]
fn login_audit_reports_unbounded_per_user_state() {
    let report = check_snapshot("login_audit");
    assert_eq!(report.verdicts[0].boundedness, Boundedness::Unbounded);
    assert!(report.has_denials());
}

#[test]
fn inventory_constraints_are_clean() {
    let report = check_snapshot("inventory_constraints");
    assert!(matches!(
        report.verdicts[0].boundedness,
        Boundedness::Bounded { .. }
    ));
    assert_eq!(
        report.verdicts[1].boundedness,
        Boundedness::BoundedByWindow { delta: 7 }
    );
    // `shrinkage_audit` reads `time`: an order-sensitive writer, so the
    // catalog needs per-op cascade drains when batched.
    let bs = report.batch_safety.as_ref().unwrap();
    assert_eq!(bs.certificate, BatchCertificate::CascadeRequired);
    assert!(
        !report.has_denials(),
        "batch hazards are info/warn, not deny"
    );
}

#[test]
fn cycle_example_reports_trigger_cycle() {
    let report = check_snapshot("cycle");
    assert!(report.diagnostics.iter().any(|d| d.code.code() == "TDB010"));
    assert!(report.diagnostics.iter().any(|d| d.code.code() == "TDB012"));
    assert!(!report.has_denials(), "cycle is warn-level, not deny");
}

#[test]
fn batch_notify_only_is_single_stratum_with_no_findings() {
    let report = check_snapshot("batch_notify_only");
    // File-loaded rules record each firing in `__executed_<name>`, so a
    // notify-only catalog is stratified(1), not exact — but with no
    // reader of those relations the lone stratum carries no fences and
    // the runtime fuses the batch exactly as it would an exact catalog.
    let bs = report.batch_safety.as_ref().unwrap();
    assert_eq!(bs.certificate, BatchCertificate::Stratified { strata: 1 });
    assert!(report.diagnostics.is_empty(), "{:?}", report.diagnostics);
}

#[test]
fn batch_stratified_reports_tdb013_with_span() {
    let report = check_snapshot("batch_stratified");
    let bs = report.batch_safety.as_ref().unwrap();
    assert!(matches!(
        bs.certificate,
        BatchCertificate::Stratified { .. }
    ));
    let (src, _) = report_for("batch_stratified");
    let tdb013: Vec<_> = report
        .diagnostics
        .iter()
        .filter(|d| d.code.code() == "TDB013")
        .collect();
    assert_eq!(tdb013.len(), 1);
    // The span points at the reader condition influenced by the writer.
    assert_eq!(
        tdb013[0].span.unwrap().slice(&src).unwrap(),
        "alarm_level() >= 2"
    );
    assert!(!report.diagnostics.iter().any(|d| d.code.code() == "TDB014"));
}

#[test]
fn batch_opaque_reports_tdb015_cascade_required() {
    let report = check_snapshot("batch_opaque");
    let bs = report.batch_safety.as_ref().unwrap();
    assert_eq!(bs.certificate, BatchCertificate::CascadeRequired);
    assert!(report.diagnostics.iter().any(|d| d.code.code() == "TDB015"));
}

/// The `--batch-safety --sarif` view over the three batch examples must
/// match the checked-in SARIF golden byte for byte (CI uploads the same
/// log as an artifact, so its shape is part of the tool's contract).
#[test]
fn batch_safety_sarif_matches_golden() {
    let names = ["batch_notify_only", "batch_stratified", "batch_opaque"];
    let loaded: Vec<(String, String, Report)> = names
        .iter()
        .map(|n| {
            let (src, report) = report_for(n);
            (
                format!("examples/lint/{n}.rules"),
                src,
                report.batch_safety_only(),
            )
        })
        .collect();
    let entries: Vec<SarifEntry<'_>> = loaded
        .iter()
        .map(|(uri, src, report)| SarifEntry {
            uri,
            report,
            src: Some(src),
        })
        .collect();
    let rendered = format!("{}\n", render_sarif(&entries));
    let golden_path = format!("{DIR}/batch_safety.sarif.expected");
    if std::env::var_os("TDB_UPDATE_SNAPSHOTS").is_some() {
        std::fs::write(&golden_path, &rendered).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&golden_path).unwrap_or_else(|e| {
        panic!("missing SARIF golden {golden_path} ({e}); run with TDB_UPDATE_SNAPSHOTS=1")
    });
    assert_eq!(
        rendered, expected,
        "SARIF output diverged from golden; rerun with TDB_UPDATE_SNAPSHOTS=1 if intentional"
    );
}

#[test]
fn json_rendering_is_stable_for_quickstart() {
    let (src, report) = report_for("quickstart");
    let json = report.render_json(Some(&src));
    assert!(json.contains("\"verdict\":\"unbounded\""));
    assert!(json.contains("\"verdict\":\"bounded-by-window\",\"delta\":30"));
    assert!(json.contains("\"code\":\"TDB001\""));
    assert!(json.contains("\"snippet\":\"once @login(u)\""));
}
