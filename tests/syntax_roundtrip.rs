//! Property test: the PTL pretty-printer and parser are mutual inverses —
//! `parse(display(f)) == f` for every formula the generator produces
//! (modulo the core-form rewriting both sides share).

use proptest::prelude::*;

use temporal_adb::prelude::*;
use temporal_adb::relation::CmpOp;

fn term_strategy() -> impl Strategy<Value = Term> {
    let leaf = prop_oneof![
        (-50i64..50).prop_map(Term::lit),
        Just(Term::Time),
        "[a-z][a-z0-9]{0,3}".prop_map(Term::var),
        ("[A-Z]{2,4}", any::<bool>()).prop_map(|(name, with_arg)| {
            if with_arg {
                Term::query("price", vec![Term::Const(Value::str(name))])
            } else {
                Term::query("names", vec![])
            }
        }),
    ];
    leaf.prop_recursive(2, 12, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Term::add(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Term::sub(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Term::mul(a, b)),
            inner.clone().prop_map(|a| Term::Abs(Box::new(a))),
        ]
    })
}

fn cmp_strategy() -> impl Strategy<Value = CmpOp> {
    prop_oneof![
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
        Just(CmpOp::Ge),
        Just(CmpOp::Gt),
    ]
}

fn formula_strategy() -> impl Strategy<Value = Formula> {
    let atom = prop_oneof![
        Just(Formula::True),
        Just(Formula::False),
        (cmp_strategy(), term_strategy(), term_strategy())
            .prop_map(|(op, a, b)| Formula::cmp(op, a, b)),
        "[a-z][a-z0-9]{0,3}".prop_map(|e| Formula::event(e, vec![])),
        ("[a-z][a-z0-9]{0,3}", "[a-z][a-z]{0,2}")
            .prop_map(|(e, v)| { Formula::event(e, vec![Term::var(v)]) }),
    ];
    atom.prop_recursive(3, 24, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(Formula::not),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Formula::And(vec![a, b])),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Formula::Or(vec![a, b])),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Formula::since(a, b)),
            inner.clone().prop_map(Formula::lasttime),
            inner.clone().prop_map(Formula::previously),
            inner.clone().prop_map(Formula::throughout_past),
            ("[a-z][a-z]{0,2}", term_strategy(), inner.clone())
                .prop_map(|(v, t, body)| Formula::assign(v, t, body)),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn display_then_parse_is_identity(f in formula_strategy()) {
        let text = f.to_string();
        let parsed = parse_formula(&text)
            .unwrap_or_else(|e| panic!("reparse failed on `{text}`: {e}"));
        prop_assert_eq!(&parsed, &f, "text was `{}`", text);
    }

    #[test]
    fn term_display_then_parse_is_identity(t in term_strategy()) {
        let text = t.to_string();
        let parsed = parse_term(&text)
            .unwrap_or_else(|e| panic!("reparse failed on `{text}`: {e}"));
        prop_assert_eq!(&parsed, &t, "text was `{}`", text);
    }

    /// Core-form rewriting preserves free variables and referenced names.
    #[test]
    fn core_rewrite_preserves_interface(f in formula_strategy()) {
        let core = temporal_adb::ptl::to_core(&f);
        prop_assert_eq!(core.free_vars(), f.free_vars());
        prop_assert_eq!(core.event_names(), f.event_names());
        prop_assert_eq!(core.query_names(), f.query_names());
    }
}
