//! Property tests validating boundedness certificates against the real
//! incremental evaluator:
//!
//! * `Bounded(k)` — drive 1000 states through `IncrementalEvaluator` and
//!   assert the retained residual size never exceeds `k`;
//! * `BoundedByWindow(Δ)` — retained state must plateau: on a long run the
//!   peak is reached well before the end (no tail growth);
//! * `Unbounded` — growth must actually occur on an adversarial history
//!   (a fresh `@login(u)` binding every state).

use proptest::prelude::*;

use temporal_adb::analysis::{certify, Boundedness};
use temporal_adb::core::{EvalConfig, IncrementalEvaluator};
use temporal_adb::engine::{Event, EventSet, SystemState};
use temporal_adb::ptl::parse_formula;
use temporal_adb::relation::{Database, Query, QueryDef, Timestamp, Value};

const STATES: usize = 1000;

/// Drives `src` through `STATES` synthetic states and returns the retained
/// residual size after each state.
///
/// The history is adversarial for unguarded accumulation: the clock ticks
/// every state, `price()` cycles through small positive values, `@pulse`
/// fires every third state, and `@login(uN)` carries a fresh argument at
/// every state so variable-binding disjuncts can never collapse.
fn drive(src: &str) -> Vec<usize> {
    let f = parse_formula(src).unwrap();
    let mut ev = IncrementalEvaluator::new(&f, EvalConfig::default()).unwrap();
    let mut db = Database::new();
    db.define_query("price", QueryDef::new(0, Query::item("P")));
    let mut sizes = Vec::with_capacity(STATES);
    for i in 0..STATES {
        db.set_item("P", Value::Int(1 + (i as i64 % 7)));
        let mut events = EventSet::new();
        if i % 3 == 0 {
            events.insert(Event::new("pulse", vec![]));
        }
        events.insert(Event::new("login", vec![Value::str(format!("u{i}"))]));
        let state = SystemState::new(db.clone(), events, Timestamp(i as i64));
        ev.advance(&state, i).unwrap();
        sizes.push(ev.retained_size());
    }
    sizes
}

/// Always-evaluable ground atoms: no free variables anywhere.
fn ground_atom() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("price() > 3".to_string()),
        Just("price() > 0".to_string()),
        Just("@pulse".to_string()),
        Just("time >= 5".to_string()),
        Just("true".to_string()),
    ]
}

/// Ground formulas closed under the connectives and temporal operators.
fn ground_formula() -> impl Strategy<Value = String> {
    ground_atom().prop_recursive(3, 12, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("({a} and {b})")),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("({a} or {b})")),
            inner.clone().prop_map(|a| format!("not ({a})")),
            inner.clone().prop_map(|a| format!("previously ({a})")),
            inner.clone().prop_map(|a| format!("historically ({a})")),
            inner.clone().prop_map(|a| format!("lasttime ({a})")),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("({a} since {b})")),
        ]
    })
}

/// Unbounded cores: a variable-binding generator under an unguarded
/// accumulating operator. The `since` bodies keep `g` always true so the
/// accumulated disjuncts are never reset by a false `g`.
fn unbounded_core() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("once @login(u)".to_string()),
        Just("(time >= 0 since @login(u))".to_string()),
        Just("(price() > 0 since @login(u))".to_string()),
    ]
}

/// An unbounded core optionally composed with ground noise (in positions
/// that cannot mask the accumulating subformula's own residuals).
fn unbounded_formula() -> impl Strategy<Value = String> {
    (unbounded_core(), ground_formula(), 0usize..3).prop_map(|(core, g, shape)| match shape {
        0 => core,
        1 => format!("({g} and {core})"),
        _ => format!("({g} or {core})"),
    })
}

/// Window-guarded accumulation: certified `BoundedByWindow(Δ)`.
fn guarded_formula() -> impl Strategy<Value = String> {
    (5i64..50, ground_formula(), 0usize..2).prop_map(|(delta, g, conj)| {
        let conj = conj == 1;
        let core = format!("previously(@login(u) and time >= t0 - {delta})");
        if conj {
            format!("[t0 := time] ({g} and {core})")
        } else {
            format!("[t0 := time] {core}")
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `Bounded(k)` is a hard ceiling: 1000 updates never retain more
    /// than `k` residual nodes.
    #[test]
    fn bounded_certificates_hold_over_1000_states(src in ground_formula()) {
        let f = parse_formula(&src).unwrap();
        let cert = certify(&f, None);
        match cert.verdict {
            Boundedness::Bounded { nodes, data_scaled } => {
                prop_assert!(!data_scaled, "ground formulas have no free variables: {src}");
                let sizes = drive(&src);
                let peak = *sizes.iter().max().unwrap();
                prop_assert!(
                    peak <= nodes,
                    "certified k={nodes} but retained {peak} nodes: {src}"
                );
            }
            other => prop_assert!(false, "ground formula certified {other:?}: {src}"),
        }
    }

    /// `Unbounded` verdicts are not false alarms: the adversarial history
    /// (fresh login binding per state) makes retained state actually grow.
    #[test]
    fn unbounded_certificates_exhibit_growth(src in unbounded_formula()) {
        let f = parse_formula(&src).unwrap();
        let cert = certify(&f, None);
        prop_assert_eq!(
            &cert.verdict, &Boundedness::Unbounded,
            "expected unbounded for {}", &src
        );
        prop_assert!(!cert.offenders.is_empty());
        let sizes = drive(&src);
        prop_assert!(
            sizes[STATES - 1] > sizes[STATES / 3],
            "no growth between state {} ({}) and state {} ({}): {}",
            STATES / 3, sizes[STATES / 3], STATES - 1, sizes[STATES - 1], &src
        );
    }

    /// `BoundedByWindow(Δ)` means pruning keeps up: with one state per
    /// clock tick the retained size plateaus — the whole-run peak is
    /// already reached in the first 600 states (Δ < 50 ≪ 600).
    #[test]
    fn window_certificates_plateau(src in guarded_formula()) {
        let f = parse_formula(&src).unwrap();
        let cert = certify(&f, None);
        match cert.verdict {
            Boundedness::BoundedByWindow { delta } => {
                prop_assert!((5..50).contains(&delta), "{}", &src);
            }
            other => prop_assert!(false, "expected window bound, got {other:?}: {src}"),
        }
        let sizes = drive(&src);
        let early_peak = *sizes[..600].iter().max().unwrap();
        let late_peak = *sizes[600..].iter().max().unwrap();
        prop_assert!(
            late_peak <= early_peak,
            "retained state still growing after 600 states ({} -> {}): {}",
            early_peak, late_peak, &src
        );
    }
}
