//! Property tests for the valid-time semantics (Section 9):
//!
//! * Theorem 2 — online and offline satisfaction coincide on collapsed
//!   committed histories, for randomized transaction interleavings and
//!   constraints;
//! * the committed history at infinity agrees state-for-state with the
//!   tentative history once every transaction has resolved;
//! * tentative triggers see retroactive updates.

use proptest::prelude::*;

use temporal_adb::core::{offline_satisfied, online_satisfied, theorem2_check};
use temporal_adb::prelude::*;

/// One scripted valid-time action.
#[derive(Debug, Clone, Copy)]
enum VtStep {
    Begin,
    /// Update item `u{idx % 3}` by transaction slot `txn % open`, lagging
    /// `lag` units behind now.
    Update {
        txn: u8,
        idx: u8,
        lag: u8,
    },
    Commit {
        txn: u8,
    },
    Abort {
        txn: u8,
    },
    Tick,
}

fn vt_step_strategy() -> impl Strategy<Value = VtStep> {
    prop_oneof![
        Just(VtStep::Begin),
        (any::<u8>(), any::<u8>(), 0u8..6).prop_map(|(txn, idx, lag)| VtStep::Update {
            txn,
            idx,
            lag
        }),
        any::<u8>().prop_map(|txn| VtStep::Commit { txn }),
        any::<u8>().prop_map(|txn| VtStep::Abort { txn }),
        Just(VtStep::Tick),
    ]
}

fn run_script(steps: &[VtStep]) -> VtEngine {
    let mut base = Database::new();
    for i in 0..3 {
        base.set_item(format!("u{i}"), Value::Int(0));
        base.define_query(
            format!("u{i}_q"),
            QueryDef::new(0, Query::item(format!("u{i}"))),
        );
    }
    let mut vt = VtEngine::new(base, 10);
    let mut open: Vec<temporal_adb::engine::TxnId> = Vec::new();
    vt.advance_clock(1).unwrap();
    for s in steps {
        match s {
            VtStep::Begin => {
                open.push(vt.begin().unwrap());
            }
            VtStep::Update { txn, idx, lag } => {
                if open.is_empty() {
                    continue;
                }
                let t = open[*txn as usize % open.len()];
                let valid = vt.now().minus(i64::from(*lag)).max(Timestamp(0));
                let op = WriteOp::SetItem {
                    item: format!("u{}", idx % 3),
                    value: Value::Int(1),
                };
                // Too-old valid times are rejected; clamp to the window.
                let valid = valid.max(vt.now().minus(vt.max_delay()));
                let _ = vt.update_at(t, op, valid);
            }
            VtStep::Commit { txn } => {
                if open.is_empty() {
                    continue;
                }
                let k = *txn as usize % open.len();
                let t = open.remove(k);
                vt.commit(t).unwrap();
            }
            VtStep::Abort { txn } => {
                if open.is_empty() {
                    continue;
                }
                let k = *txn as usize % open.len();
                let t = open.remove(k);
                vt.abort(t).unwrap();
            }
            VtStep::Tick => {
                vt.advance_clock(1).unwrap();
            }
        }
        vt.advance_clock(1).unwrap();
    }
    // Resolve everything so the history is complete.
    for t in open {
        vt.advance_clock(1).unwrap();
        vt.commit(t).unwrap();
    }
    vt
}

fn constraint_strategy() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("u1_q() = 0 or u0_q() = 1".to_string()),
        Just("u2_q() = 0 or previously(u0_q() = 1)".to_string()),
        Just("throughout_past(u0_q() = 0) or u1_q() = 1".to_string()),
        Just("not previously(u2_q() = 1 and lasttime(u1_q() = 1))".to_string()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Theorem 2: on the collapsed committed history the two satisfaction
    /// notions coincide.
    #[test]
    fn theorem2_holds(
        steps in proptest::collection::vec(vt_step_strategy(), 1..24),
        c in constraint_strategy(),
    ) {
        let vt = run_script(&steps);
        let f = parse_formula(&c).unwrap();
        let (online, offline) = theorem2_check(&vt, &f).unwrap();
        prop_assert_eq!(online, offline, "constraint `{}`", c);
    }

    /// Both satisfaction notions are well-defined on every random history
    /// (no panics, no errors), and with no retroactive updates they agree.
    #[test]
    fn online_offline_agree_without_retro(
        steps in proptest::collection::vec(vt_step_strategy(), 1..24),
        c in constraint_strategy(),
    ) {
        // Force every update to be non-retroactive.
        let steps: Vec<VtStep> = steps
            .into_iter()
            .map(|s| match s {
                VtStep::Update { txn, idx, .. } => VtStep::Update { txn, idx, lag: 0 },
                other => other,
            })
            .collect();
        let vt = run_script(&steps);
        let f = parse_formula(&c).unwrap();
        let online = online_satisfied(&vt, &f).unwrap();
        let offline = offline_satisfied(&vt, &f).unwrap();
        // Without retro updates, disagreement can still arise from commit
        // *ordering* (the u1/u2 example needs no retro updates at all), so
        // we only require offline ⇒ not stricter in one specific family:
        // monotone constraints over 0→1 items where visibility only grows.
        if c.starts_with("u1_q() = 0 or u0_q()") {
            // "u0 set whenever u1 is set": offline sees at least as many
            // u0 updates as online ⇒ online-satisfied implies
            // offline-satisfied for this monotone implication.
            if online {
                prop_assert!(offline, "constraint `{}`", c);
            }
        }
        let _ = (online, offline);
    }
}

#[test]
fn committed_history_is_prefix_closed() {
    // The committed history at t is a prefix of the one at t' >= t, state
    // times agree, and the databases agree wherever both are defined AND
    // no transaction committing in (t, t'] wrote retroactively before t.
    let steps = [
        VtStep::Begin,
        VtStep::Update {
            txn: 0,
            idx: 0,
            lag: 0,
        },
        VtStep::Tick,
        VtStep::Commit { txn: 0 },
        VtStep::Begin,
        VtStep::Update {
            txn: 0,
            idx: 1,
            lag: 0,
        },
        VtStep::Commit { txn: 0 },
    ];
    let vt = run_script(&steps);
    let full = vt.committed_history_at_infinity();
    for t in vt.commit_points() {
        let h = vt.committed_history(t);
        assert!(h.len() <= full.len());
        for (i, s) in h.iter() {
            assert_eq!(s.time(), full.get(i).unwrap().time());
        }
    }
}
