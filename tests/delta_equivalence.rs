//! Delta-driven dispatch is a pure optimization: rules whose read set does
//! not intersect a state's delta advance through the sparse path, and that
//! must be observationally invisible. These tests pin the firing sequence
//! (order included), commit/abort pattern, and final database of
//! delta-filtered dispatch to exhaustive dispatch — with §8 relevance
//! filtering both off and on, and across a WAL crash/recover cut.

use proptest::prelude::*;

use temporal_adb::core::{
    Action, ActiveDatabase, ManagerConfig, ParallelConfig, Rule, SharedMemorySink,
};
use temporal_adb::engine::{Event, WriteOp};
use temporal_adb::ptl::parse_formula;
use temporal_adb::relation::{
    parse_query, tuple, Database, Query, QueryDef, Relation, Schema, Value,
};

const ITEMS: usize = 4;
const RELATIONS: usize = 3;

/// One step of a generated workload.
#[derive(Debug, Clone)]
enum Step {
    /// Set scalar watch item `w<i>` (per-item delta).
    SetItem {
        item: usize,
        value: i64,
    },
    /// Replace base relation `W<j>`'s single row (per-relation delta).
    SetRow {
        rel: usize,
        value: i64,
    },
    /// Raise `@login("X")` / `@logout("X")` (event delta).
    Login,
    Logout,
    /// Advance the clock without touching data (empty delta).
    Tick,
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        (0..ITEMS, 80i64..125).prop_map(|(item, value)| Step::SetItem { item, value }),
        (0..RELATIONS, 80i64..125).prop_map(|(rel, value)| Step::SetRow { rel, value }),
        Just(Step::Login),
        Just(Step::Logout),
        Just(Step::Tick),
    ]
}

fn base_db() -> Database {
    let mut db = Database::new();
    for i in 0..ITEMS {
        let item = format!("w{i}");
        db.set_item(item.clone(), Value::Int(0));
        db.define_query(format!("w{i}_q"), QueryDef::new(0, Query::item(item)));
    }
    for j in 0..RELATIONS {
        db.create_relation(
            format!("W{j}"),
            Relation::from_rows(Schema::untyped(&["v"]), vec![tuple![0i64]]).unwrap(),
        )
        .unwrap();
        db.define_query(
            format!("r{j}_q"),
            QueryDef::new(0, parse_query(&format!("select v from W{j}")).unwrap()),
        );
    }
    db
}

/// Catalog mixing every read-set shape the index classifies: item readers,
/// relation readers, event-driven `since` chains, a clock user (always
/// affected), and an integrity constraint (gate path).
fn catalog() -> Vec<Rule> {
    let mut rules = Vec::new();
    for i in 0..ITEMS {
        rules.push(Rule::trigger(
            format!("iw{i}"),
            parse_formula(&format!("w{i}_q() > 100 and previously(w{i}_q() <= 100)")).unwrap(),
            Action::Notify,
        ));
    }
    for j in 0..RELATIONS {
        rules.push(Rule::trigger(
            format!("rw{j}"),
            parse_formula(&format!("lasttime(r{j}_q() <= 100) and r{j}_q() > 100")).unwrap(),
            Action::Notify,
        ));
    }
    rules.push(Rule::trigger(
        "session",
        parse_formula("not @logout(\"X\") since @login(\"X\")").unwrap(),
        Action::Notify,
    ));
    rules.push(Rule::trigger(
        "recent_high",
        parse_formula("[t := time] previously(w0_q() >= 110 and time >= t - 5)").unwrap(),
        Action::Notify,
    ));
    rules.push(Rule::constraint(
        "cap0",
        parse_formula("w0_q() > 118").unwrap(),
    ));
    rules
}

fn config(delta_dispatch: bool, relevance_filtering: bool) -> ManagerConfig {
    ManagerConfig {
        relevance_filtering,
        delta_dispatch,
        parallel: ParallelConfig::default(),
        ..Default::default()
    }
}

fn build(cfg: ManagerConfig) -> ActiveDatabase {
    let mut adb = ActiveDatabase::with_config(base_db(), cfg);
    for r in catalog() {
        adb.add_rule(r).unwrap();
    }
    adb
}

fn apply(adb: &mut ActiveDatabase, s: &Step) -> bool {
    adb.advance_clock(1).unwrap();
    match s {
        Step::SetItem { item, value } => adb
            .update([WriteOp::SetItem {
                item: format!("w{item}"),
                value: Value::Int(*value),
            }])
            .is_ok(),
        Step::SetRow { rel, value } => {
            let name = format!("W{rel}");
            let old = adb
                .db()
                .relation(&name)
                .unwrap()
                .iter()
                .next()
                .cloned()
                .unwrap();
            adb.update([
                WriteOp::Delete {
                    relation: name.clone(),
                    tuple: old,
                },
                WriteOp::Insert {
                    relation: name,
                    tuple: tuple![*value],
                },
            ])
            .is_ok()
        }
        Step::Login => adb.emit(Event::new("login", vec![Value::str("X")])).is_ok(),
        Step::Logout => adb
            .emit(Event::new("logout", vec![Value::str("X")]))
            .is_ok(),
        Step::Tick => adb.tick().is_ok(),
    }
}

/// Full observable trace of a run.
fn run(
    adb: &mut ActiveDatabase,
    steps: &[Step],
) -> (Vec<temporal_adb::core::FiringRecord>, Vec<bool>, Database) {
    let commits: Vec<bool> = steps.iter().map(|s| apply(adb, s)).collect();
    (adb.firings().to_vec(), commits, adb.db().clone())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Delta dispatch never changes observable behavior, with §8 relevance
    /// filtering both off and on.
    #[test]
    fn delta_dispatch_is_observationally_identical(
        steps in proptest::collection::vec(step_strategy(), 50..200),
    ) {
        for relevance in [false, true] {
            let mut exhaustive = build(config(false, relevance));
            let mut delta = build(config(true, relevance));
            let (f_ex, c_ex, db_ex) = run(&mut exhaustive, &steps);
            let (f_d, c_d, db_d) = run(&mut delta, &steps);
            prop_assert_eq!(&f_ex, &f_d, "firings diverge (relevance={})", relevance);
            prop_assert_eq!(&c_ex, &c_d, "commits diverge (relevance={})", relevance);
            prop_assert_eq!(&db_ex, &db_d, "databases diverge (relevance={})", relevance);
            // Delta dispatch must actually skip work, not silently fall
            // back to exhaustive evaluation. (With §8 filtering on, the
            // skip path already removes irrelevant rules before the delta
            // check, so only the unfiltered run pins the sparse counters.)
            let (se, sd) = (exhaustive.stats(), delta.stats());
            prop_assert_eq!(se.sparse_advances, 0);
            if !relevance {
                prop_assert!(sd.sparse_advances > 0, "sparse path never taken: {:?}", sd);
                prop_assert!(sd.evaluations < se.evaluations);
            }
        }
    }
}

/// 1000-state deterministic history, including a crash/recover cut: the
/// delta-dispatching system is checkpointed to a WAL mid-run, "crashes",
/// recovers from the latest checkpoint + log tail, and finishes the
/// workload — the final trace must still be byte-identical to an
/// uninterrupted exhaustive run.
#[test]
fn thousand_state_history_survives_recovery_cut() {
    let mut rng: u64 = 0x5eed_cafe;
    let mut next = |m: usize| {
        rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1);
        (rng >> 33) as usize % m
    };
    let steps: Vec<Step> = (0..1000)
        .map(|_| match next(8) {
            0..=2 => Step::SetItem {
                item: next(ITEMS),
                value: 80 + next(45) as i64,
            },
            3..=5 => Step::SetRow {
                rel: next(RELATIONS),
                value: 80 + next(45) as i64,
            },
            6 => {
                if next(2) == 0 {
                    Step::Login
                } else {
                    Step::Logout
                }
            }
            _ => Step::Tick,
        })
        .collect();
    let cut = 600;

    // Exhaustive reference: no deltas, no WAL, no interruption.
    let mut exhaustive = build(config(false, false));
    let (f_ex, c_ex, db_ex) = run(&mut exhaustive, &steps);

    // Delta run with a WAL attached; crash after `cut` steps.
    let sink = SharedMemorySink::new(50);
    let mut live =
        ActiveDatabase::with_storage(base_db(), config(true, false), Box::new(sink.clone()))
            .unwrap();
    for r in catalog() {
        live.add_rule(r).unwrap();
    }
    let mut commits: Vec<bool> = steps[..cut].iter().map(|s| apply(&mut live, s)).collect();
    drop(live); // crash

    let (snap, tail) = sink
        .latest()
        .expect("a checkpoint was taken before the cut");
    assert!(
        !tail.is_empty(),
        "the cut must land past the last checkpoint"
    );
    let mut recovered =
        ActiveDatabase::recover(snap, &tail, &catalog(), config(true, false)).unwrap();
    commits.extend(steps[cut..].iter().map(|s| apply(&mut recovered, s)));

    assert_eq!(f_ex, recovered.firings(), "firings diverge across the cut");
    assert_eq!(
        c_ex, commits,
        "commit/abort pattern diverges across the cut"
    );
    assert_eq!(db_ex, *recovered.db(), "final databases diverge");
    assert!(
        recovered.stats().sparse_advances > 0,
        "the recovered system must resume sparse dispatch"
    );
}
