//! Determinism of parallel dispatch: partitioning the rule set over a
//! worker pool must not change observable behavior. By Theorem 1 each
//! rule's formula state is a function of the current state and its own
//! previous state, so the only way parallelism could leak would be a
//! merge that reorders firings — these tests pin the firing sequence
//! (order included) to the sequential one over randomized workloads.

use proptest::prelude::*;

use temporal_adb::core::{Action, ActiveDatabase, ManagerConfig, ParallelConfig, Rule};
use temporal_adb::engine::WriteOp;
use temporal_adb::ptl::parse_formula;
use temporal_adb::relation::{Database, Query, QueryDef, Value};

/// One step of a generated workload.
#[derive(Debug, Clone)]
enum Step {
    /// Set watch item `item` to `value` in a committed update.
    Set { item: usize, value: i64 },
    /// Advance the clock without touching data.
    Tick,
}

fn step_strategy(items: usize) -> impl Strategy<Value = Step> {
    prop_oneof![
        (0..items, 80i64..121).prop_map(|(item, value)| Step::Set { item, value }),
        Just(Step::Tick),
    ]
}

fn watch_db(n: usize) -> Database {
    let mut db = Database::new();
    for i in 0..n {
        let item = format!("w{i}");
        db.set_item(item.clone(), Value::Int(0));
        db.define_query(format!("w{i}_q"), QueryDef::new(0, Query::item(item)));
    }
    db
}

/// Builds the rule catalog: edge-triggered watches, temporal conditions,
/// and a constraint (so the parallel gate path runs too). `delta_dispatch`
/// stays on for the property tests (sparse and full advances must merge
/// identically across worker counts); `parallel_path_is_exercised` turns it
/// off because only full evaluations land in `worker_evaluations`.
fn build(n_rules: usize, workers: usize, delta_dispatch: bool) -> ActiveDatabase {
    let cfg = ManagerConfig {
        relevance_filtering: false,
        delta_dispatch,
        parallel: ParallelConfig {
            workers,
            // Force real partitioning even at small rule counts, and keep
            // the adaptive scheduler from demoting these tiny batches.
            min_rules_per_worker: 1,
            adaptive: false,
        },
        ..Default::default()
    };
    let mut adb = ActiveDatabase::with_config(watch_db(n_rules), cfg);
    for i in 0..n_rules {
        let f = match i % 3 {
            0 => parse_formula(&format!("w{i}_q() > 100")).unwrap(),
            1 => parse_formula(&format!("w{i}_q() > 100 and previously(w{i}_q() <= 100)")).unwrap(),
            _ => parse_formula(&format!("lasttime(w{i}_q() > 110)")).unwrap(),
        };
        adb.add_rule(Rule::trigger(format!("watch{i}"), f, Action::Notify))
            .unwrap();
    }
    // An integrity constraint that occasionally vetoes a commit: item 0
    // must never exceed 118.
    adb.add_rule(Rule::constraint(
        "cap0",
        parse_formula("w0_q() > 118").unwrap(),
    ))
    .unwrap();
    adb
}

/// Runs the workload and returns the full observable trace.
fn run(
    adb: &mut ActiveDatabase,
    steps: &[Step],
) -> (Vec<temporal_adb::core::FiringRecord>, Vec<bool>, Database) {
    let mut commit_results = Vec::new();
    for s in steps {
        adb.advance_clock(1).unwrap();
        match s {
            Step::Set { item, value } => {
                let r = adb.update([WriteOp::SetItem {
                    item: format!("w{item}"),
                    value: Value::Int(*value),
                }]);
                commit_results.push(r.is_ok());
            }
            Step::Tick => {
                adb.tick().unwrap();
                commit_results.push(true);
            }
        }
    }
    (adb.firings().to_vec(), commit_results, adb.db().clone())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Workers=4 produces the identical firing sequence — same records,
    /// same order — the same commit/abort pattern, and the same final
    /// database as workers=1.
    #[test]
    fn parallel_dispatch_is_deterministic(
        n_rules in 3usize..12,
        steps in proptest::collection::vec(step_strategy(12), 5..40),
    ) {
        let mut seq = build(n_rules, 1, true);
        let mut par = build(n_rules, 4, true);
        let (f_seq, c_seq, db_seq) = run(&mut seq, &steps);
        let (f_par, c_par, db_par) = run(&mut par, &steps);
        prop_assert_eq!(&f_seq, &f_par);
        prop_assert_eq!(&c_seq, &c_par);
        prop_assert_eq!(&db_seq, &db_par);
        // Shared counters agree; only the per-worker split may differ.
        let (ss, sp) = (seq.stats(), par.stats());
        prop_assert_eq!(ss.evaluations, sp.evaluations);
        prop_assert_eq!(ss.firings, sp.firings);
        prop_assert_eq!(ss.skips, sp.skips);
    }

    /// Worker count does not change behavior across the whole sweep the
    /// E13 bench uses.
    #[test]
    fn any_worker_count_matches_sequential(
        workers in 2usize..9,
        steps in proptest::collection::vec(step_strategy(6), 5..25),
    ) {
        let mut seq = build(6, 1, true);
        let mut par = build(6, workers, true);
        let (f_seq, c_seq, db_seq) = run(&mut seq, &steps);
        let (f_par, c_par, db_par) = run(&mut par, &steps);
        prop_assert_eq!(&f_seq, &f_par);
        prop_assert_eq!(&c_seq, &c_par);
        prop_assert_eq!(&db_seq, &db_par);
    }
}

/// Parallel runs actually took the multi-worker path (the property above
/// would pass vacuously if everything fell back to sequential).
#[test]
fn parallel_path_is_exercised() {
    let steps: Vec<Step> = (0..30)
        .map(|k| Step::Set {
            item: k % 8,
            value: 90 + (k as i64 % 25),
        })
        .collect();
    let mut par = build(8, 4, false);
    run(&mut par, &steps);
    let stats = par.stats();
    assert!(
        stats.parallel_batches > 0,
        "expected multi-worker batches, got {stats:?}"
    );
    assert!(
        stats.worker_evaluations.len() > 1,
        "expected >1 worker to evaluate rules, got {stats:?}"
    );
    assert!(stats.worker_evaluations.iter().skip(1).any(|&w| w > 0));
}
