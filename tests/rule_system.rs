//! Cross-crate integration tests of the full rule system: triggers,
//! constraints, aggregates, `executed`, coupling, batching, relevance
//! filtering — driven through the `ActiveDatabase` facade.

use temporal_adb::core::ManagerConfig;
use temporal_adb::prelude::*;

fn stock_adb() -> ActiveDatabase {
    let mut db = Database::new();
    db.create_relation(
        "STOCK",
        Relation::empty(Schema::untyped(&["name", "price"])),
    )
    .unwrap();
    db.define_query(
        "price",
        QueryDef::new(
            1,
            parse_query("select price from STOCK where name = $0").unwrap(),
        ),
    );
    db.define_query(
        "names",
        QueryDef::new(0, parse_query("select name from STOCK").unwrap()),
    );
    ActiveDatabase::new(db)
}

fn set_price(adb: &mut ActiveDatabase, name: &str, p: i64) {
    let old = adb
        .db()
        .relation("STOCK")
        .unwrap()
        .iter()
        .find(|t| t.get(0) == Some(&Value::str(name)))
        .cloned();
    let mut ops = Vec::new();
    if let Some(old) = old {
        ops.push(WriteOp::Delete {
            relation: "STOCK".into(),
            tuple: old,
        });
    }
    ops.push(WriteOp::Insert {
        relation: "STOCK".into(),
        tuple: tuple![name, p],
    });
    adb.advance_clock(1).unwrap();
    adb.update(ops).unwrap();
}

#[test]
fn multi_rule_interaction() {
    // Three rules watching the same ticker fire independently.
    let mut adb = stock_adb();
    adb.add_rule(Rule::trigger(
        "rise",
        parse_formula("[x := price(\"IBM\")] lasttime(price(\"IBM\") < x)").unwrap(),
        Action::Notify,
    ))
    .unwrap();
    adb.add_rule(Rule::trigger(
        "above_100",
        parse_formula("price(\"IBM\") > 100").unwrap(),
        Action::Notify,
    ))
    .unwrap();
    adb.add_rule(Rule::trigger(
        "ever_doubled",
        parse_formula("[x := price(\"IBM\")] previously(price(\"IBM\") <= 0.5 * x)").unwrap(),
        Action::Notify,
    ))
    .unwrap();

    for p in [50, 60, 55, 120, 80] {
        set_price(&mut adb, "IBM", p);
    }
    let count = |name: &str| adb.firings().iter().filter(|f| f.rule == name).count();
    // rise: 50→60 and 55→120 (edge-triggered: 60 fires, 120 fires anew
    // because the 55-state reset the edge).
    assert_eq!(count("rise"), 2);
    assert_eq!(count("above_100"), 1);
    // ever_doubled: first true at 120 (120 ≥ 2·55); stays true but edges once.
    assert_eq!(count("ever_doubled"), 1);
}

#[test]
fn level_triggered_rules_fire_repeatedly() {
    let mut adb = stock_adb();
    adb.add_rule(
        Rule::trigger(
            "high",
            parse_formula("price(\"IBM\") > 100").unwrap(),
            Action::Notify,
        )
        .level_triggered(),
    )
    .unwrap();
    for p in [150, 160, 170] {
        set_price(&mut adb, "IBM", p);
    }
    assert_eq!(
        adb.firings().len(),
        3,
        "level semantics: every satisfying state"
    );
}

#[test]
fn constraint_on_multi_statement_transaction() {
    let mut adb = stock_adb();
    adb.set_item("total", Value::Int(0)).unwrap();
    adb.define_query("total", QueryDef::new(0, Query::item("total")))
        .unwrap();
    adb.add_rule(Rule::constraint(
        "cap",
        parse_formula("total() <= 10").unwrap(),
    ))
    .unwrap();

    // A transaction built op by op; the commit is gated as a whole.
    adb.advance_clock(1).unwrap();
    let txn = adb.begin().unwrap();
    adb.write(
        txn,
        WriteOp::SetItem {
            item: "total".into(),
            value: Value::Int(5),
        },
    )
    .unwrap();
    adb.write(
        txn,
        WriteOp::SetItem {
            item: "total".into(),
            value: Value::Int(25),
        },
    )
    .unwrap();
    assert!(adb.commit(txn).is_err(), "final state 25 > 10");
    assert_eq!(adb.db().item("total").unwrap(), Value::Int(0));

    adb.advance_clock(1).unwrap();
    let txn = adb.begin().unwrap();
    adb.write(
        txn,
        WriteOp::SetItem {
            item: "total".into(),
            value: Value::Int(25),
        },
    )
    .unwrap();
    adb.write(
        txn,
        WriteOp::SetItem {
            item: "total".into(),
            value: Value::Int(7),
        },
    )
    .unwrap();
    adb.commit(txn).unwrap();
    assert_eq!(
        adb.db().item("total").unwrap(),
        Value::Int(7),
        "intermediate 25 is invisible: only the commit state is checked"
    );
}

#[test]
fn relevance_filtering_preserves_firings_for_event_rules() {
    for filtering in [false, true] {
        let mut db = Database::new();
        db.set_item("hits", Value::Int(0));
        db.define_query("hits", QueryDef::new(0, Query::item("hits")));
        let mut adb = ActiveDatabase::with_config(
            db,
            ManagerConfig {
                relevance_filtering: filtering,
                ..Default::default()
            },
        );
        adb.add_rule(Rule::trigger(
            "on_ping",
            parse_formula("@ping(u)").unwrap(),
            Action::Notify,
        ))
        .unwrap();
        adb.advance_clock(1).unwrap();
        adb.emit(Event::new("ping", vec![Value::str("a")])).unwrap();
        adb.emit(Event::simple("noise")).unwrap();
        adb.emit(Event::new("ping", vec![Value::str("b")])).unwrap();
        let users: Vec<String> = adb
            .firings()
            .iter()
            .map(|f| f.env["u"].to_string())
            .collect();
        assert_eq!(users, vec!["\"a\"", "\"b\""], "filtering={filtering}");
        if filtering {
            assert!(adb.stats().skips > 0, "the noise state was skipped");
        }
    }
}

#[test]
fn aggregate_with_start_reset() {
    // Average resets at @open events: avg(price; @open; @sample).
    let mut adb = stock_adb();
    adb.add_rule(Rule::trigger(
        "session_avg_high",
        parse_formula("avg(price(\"IBM\"); @open; @sample) > 100").unwrap(),
        Action::Notify,
    ))
    .unwrap();
    set_price(&mut adb, "IBM", 200);
    adb.emit(Event::simple("open")).unwrap();
    adb.emit(Event::simple("sample")).unwrap(); // avg = 200
    adb.tick().unwrap();
    assert_eq!(
        adb.firings()
            .iter()
            .filter(|f| f.rule == "session_avg_high")
            .count(),
        1
    );

    // A new session resets the window; a low sample keeps it below 100.
    set_price(&mut adb, "IBM", 10);
    adb.emit(Event::simple("open")).unwrap();
    adb.emit(Event::simple("sample")).unwrap(); // avg = 10
    adb.tick().unwrap();
    assert_eq!(
        adb.firings()
            .iter()
            .filter(|f| f.rule == "session_avg_high")
            .count(),
        1,
        "no new firing after the reset"
    );
    let avg = adb.db().item("__agg_session_avg_high_0_avg").unwrap();
    assert_eq!(avg, Value::float(10.0));
}

#[test]
fn executed_relation_rows_carry_params_and_time() {
    let mut adb = stock_adb();
    adb.add_rule(
        Rule::trigger(
            "spike",
            parse_formula("x in names() and price(x) > 100").unwrap(),
            Action::Notify,
        )
        .recording_executed(),
    )
    .unwrap();
    set_price(&mut adb, "IBM", 150);
    let t = adb.firings()[0].time;
    let rel = adb
        .db()
        .relation(&temporal_adb::core::executed_relation_name("spike"))
        .unwrap();
    assert_eq!(rel.len(), 1);
    assert!(rel.contains(&tuple!["IBM", t]));
}

#[test]
fn composite_action_two_steps_ten_apart() {
    // The Section 7 composite action A = A1; A2 with A2 ten units later.
    let mut adb = stock_adb();
    adb.set_item("a1_done", Value::Int(0)).unwrap();
    adb.set_item("a2_done", Value::Int(0)).unwrap();
    adb.add_rule(
        Rule::trigger(
            "r1",
            parse_formula("price(\"IBM\") > 100").unwrap(),
            Action::DbOps(vec![ActionOp::SetItem {
                item: "a1_done".into(),
                value: Term::lit(1i64),
            }]),
        )
        .recording_executed(),
    )
    .unwrap();
    adb.add_rule(Rule::trigger(
        "r2",
        parse_formula("executed(r1, s) and time = s + 10").unwrap(),
        Action::DbOps(vec![ActionOp::SetItem {
            item: "a2_done".into(),
            value: Term::lit(1i64),
        }]),
    ))
    .unwrap();

    set_price(&mut adb, "IBM", 150);
    assert_eq!(adb.db().item("a1_done").unwrap(), Value::Int(1));
    assert_eq!(adb.db().item("a2_done").unwrap(), Value::Int(0));
    let t0 = adb.now();
    adb.run_until(t0.plus(10), 1).unwrap();
    assert_eq!(adb.db().item("a2_done").unwrap(), Value::Int(1));
}

#[test]
fn batching_preserves_order_of_firings() {
    let mut adb = stock_adb();
    adb.add_rule(Rule::trigger(
        "any_update",
        parse_formula("@ping(k)").unwrap(),
        Action::Notify,
    ))
    .unwrap();
    adb.set_batch(3).unwrap();
    adb.advance_clock(1).unwrap();
    for k in 0..7i64 {
        adb.emit(Event::new("ping", vec![Value::Int(k)])).unwrap();
    }
    adb.flush().unwrap();
    let ks: Vec<i64> = adb
        .firings()
        .iter()
        .map(|f| f.env["k"].as_i64().unwrap())
        .collect();
    assert_eq!(
        ks,
        vec![0, 1, 2, 3, 4, 5, 6],
        "delayed but in order, none lost"
    );
}

#[test]
fn abort_state_is_visible_to_triggers() {
    // A trigger watching transaction_abort events sees gated rollbacks.
    let mut adb = stock_adb();
    adb.set_item("b", Value::Int(0)).unwrap();
    adb.define_query("b", QueryDef::new(0, Query::item("b")))
        .unwrap();
    adb.add_rule(Rule::constraint("pos", parse_formula("b() >= 0").unwrap()))
        .unwrap();
    adb.add_rule(Rule::trigger(
        "abort_watch",
        parse_formula(&format!(
            "@{}(x)",
            temporal_adb::engine::event::names::TXN_ABORT
        ))
        .unwrap(),
        Action::Notify,
    ))
    .unwrap();
    adb.advance_clock(1).unwrap();
    assert!(adb
        .update([WriteOp::SetItem {
            item: "b".into(),
            value: Value::Int(-5)
        }])
        .is_err());
    assert!(adb.firings().iter().any(|f| f.rule == "abort_watch"));
}
