//! Property tests: the incremental evaluator (Theorem 1) agrees with the
//! naive reference semantics on randomized histories and a grammar of
//! formulas — the central correctness property of the reproduction.

use proptest::prelude::*;

use temporal_adb::core::{EvalConfig, IncrementalEvaluator};
use temporal_adb::prelude::*;

/// Builds a stock engine and applies a price/event script. Each step is
/// either a price update or a user event.
#[derive(Debug, Clone)]
enum Step {
    Price(i64),
    Event(&'static str),
}

fn apply_script(steps: &[Step]) -> Engine {
    let mut db = Database::new();
    db.create_relation("STOCK", Relation::empty(Schema::untyped(&["name", "price"])))
        .unwrap();
    db.define_query(
        "price",
        QueryDef::new(1, parse_query("select price from STOCK where name = $0").unwrap()),
    );
    db.define_query("names", QueryDef::new(0, parse_query("select name from STOCK").unwrap()));
    let mut e = Engine::new(db);
    for s in steps {
        e.advance_clock(1).unwrap();
        match s {
            Step::Price(p) => {
                let old = e
                    .db()
                    .relation("STOCK")
                    .unwrap()
                    .iter()
                    .find(|t| t.get(0) == Some(&Value::str("IBM")))
                    .cloned();
                let mut ops = Vec::new();
                if let Some(old) = old {
                    ops.push(WriteOp::Delete { relation: "STOCK".into(), tuple: old });
                }
                ops.push(WriteOp::Insert {
                    relation: "STOCK".into(),
                    tuple: tuple!["IBM", *p],
                });
                e.apply_update(ops).unwrap();
            }
            Step::Event(name) => {
                e.emit_event(Event::simple(*name)).unwrap();
            }
        }
    }
    e
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        (1i64..60).prop_map(Step::Price),
        Just(Step::Event("ping")),
        Just(Step::Event("pong")),
    ]
}

/// A small grammar of *closed* PTL formulas over the stock schema.
fn formula_strategy() -> impl Strategy<Value = String> {
    let atom = prop_oneof![
        (1i64..60).prop_map(|c| format!("price(\"IBM\") > {c}")),
        (1i64..60).prop_map(|c| format!("price(\"IBM\") <= {c}")),
        Just("@ping".to_string()),
        Just("@pong".to_string()),
        (1i64..40).prop_map(|c| format!("time >= {c}")),
    ];
    let leaf = atom.prop_map(|a| format!("({a})"));
    let tree = leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(|f| format!("(not {f})")),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("({a} and {b})")),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("({a} or {b})")),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("({a} since {b})")),
            inner.clone().prop_map(|f| format!("(lasttime {f})")),
            inner.clone().prop_map(|f| format!("(previously {f})")),
            inner.clone().prop_map(|f| format!("(throughout_past {f})")),
        ]
    });
    // A single (optional) top-level assignment keeps the single-assignment
    // normal form while still exercising substitution.
    (tree, any::<bool>()).prop_map(|(f, assign)| {
        if assign {
            format!("[v := price(\"IBM\")] ({f} and (v > 0 or not (v > 0)))")
        } else {
            f
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Incremental firing == naive evaluation, at every state, for random
    /// closed formulas over random histories.
    #[test]
    fn incremental_matches_naive(
        steps in proptest::collection::vec(step_strategy(), 1..24),
        src in formula_strategy(),
    ) {
        let engine = apply_script(&steps);
        let f = parse_formula(&src).unwrap();
        let mut ev = IncrementalEvaluator::compile(&f).unwrap();
        for (i, s) in engine.history().iter() {
            let inc = !ev.advance_and_fire(s, i).unwrap().is_empty();
            let naive = temporal_adb::ptl::eval(&f, engine.history(), i, &Default::default())
                .unwrap();
            prop_assert_eq!(inc, naive, "formula `{}` state {}", src, i);
        }
    }

    /// Pruning never changes the verdict (it only discards clauses no
    /// future substitution can revive).
    #[test]
    fn pruning_is_semantics_preserving(
        steps in proptest::collection::vec(step_strategy(), 1..24),
    ) {
        let engine = apply_script(&steps);
        let f = parse_formula(
            "[t := time] [x := price(\"IBM\")] \
             previously(price(\"IBM\") <= 0.5 * x and time >= t - 7)",
        ).unwrap();
        let mut pruned = IncrementalEvaluator::compile(&f).unwrap();
        let mut unpruned = IncrementalEvaluator::new(
            &f,
            EvalConfig { pruning: false, max_residual: usize::MAX },
        ).unwrap();
        for (i, s) in engine.history().iter() {
            let a = !pruned.advance_and_fire(s, i).unwrap().is_empty();
            let b = !unpruned.advance_and_fire(s, i).unwrap().is_empty();
            prop_assert_eq!(a, b, "state {}", i);
        }
        prop_assert!(pruned.retained_size() <= unpruned.retained_size());
    }

    /// Free-variable binding extraction agrees with the oracle's generator
    /// enumeration.
    #[test]
    fn bindings_match_oracle(
        steps in proptest::collection::vec(step_strategy(), 1..16),
        threshold in 1i64..60,
    ) {
        let engine = apply_script(&steps);
        let f = parse_formula(
            &format!("x in names() and price(x) >= {threshold}"),
        ).unwrap();
        let mut ev = IncrementalEvaluator::compile(&f).unwrap();
        for (i, s) in engine.history().iter() {
            let inc: Vec<_> = ev
                .advance_and_fire(s, i)
                .unwrap()
                .into_iter()
                .map(|e| e["x"].clone())
                .collect();
            let naive: Vec<_> = temporal_adb::ptl::fire_bindings(
                &f, engine.history(), i, &Default::default(),
            )
            .unwrap()
            .into_iter()
            .map(|e| e["x"].clone())
            .collect();
            prop_assert_eq!(&inc, &naive, "state {}", i);
        }
    }

    /// The aux-relation strategy agrees with the formula-state strategy on
    /// decomposable conditions.
    #[test]
    fn auxrel_matches_incremental(
        steps in proptest::collection::vec(step_strategy(), 1..24),
        window in 3i64..12,
    ) {
        let engine = apply_script(&steps);
        let f = parse_formula(&format!(
            "[t := time] [x := price(\"IBM\")] \
             previously(price(\"IBM\") <= 0.5 * x and time >= t - {window})",
        )).unwrap();
        let mut inc = IncrementalEvaluator::compile(&f).unwrap();
        let mut aux = temporal_adb::core::AuxEvaluator::new(f.clone(), None).unwrap();
        for (i, s) in engine.history().iter() {
            let a = !inc.advance_and_fire(s, i).unwrap().is_empty();
            let b = aux.advance(s).unwrap();
            prop_assert_eq!(a, b, "state {}", i);
        }
    }
}
