//! Property tests: the incremental evaluator (Theorem 1) agrees with the
//! naive reference semantics on randomized histories and a grammar of
//! formulas — the central correctness property of the reproduction.

use proptest::prelude::*;

use temporal_adb::core::{EvalConfig, IncrementalEvaluator};
use temporal_adb::prelude::*;

/// Builds a stock engine and applies a price/event script. Each step is
/// either a price update or a user event.
#[derive(Debug, Clone)]
enum Step {
    Price(i64),
    Event(&'static str),
}

fn apply_script(steps: &[Step]) -> Engine {
    let mut db = Database::new();
    db.create_relation(
        "STOCK",
        Relation::empty(Schema::untyped(&["name", "price"])),
    )
    .unwrap();
    db.define_query(
        "price",
        QueryDef::new(
            1,
            parse_query("select price from STOCK where name = $0").unwrap(),
        ),
    );
    db.define_query(
        "names",
        QueryDef::new(0, parse_query("select name from STOCK").unwrap()),
    );
    let mut e = Engine::new(db);
    for s in steps {
        e.advance_clock(1).unwrap();
        match s {
            Step::Price(p) => {
                let old = e
                    .db()
                    .relation("STOCK")
                    .unwrap()
                    .iter()
                    .find(|t| t.get(0) == Some(&Value::str("IBM")))
                    .cloned();
                let mut ops = Vec::new();
                if let Some(old) = old {
                    ops.push(WriteOp::Delete {
                        relation: "STOCK".into(),
                        tuple: old,
                    });
                }
                ops.push(WriteOp::Insert {
                    relation: "STOCK".into(),
                    tuple: tuple!["IBM", *p],
                });
                e.apply_update(ops).unwrap();
            }
            Step::Event(name) => {
                e.emit_event(Event::simple(*name)).unwrap();
            }
        }
    }
    e
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        (1i64..60).prop_map(Step::Price),
        Just(Step::Event("ping")),
        Just(Step::Event("pong")),
    ]
}

/// A small grammar of *closed* PTL formulas over the stock schema.
fn formula_strategy() -> impl Strategy<Value = String> {
    let atom = prop_oneof![
        (1i64..60).prop_map(|c| format!("price(\"IBM\") > {c}")),
        (1i64..60).prop_map(|c| format!("price(\"IBM\") <= {c}")),
        Just("@ping".to_string()),
        Just("@pong".to_string()),
        (1i64..40).prop_map(|c| format!("time >= {c}")),
    ];
    let leaf = atom.prop_map(|a| format!("({a})"));
    let tree = leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(|f| format!("(not {f})")),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("({a} and {b})")),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("({a} or {b})")),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("({a} since {b})")),
            inner.clone().prop_map(|f| format!("(lasttime {f})")),
            inner.clone().prop_map(|f| format!("(previously {f})")),
            inner.clone().prop_map(|f| format!("(throughout_past {f})")),
        ]
    });
    // A single (optional) top-level assignment keeps the single-assignment
    // normal form while still exercising substitution.
    (tree, any::<bool>()).prop_map(|(f, assign)| {
        if assign {
            format!("[v := price(\"IBM\")] ({f} and (v > 0 or not (v > 0)))")
        } else {
            f
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Incremental firing == naive evaluation, at every state, for random
    /// closed formulas over random histories.
    #[test]
    fn incremental_matches_naive(
        steps in proptest::collection::vec(step_strategy(), 1..24),
        src in formula_strategy(),
    ) {
        let engine = apply_script(&steps);
        let f = parse_formula(&src).unwrap();
        let mut ev = IncrementalEvaluator::compile(&f).unwrap();
        for (i, s) in engine.history().iter() {
            let inc = !ev.advance_and_fire(s, i).unwrap().is_empty();
            let naive = temporal_adb::ptl::eval(&f, engine.history(), i, &Default::default())
                .unwrap();
            prop_assert_eq!(inc, naive, "formula `{}` state {}", src, i);
        }
    }

    /// Pruning never changes the verdict (it only discards clauses no
    /// future substitution can revive).
    #[test]
    fn pruning_is_semantics_preserving(
        steps in proptest::collection::vec(step_strategy(), 1..24),
    ) {
        let engine = apply_script(&steps);
        let f = parse_formula(
            "[t := time] [x := price(\"IBM\")] \
             previously(price(\"IBM\") <= 0.5 * x and time >= t - 7)",
        ).unwrap();
        let mut pruned = IncrementalEvaluator::compile(&f).unwrap();
        let mut unpruned = IncrementalEvaluator::new(
            &f,
            EvalConfig { pruning: false, max_residual: usize::MAX },
        ).unwrap();
        for (i, s) in engine.history().iter() {
            let a = !pruned.advance_and_fire(s, i).unwrap().is_empty();
            let b = !unpruned.advance_and_fire(s, i).unwrap().is_empty();
            prop_assert_eq!(a, b, "state {}", i);
        }
        prop_assert!(pruned.retained_size() <= unpruned.retained_size());
    }

    /// Free-variable binding extraction agrees with the oracle's generator
    /// enumeration.
    #[test]
    fn bindings_match_oracle(
        steps in proptest::collection::vec(step_strategy(), 1..16),
        threshold in 1i64..60,
    ) {
        let engine = apply_script(&steps);
        let f = parse_formula(
            &format!("x in names() and price(x) >= {threshold}"),
        ).unwrap();
        let mut ev = IncrementalEvaluator::compile(&f).unwrap();
        for (i, s) in engine.history().iter() {
            let inc: Vec<_> = ev
                .advance_and_fire(s, i)
                .unwrap()
                .into_iter()
                .map(|e| e["x"].clone())
                .collect();
            let naive: Vec<_> = temporal_adb::ptl::fire_bindings(
                &f, engine.history(), i, &Default::default(),
            )
            .unwrap()
            .into_iter()
            .map(|e| e["x"].clone())
            .collect();
            prop_assert_eq!(&inc, &naive, "state {}", i);
        }
    }

    /// The aux-relation strategy agrees with the formula-state strategy on
    /// decomposable conditions.
    #[test]
    fn auxrel_matches_incremental(
        steps in proptest::collection::vec(step_strategy(), 1..24),
        window in 3i64..12,
    ) {
        let engine = apply_script(&steps);
        let f = parse_formula(&format!(
            "[t := time] [x := price(\"IBM\")] \
             previously(price(\"IBM\") <= 0.5 * x and time >= t - {window})",
        )).unwrap();
        let mut inc = IncrementalEvaluator::compile(&f).unwrap();
        let mut aux = temporal_adb::core::AuxEvaluator::new(f.clone(), None).unwrap();
        for (i, s) in engine.history().iter() {
            let a = !inc.advance_and_fire(s, i).unwrap().is_empty();
            let b = aux.advance(s).unwrap();
            prop_assert_eq!(a, b, "state {}", i);
        }
    }
}

// ---- crash-recovery equivalence ---------------------------------------------

mod recovery {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use temporal_adb::prelude::{Action, ActiveDatabase, Rule};

    /// One externally driven operation against the facade.
    #[derive(Debug, Clone)]
    pub enum DStep {
        Price(i64),
        Event(&'static str),
        Balance(i64),
        Skip,
    }

    pub fn dstep_strategy() -> impl Strategy<Value = DStep> {
        prop_oneof![
            (1i64..60).prop_map(DStep::Price),
            Just(DStep::Event("ping")),
            // Negative balances are vetoed by the constraint — the veto
            // itself must replay identically.
            (-20i64..200).prop_map(DStep::Balance),
            Just(DStep::Skip),
        ]
    }

    pub fn base_db() -> Database {
        let mut db = Database::new();
        db.create_relation(
            "STOCK",
            Relation::empty(Schema::untyped(&["name", "price"])),
        )
        .unwrap();
        db.define_query(
            "price",
            QueryDef::new(
                1,
                parse_query("select price from STOCK where name = $0").unwrap(),
            ),
        );
        db.set_item("balance", Value::Int(100));
        db.define_query(
            "balance_q",
            QueryDef::new(0, parse_query("item balance").unwrap()),
        );
        db
    }

    pub fn catalog() -> Vec<Rule> {
        vec![
            Rule::trigger(
                "doubled",
                parse_formula(
                    "[t := time] [x := price(\"IBM\")] \
                     previously(price(\"IBM\") <= 0.5 * x and time >= t - 10)",
                )
                .unwrap(),
                Action::Notify,
            ),
            Rule::constraint("non_negative", parse_formula("balance_q() >= 0").unwrap()),
        ]
    }

    pub fn apply(a: &mut ActiveDatabase, s: &DStep) {
        a.advance_clock(1).unwrap();
        match s {
            DStep::Price(p) => {
                let old = a
                    .db()
                    .relation("STOCK")
                    .unwrap()
                    .iter()
                    .find_map(|t| (t.get(0) == Some(&Value::str("IBM"))).then(|| t.clone()));
                let mut ops = Vec::new();
                if let Some(old) = old {
                    ops.push(WriteOp::Delete {
                        relation: "STOCK".into(),
                        tuple: old,
                    });
                }
                ops.push(WriteOp::Insert {
                    relation: "STOCK".into(),
                    tuple: tuple!["IBM", *p],
                });
                a.update(ops).unwrap();
            }
            DStep::Event(name) => {
                a.emit(Event::simple(*name)).unwrap();
            }
            DStep::Balance(b) => {
                // Vetoed when negative: both runs see the same error.
                let _ = a.update([WriteOp::SetItem {
                    item: "balance".into(),
                    value: Value::Int(*b),
                }]);
            }
            DStep::Skip => {
                a.tick().unwrap();
            }
        }
    }

    pub fn assert_same(a: &ActiveDatabase, b: &ActiveDatabase) {
        assert_eq!(a.db(), b.db());
        assert_eq!(a.now(), b.now());
        assert_eq!(a.firings(), b.firings());
        assert_eq!(a.history().len(), b.history().len());
        assert_eq!(a.retained_size(), b.retained_size());
    }

    pub static DIR_COUNTER: AtomicUsize = AtomicUsize::new(0);

    pub fn unique_dir() -> std::path::PathBuf {
        let n = DIR_COUNTER.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("tdb-prop-{}-{n}", std::process::id()))
    }
}

// ---- temporal aggregates: nesting + recovery --------------------------------

mod aggregates {
    use super::*;
    use temporal_adb::prelude::{Action, ActiveDatabase, Rule};

    /// Catalog with a flat temporal aggregate and a *nested* one: the outer
    /// `avg` samples only once the inner `count` of `@ping` samples has
    /// reached 2 (Section 6.1.1 allows aggregates in the start/sampling
    /// formulas; nested occurrences are rewritten first).
    pub fn catalog() -> Vec<Rule> {
        vec![
            Rule::trigger(
                "flat_avg",
                parse_formula("avg(price(\"IBM\"); time = 0; @ping) > 30").unwrap(),
                Action::Notify,
            ),
            Rule::trigger(
                "nested_avg",
                parse_formula(
                    "avg(price(\"IBM\"); time = 0; \
                     count(price(\"IBM\"); time = 0; @ping) >= 2) > 30",
                )
                .unwrap(),
                Action::Notify,
            ),
        ]
    }

    pub fn agg_step_strategy() -> impl Strategy<Value = super::recovery::DStep> {
        use super::recovery::DStep;
        prop_oneof![
            (1i64..60).prop_map(DStep::Price),
            Just(DStep::Event("ping")),
            Just(DStep::Skip),
        ]
    }

    pub fn build_volatile() -> ActiveDatabase {
        let mut adb = ActiveDatabase::new(super::recovery::base_db());
        for r in catalog() {
            adb.add_rule(r).unwrap();
        }
        adb
    }
}

/// Named regression: the nested aggregate's firing schedule on a fixed
/// script. Sampling formulas are compiled to edge-triggered helper rules
/// (a level-triggered data condition would re-sample its own register
/// write and cascade), so the outer `avg` samples the price exactly once —
/// on the rising edge of the inner `count` reaching 2 — one state after
/// the second `@ping` (helper actions commit as follow-up transactions).
#[test]
fn nested_temporal_aggregate_fires_on_inner_threshold() {
    use recovery::DStep;
    let mut adb = aggregates::build_volatile();
    let script = [
        DStep::Price(50),
        DStep::Event("ping"), // inner count samples: 1
        DStep::Price(40),
        DStep::Event("ping"), // inner count samples: 2 (visible next state)
        DStep::Skip,
        DStep::Price(10), // too late to matter: the sample is already taken
        DStep::Skip,
    ];
    for s in &script {
        recovery::apply(&mut adb, s);
    }
    let fired = |rule: &str| -> Vec<i64> {
        adb.firings()
            .iter()
            .filter(|f| f.rule == rule)
            .map(|f| f.time.0)
            .collect()
    };
    let flat = fired("flat_avg");
    let nested = fired("nested_avg");
    assert_eq!(
        flat.len(),
        1,
        "flat aggregate fires once, when its first sample (50) lands: {flat:?}"
    );
    assert_eq!(
        nested.len(),
        1,
        "nested aggregate fires once, on the sample taken at the inner \
         count's rising edge (price 40 > 30): {nested:?}"
    );
    assert!(
        nested[0] > flat[0],
        "the nested schedule must trail the flat one (inner register edge \
         plus one follow-up state): flat {flat:?}, nested {nested:?}"
    );
    // Pin the exact clock times so any change to the follow-up-transaction
    // cadence of the Section 6.1.1 rewriting shows up as a diff here.
    assert_eq!((flat[0], nested[0]), (3, 9), "firing clock times moved");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Recovery mid-aggregate: a durable run with flat + nested temporal
    /// aggregates crashes at a random cut (often between the inner
    /// aggregate's samples) and recovers; the registers (database items)
    /// and helper-rule formula states must restore exactly, keeping the
    /// recovered system in lockstep with an uninterrupted volatile run.
    #[test]
    fn recovery_mid_aggregate_is_equivalent_at_any_cut(
        steps in proptest::collection::vec(aggregates::agg_step_strategy(), 4..24),
        cut_pct in 0usize..100,
        every_ops in 1usize..4,
    ) {
        use recovery::*;
        use temporal_adb::core::ManagerConfig;
        use temporal_adb::prelude::ActiveDatabase;
        use temporal_adb::storage::{recover, CheckpointPolicy, FileStorage};

        let cut = steps.len() * cut_pct / 100;
        let dir = unique_dir();
        let _ = std::fs::remove_dir_all(&dir);

        let policy = CheckpointPolicy { every_ops, every_bytes: 0, sync: tdb_core::SyncPolicy::Never };
        let storage = FileStorage::create(&dir, policy).unwrap();
        let mut durable = ActiveDatabase::with_storage(
            base_db(), ManagerConfig::default(), Box::new(storage),
        ).unwrap();
        for r in aggregates::catalog() {
            durable.add_rule(r).unwrap();
        }
        let mut volatile = aggregates::build_volatile();
        for s in &steps[..cut] {
            apply(&mut durable, s);
            apply(&mut volatile, s);
        }
        drop(durable); // crash, possibly between a reset and its samples

        let rec = recover(&dir, &aggregates::catalog(), ManagerConfig::default()).unwrap();
        prop_assert!(rec.report.bad_checkpoints.is_empty());
        let mut recovered = rec.adb;
        assert_same(&recovered, &volatile);

        for s in &steps[cut..] {
            apply(&mut recovered, s);
            apply(&mut volatile, s);
        }
        assert_same(&recovered, &volatile);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Crash-recovery equivalence at a random cut point: a durable run
    /// killed after `cut` ops and recovered from disk is indistinguishable
    /// from a volatile run of the same prefix — and both stay in lockstep
    /// over the remaining suffix.
    #[test]
    fn recovery_is_equivalent_at_any_cut(
        steps in proptest::collection::vec(recovery::dstep_strategy(), 1..20),
        cut_pct in 0usize..100,
        every_ops in 1usize..5,
    ) {
        use recovery::*;
        use temporal_adb::core::ManagerConfig;
        use temporal_adb::prelude::ActiveDatabase;
        use temporal_adb::storage::{recover, CheckpointPolicy, FileStorage};

        let cut = steps.len() * cut_pct / 100;
        let dir = unique_dir();
        let _ = std::fs::remove_dir_all(&dir);

        let policy = CheckpointPolicy { every_ops, every_bytes: 0, sync: tdb_core::SyncPolicy::Never };
        let storage = FileStorage::create(&dir, policy).unwrap();
        let mut durable = ActiveDatabase::with_storage(
            base_db(), ManagerConfig::default(), Box::new(storage),
        ).unwrap();
        let mut volatile = ActiveDatabase::new(base_db());
        for r in catalog() {
            durable.add_rule(r.clone()).unwrap();
            volatile.add_rule(r).unwrap();
        }
        for s in &steps[..cut] {
            apply(&mut durable, s);
            apply(&mut volatile, s);
        }
        drop(durable); // crash at the cut point

        let rec = recover(&dir, &catalog(), ManagerConfig::default()).unwrap();
        prop_assert!(rec.report.bad_checkpoints.is_empty());
        let mut recovered = rec.adb;
        assert_same(&recovered, &volatile);

        for s in &steps[cut..] {
            apply(&mut recovered, s);
            apply(&mut volatile, s);
        }
        assert_same(&recovered, &volatile);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
