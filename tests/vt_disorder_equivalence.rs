//! Disorder-fuzz property suite for watermarked out-of-order ingestion
//! (Section 9 streaming; see DESIGN.md §16):
//!
//! * **arrival-independence** — the definite (confirmed) firing log of a
//!   Δ-bounded out-of-order ingest is byte-identical to an in-order oracle
//!   replay of the same valid-time history, over a seeded (Δ × disorder
//!   rate) grid and over proptest-generated arbitrary bounded
//!   permutations;
//! * **stream soundness** — every tentative announcement settles to
//!   exactly one confirmation or retraction once the watermark passes its
//!   instant, never before its announcement and never twice;
//! * **Theorem 2 cross-check** — online and offline satisfaction agree on
//!   the collapsed committed history at every sampled watermark step, for
//!   the stream's own rule formulas;
//! * **plain-database equivalence** — at disorder 0 the vt stream's
//!   confirmed log equals a plain (transaction-time) `ActiveDatabase` run
//!   over the same history, state for state.

use proptest::prelude::*;

use temporal_adb::core::{
    theorem2_check, Action, ActiveDatabase, Rule, VtActiveDatabase, VtFiringEvent, VtMode, VtPhase,
};
use temporal_adb::engine::WriteOp;
use temporal_adb::ptl::parse_formula;
use temporal_adb::relation::{Database, Query, QueryDef, Timestamp, Value};

use tdb_bench::workload::{disorder_events, DisorderEvent};

/// Threshold rule (fires at every satisfying state) + rising-edge rule
/// (the one a late arrival can revise: with unique valid instants, a late
/// insert only *adds* a state, so plain per-state verdicts never change,
/// but `lasttime` predecessors do).
fn facade(max_delay: i64) -> VtActiveDatabase {
    let mut base = Database::new();
    base.set_item("n", Value::Int(0));
    base.define_query("n", QueryDef::new(0, Query::item("n")));
    let mut vt = VtActiveDatabase::new_streaming(base, max_delay);
    vt.add_trigger(
        "high",
        parse_formula("n() >= 60").unwrap(),
        VtMode::Tentative,
    )
    .unwrap();
    vt.add_trigger(
        "rise",
        parse_formula("n() >= 60 and lasttime(n() < 60)").unwrap(),
        VtMode::Tentative,
    )
    .unwrap();
    vt
}

fn set_n(value: i64) -> WriteOp {
    WriteOp::SetItem {
        item: "n".into(),
        value: Value::Int(value),
    }
}

/// Ingests `events` in arrival order, returns the full stream log.
fn run_stream(vt: &mut VtActiveDatabase, events: &[DisorderEvent]) -> Vec<VtFiringEvent> {
    let mut log = Vec::new();
    for ev in events {
        log.extend(vt.advance_to(ev.arrival).unwrap());
        log.extend(vt.ingest(vec![set_n(ev.value)], ev.valid).unwrap());
    }
    // Push the watermark strictly past every ingested instant.
    let end = events.iter().map(|e| e.valid.0).max().unwrap_or(0);
    log.extend(
        vt.advance_to(Timestamp(end + vt.engine().max_delay() + 2))
            .unwrap(),
    );
    log
}

/// The same history replayed with arrival = valid (no disorder).
fn in_order(events: &[DisorderEvent]) -> Vec<DisorderEvent> {
    let mut sorted: Vec<DisorderEvent> = events
        .iter()
        .map(|e| DisorderEvent {
            arrival: e.valid,
            ..*e
        })
        .collect();
    sorted.sort_by_key(|e| e.valid);
    sorted
}

// ===== arrival-independence over the seeded grid ===========================

#[test]
fn definite_log_is_arrival_independent_over_the_grid() {
    let mut cross_delta: Vec<(i64, Vec<(String, Timestamp)>)> = Vec::new();
    for &delta in &[0i64, 5, 50] {
        for &rate in &[0u32, 200, 800] {
            let events = disorder_events(1000, delta, rate, 0xD150_0DE4);
            let mut vt = facade(delta);
            run_stream(&mut vt, &events);
            let mut oracle = facade(delta);
            run_stream(&mut oracle, &in_order(&events));
            // Byte-identical: every FiringRecord field, including env and
            // state index, not just counts.
            assert_eq!(
                vt.confirmed_firings(),
                oracle.confirmed_firings(),
                "Δ={delta} rate={rate}‰: definite log depends on arrival order"
            );
            if rate == 0 {
                cross_delta.push((
                    delta,
                    vt.confirmed_firings()
                        .iter()
                        .map(|f| (f.rule.clone(), f.time))
                        .collect(),
                ));
            }
        }
    }
    // The generator fixes the value history across cells, so the definite
    // stream is also the same *semantically* across Δ (state indices may
    // differ with the compaction horizon, (rule, time) must not).
    for w in cross_delta.windows(2) {
        assert_eq!(
            w[0].1, w[1].1,
            "definite (rule, time) stream differs between Δ={} and Δ={}",
            w[0].0, w[1].0
        );
    }
}

// ===== arrival-independence under arbitrary Δ-bounded permutations =========

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any per-event delay vector within Δ yields the same definite log as
    /// the in-order replay — not just the seeded generator's delays.
    #[test]
    fn definite_log_is_arrival_independent_under_any_bounded_permutation(
        delta in 1i64..8,
        spec in proptest::collection::vec((0i64..100, 0i64..8), 1..48),
    ) {
        let events: Vec<DisorderEvent> = {
            let mut evs: Vec<DisorderEvent> = spec
                .iter()
                .enumerate()
                .map(|(i, &(value, delay))| {
                    let valid = Timestamp(i as i64 + 1);
                    DisorderEvent {
                        seq: i,
                        valid,
                        arrival: Timestamp(valid.0 + delay.min(delta)),
                        value,
                    }
                })
                .collect();
            evs.sort_by_key(|e| (e.arrival, e.seq));
            evs
        };
        let mut vt = facade(delta);
        run_stream(&mut vt, &events);
        let mut oracle = facade(delta);
        run_stream(&mut oracle, &in_order(&events));
        prop_assert_eq!(vt.confirmed_firings(), oracle.confirmed_firings());
    }
}

// ===== stream soundness ====================================================

/// Replays a stream log checking the announce/settle protocol per
/// `(rule, time)` key; returns the number of keys still outstanding.
fn check_settlement(log: &[VtFiringEvent]) -> usize {
    use std::collections::HashMap;
    let mut outstanding: HashMap<(String, Timestamp), usize> = HashMap::new();
    for e in log {
        let key = (e.record.rule.clone(), e.record.time);
        match e.phase {
            VtPhase::Tentative => *outstanding.entry(key).or_insert(0) += 1,
            VtPhase::Confirmed | VtPhase::Retracted => {
                let n = outstanding
                    .get_mut(&key)
                    .unwrap_or_else(|| panic!("{key:?} settled without an announcement"));
                assert!(*n > 0, "{key:?} settled twice");
                *n -= 1;
            }
        }
    }
    outstanding.values().filter(|&&n| n > 0).count()
}

#[test]
fn every_tentative_firing_settles_exactly_once() {
    for &(delta, rate) in &[(5i64, 800u32), (50, 200), (0, 0)] {
        let events = disorder_events(1000, delta, rate, 0x5E77_1E5E);
        let mut vt = facade(delta);
        let log = run_stream(&mut vt, &events);
        assert_eq!(
            check_settlement(&log),
            0,
            "Δ={delta} rate={rate}‰: unsettled tentative firings remain"
        );
        assert_eq!(vt.pending_tentative(), 0);
        // The settled log and the facade's own confirmed view agree.
        let confirmed_in_log = log.iter().filter(|e| e.phase == VtPhase::Confirmed).count();
        assert_eq!(confirmed_in_log, vt.confirmed_firings().len());
        if rate == 0 || delta == 0 {
            assert!(
                log.iter().all(|e| e.phase != VtPhase::Retracted),
                "an in-order stream must never retract"
            );
        }
    }
}

#[test]
fn nothing_settles_before_the_watermark_passes_it() {
    let events = disorder_events(400, 5, 800, 0xBEEF);
    let mut vt = facade(5);
    for ev in &events {
        // Settlements produced by this step may decide any instant the
        // *new* watermark has passed, but never one at or above it.
        let mut step = vt.advance_to(ev.arrival).unwrap();
        step.extend(vt.ingest(vec![set_n(ev.value)], ev.valid).unwrap());
        for e in &step {
            if e.phase == VtPhase::Confirmed {
                assert!(
                    e.record.time < vt.watermark(),
                    "confirmed {:?} at or above the watermark {:?}",
                    e.record.time,
                    vt.watermark()
                );
            }
        }
    }
}

// ===== Theorem 2 cross-check at watermark steps ============================

#[test]
fn theorem2_agrees_at_every_sampled_watermark_step() {
    let formulas = [
        parse_formula("n() >= 60").unwrap(),
        parse_formula("n() >= 60 and lasttime(n() < 60)").unwrap(),
        parse_formula("previously(n() >= 90)").unwrap(),
    ];
    let events = disorder_events(400, 5, 800, 0x7E02);
    let mut vt = facade(5);
    let mut samples = 0;
    for (i, ev) in events.iter().enumerate() {
        vt.advance_to(ev.arrival).unwrap();
        vt.ingest(vec![set_n(ev.value)], ev.valid).unwrap();
        if i % 25 == 0 {
            for f in &formulas {
                let (online, offline) = theorem2_check(vt.engine(), f).unwrap();
                assert_eq!(
                    online,
                    offline,
                    "online/offline disagree at watermark {:?} on {f:?}",
                    vt.watermark()
                );
            }
            samples += 1;
        }
    }
    assert!(samples >= 16, "need real coverage, got {samples} samples");
}

#[test]
fn offline_report_tracks_registered_constraints_under_disorder() {
    let mut vt = facade(5);
    // Values are drawn from 0..100, so both constraints hold throughout.
    vt.add_constraint("cap", parse_formula("n() <= 99").unwrap())
        .unwrap();
    vt.add_constraint("floor", parse_formula("n() >= 0").unwrap())
        .unwrap();
    let events = disorder_events(300, 5, 800, 0x0FF1);
    for (i, ev) in events.iter().enumerate() {
        vt.advance_to(ev.arrival).unwrap();
        vt.ingest(vec![set_n(ev.value)], ev.valid).unwrap();
        if i % 50 == 0 {
            let report = vt.offline_report().unwrap();
            assert_eq!(report.len(), 2);
            assert!(
                report.iter().all(|(_, sat)| *sat),
                "a never-violated constraint reported offline-unsatisfied: {report:?}"
            );
        }
    }
}

// ===== plain-database equivalence at disorder 0 ============================

#[test]
fn vt_stream_at_disorder_zero_equals_plain_active_database() {
    let events = disorder_events(600, 0, 0, 0x90A1);

    // Valid-time side: Δ = 0, in-order by construction.
    let mut vt = facade(0);
    run_stream(&mut vt, &events);
    let vt_log: Vec<(String, Timestamp)> = vt
        .confirmed_firings()
        .iter()
        .map(|f| (f.rule.clone(), f.time))
        .collect();

    // Plain transaction-time side: the same history, one commit per tick.
    // The vt runners are level-triggered (they fire at every satisfying
    // state), so the plain rules must be too.
    let mut base = Database::new();
    base.set_item("n", Value::Int(0));
    base.define_query("n", QueryDef::new(0, Query::item("n")));
    let mut adb = ActiveDatabase::new(base);
    adb.add_rule(
        Rule::trigger("high", parse_formula("n() >= 60").unwrap(), Action::Notify)
            .level_triggered(),
    )
    .unwrap();
    adb.add_rule(
        Rule::trigger(
            "rise",
            parse_formula("n() >= 60 and lasttime(n() < 60)").unwrap(),
            Action::Notify,
        )
        .level_triggered(),
    )
    .unwrap();
    let mut in_order = events.clone();
    in_order.sort_by_key(|e| e.valid);
    for ev in &in_order {
        adb.advance_clock_to(ev.valid).unwrap();
        adb.update([set_n(ev.value)]).unwrap();
    }
    let plain_log: Vec<(String, Timestamp)> = adb
        .firings()
        .iter()
        .map(|f| (f.rule.clone(), f.time))
        .collect();

    assert_eq!(
        vt_log.len(),
        plain_log.len(),
        "stream lengths diverge: vt {} vs plain {}",
        vt_log.len(),
        plain_log.len()
    );
    // Same multiset per instant; dispatch order within one instant is an
    // implementation detail of each side.
    let sort = |mut v: Vec<(String, Timestamp)>| {
        v.sort_by(|a, b| (a.1, &a.0).cmp(&(b.1, &b.0)));
        v
    };
    assert_eq!(sort(vt_log), sort(plain_log));
}
