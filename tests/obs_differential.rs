//! Deterministic differential fuzzing of the whole dispatch stack, with the
//! observability registry as a second oracle.
//!
//! A seeded random rule catalog (rising-edge thresholds, bounded windows,
//! event `Since` chains, temporal aggregates) runs through a 500+-state
//! seeded history under all 8 combinations of {delta dispatch off/on} ×
//! {sequential / forced 4-worker parallel} × {no WAL / in-memory WAL}. The
//! checks:
//!
//! * firings, commit/abort pattern and final database are byte-identical
//!   across every combination;
//! * the non-aggregate firings equal a `tdb_baseline::NaiveDetector`
//!   full-history re-evaluation with the manager's edge-trigger filter
//!   replayed on top (aggregate rules are excluded: their Section 6.1.1
//!   rewriting is *delayed by one state* by design, so they are compared
//!   across configurations instead);
//! * per-run metrics invariants hold on a private registry: every rule
//!   visit is accounted for by exactly one dispatch outcome, the rule
//!   evaluation histogram count equals the full-evaluation counter (one
//!   timer start per full evaluation), the firings counter equals the
//!   firing log, and the registry mirrors `ManagerStats`;
//! * global free-function counters (atom memo, read-set fan-out) stay
//!   consistent: memo hits never exceed lookups.

use std::sync::Arc;

use temporal_adb::baseline::NaiveDetector;
use temporal_adb::core::{
    ActiveDatabase, FiringRecord, ManagerConfig, ManagerStats, ParallelConfig, Rule,
    SharedMemorySink,
};
use temporal_adb::engine::History;
use temporal_adb::obs::{ObsConfig, Registry, RegistrySnapshot};
use temporal_adb::relation::Database;

use tdb_bench::workload::{
    apply_diff_step, diff_step_ops, differential_cascade_rules, differential_db,
    differential_rules, differential_steps, differential_stratified_rules, differential_writer_db,
    DIFF_RELATIONS,
};
use temporal_adb::core::{BatchCertificate, CascadeMode};

const STEP_SEED: u64 = 0xD1FF_5EED;
const RULE_SEED: u64 = 0x0B5E_CA4E;
const STEPS: usize = 520;
const RULES: usize = 12;

/// The full observable trace of one configuration, plus its metrics.
struct RunOut {
    firings: Vec<FiringRecord>,
    commits: Vec<bool>,
    db: Database,
    history: History,
    stats: ManagerStats,
    snap: RegistrySnapshot,
}

fn run_combo(delta_dispatch: bool, workers: usize, wal: bool) -> RunOut {
    run_combo_with(
        &differential_rules(RULE_SEED, RULES),
        delta_dispatch,
        workers,
        wal,
    )
}

fn run_combo_with(rules: &[Rule], delta_dispatch: bool, workers: usize, wal: bool) -> RunOut {
    let registry = Arc::new(Registry::new());
    let cfg = ManagerConfig {
        delta_dispatch,
        parallel: ParallelConfig {
            workers,
            min_rules_per_worker: 1,
            adaptive: false,
        },
        obs: ObsConfig::with_registry(registry.clone()),
        ..Default::default()
    };
    let mut adb = if wal {
        ActiveDatabase::with_storage(differential_db(), cfg, Box::new(SharedMemorySink::new(64)))
            .unwrap()
    } else {
        ActiveDatabase::with_config(differential_db(), cfg)
    };
    for r in rules {
        adb.add_rule(r.clone()).unwrap();
    }
    let commits: Vec<bool> = differential_steps(STEP_SEED, STEPS)
        .iter()
        .map(|s| apply_diff_step(&mut adb, s))
        .collect();
    RunOut {
        firings: adb.firings().to_vec(),
        commits,
        db: adb.db().clone(),
        history: adb.history().clone(),
        stats: adb.stats(),
        snap: registry.snapshot(),
    }
}

/// Replays the manager's firing semantics over `history` with one
/// [`NaiveDetector`] per rule: state 0 primes the detectors (the manager
/// discards firings at registration time), every later state fires the
/// sorted satisfying bindings that were not already satisfied at the
/// previous state (the rising-edge filter).
fn naive_firings(rules: &[Rule], history: &History) -> Vec<FiringRecord> {
    let mut detectors: Vec<NaiveDetector> = rules
        .iter()
        .map(|r| NaiveDetector::new(r.condition.clone()))
        .collect();
    let mut last_envs: Vec<Vec<temporal_adb::ptl::Env>> = vec![Vec::new(); rules.len()];
    let mut out = Vec::new();
    let mut states = history.iter();
    let (_, s0) = states
        .next()
        .expect("history starts with the initial state");
    for d in &mut detectors {
        d.observe(s0);
    }
    for (idx, s) in states {
        for (k, rule) in rules.iter().enumerate() {
            let mut satisfied = detectors[k].advance_and_fire(s).unwrap();
            satisfied.sort();
            satisfied.dedup();
            if satisfied.is_empty() {
                last_envs[k].clear();
                continue;
            }
            for env in &satisfied {
                if rule.edge_triggered && last_envs[k].binary_search(env).is_ok() {
                    continue;
                }
                out.push(FiringRecord {
                    rule: rule.name.clone(),
                    state_index: idx,
                    time: s.time(),
                    env: env.clone(),
                });
            }
            last_envs[k] = satisfied;
        }
    }
    out
}

/// The per-run metric invariants every configuration must satisfy.
fn assert_metric_invariants(label: &str, out: &RunOut) {
    let c = |name: &str| out.snap.counter(name).unwrap_or(0);
    let visits = c("tdb_dispatch_rule_visits_total");
    let full = c("tdb_dispatch_full_evaluations_total");
    let sparse = c("tdb_dispatch_sparse_advances_total");
    let fixpoint = c("tdb_dispatch_fixpoint_skipped_rules_total");
    let gated = c("tdb_dispatch_gated_constraint_skips_total");
    let relevance = c("tdb_dispatch_relevance_skipped_rules_total");
    assert!(visits > 0, "{label}: dispatch never ran");
    assert_eq!(
        visits,
        gated + relevance + full + sparse + fixpoint,
        "{label}: every rule visit must resolve to exactly one outcome"
    );
    let commits = c("tdb_dispatch_commits_total");
    assert!(commits > 0, "{label}: no commit states dispatched");
    assert_eq!(
        visits % commits,
        0,
        "{label}: each dispatch visits the whole catalog"
    );

    let eval_hist = out
        .snap
        .histogram("tdb_rule_eval_ns")
        .expect("rule evaluation histogram registered");
    assert_eq!(
        eval_hist.count, full,
        "{label}: one evaluation timer per full evaluation"
    );
    let batch_hist = out
        .snap
        .histogram("tdb_parallel_batch_ns")
        .expect("batch histogram registered");
    assert!(batch_hist.count > 0, "{label}: batch timings recorded");

    assert_eq!(
        c("tdb_firings_total"),
        out.firings.len() as u64,
        "{label}: firings counter equals the firing log"
    );

    // The registry mirrors the legacy `ManagerStats` counters exactly
    // (the checkpoint codec still serializes the struct; the registry is
    // additive alongside it).
    assert_eq!(full, out.stats.evaluations, "{label}: evaluations");
    assert_eq!(
        sparse + fixpoint,
        out.stats.sparse_advances,
        "{label}: sparse advances (registry splits out fixpoint skips)"
    );
    assert_eq!(
        c("tdb_parallel_batches_total"),
        out.stats.parallel_batches,
        "{label}: parallel batches"
    );
    assert_eq!(
        c("tdb_parallel_adaptive_seq_batches_total"),
        out.stats.adaptive_seq_batches,
        "{label}: adaptive demotions"
    );
    assert_eq!(
        out.snap
            .counter_family("tdb_parallel_worker_evaluations_total"),
        out.stats.worker_evaluations.iter().sum::<u64>(),
        "{label}: per-worker evaluation totals"
    );
}

#[test]
fn eight_combos_agree_and_match_the_naive_oracle() {
    // Free-function instrumentation (atom memo, read-set fan-out, WAL)
    // records into the process-global registry only while the global flag
    // is on; those counters are monotone, so snapshots stay comparable
    // even with other tests running in this binary.
    temporal_adb::obs::set_enabled(true);
    let global_before = temporal_adb::obs::global().snapshot();

    let reference = run_combo(false, 1, false);
    assert!(
        !reference.firings.is_empty(),
        "the seeded workload must produce firings (dead differential test otherwise)"
    );
    assert_eq!(reference.commits.len(), STEPS);
    assert_eq!(
        reference.history.retained(),
        reference.history.len(),
        "the oracle walks the full history; nothing may be evicted"
    );

    // Oracle: naive full-history re-evaluation of every non-aggregate rule.
    let rules = differential_rules(RULE_SEED, RULES);
    let oracle_rules: Vec<Rule> = rules
        .iter()
        .filter(|r| r.name.starts_with("ptl"))
        .cloned()
        .collect();
    assert!(
        oracle_rules.len() >= RULES / 2,
        "most generated rules must be naive-comparable"
    );
    let expected = naive_firings(&oracle_rules, &reference.history);
    let oracle_names: Vec<&str> = oracle_rules.iter().map(|r| r.name.as_str()).collect();
    let got: Vec<FiringRecord> = reference
        .firings
        .iter()
        .filter(|f| oracle_names.contains(&f.rule.as_str()))
        .cloned()
        .collect();
    assert!(
        !expected.is_empty(),
        "the oracle subset must fire (dead oracle otherwise)"
    );
    assert_eq!(
        got, expected,
        "incremental dispatch diverged from the naive full-history oracle"
    );

    // All eight combinations produce byte-identical observable traces.
    assert_metric_invariants("delta=off workers=1 wal=off", &reference);
    for delta in [false, true] {
        for workers in [1usize, 4] {
            for wal in [false, true] {
                if (delta, workers, wal) == (false, 1, false) {
                    continue;
                }
                let label = format!("delta={delta} workers={workers} wal={wal}");
                let out = run_combo(delta, workers, wal);
                assert_eq!(out.firings, reference.firings, "{label}: firings diverge");
                assert_eq!(out.commits, reference.commits, "{label}: commits diverge");
                assert_eq!(out.db, reference.db, "{label}: final databases diverge");
                assert_metric_invariants(&label, &out);
                if delta {
                    assert!(
                        out.snap
                            .counter("tdb_dispatch_sparse_advances_total")
                            .unwrap_or(0)
                            + out
                                .snap
                                .counter("tdb_dispatch_fixpoint_skipped_rules_total")
                                .unwrap_or(0)
                            > 0,
                        "{label}: delta dispatch must actually take the sparse path"
                    );
                }
                if workers > 1 {
                    assert!(
                        out.stats.parallel_batches > 0,
                        "{label}: forced 4-worker config never ran a parallel batch"
                    );
                }
            }
        }
    }

    // Global free-function counters: monotone and internally consistent.
    let global_after = temporal_adb::obs::global().snapshot();
    let delta_of = |name: &str| {
        global_after.counter(name).unwrap_or(0) - global_before.counter(name).unwrap_or(0)
    };
    let lookups = delta_of("tdb_atom_memo_lookups_total");
    let hits = delta_of("tdb_atom_memo_hits_total");
    assert!(lookups > 0, "atom memo never consulted");
    assert!(hits <= lookups, "memo hits exceed lookups");
    assert!(
        delta_of("tdb_states_total") > 0,
        "state counter never advanced"
    );
    assert!(
        delta_of("tdb_wal_logical_ops_total") > 0,
        "WAL combos must record logical appends"
    );
    assert!(
        delta_of("tdb_wal_checkpoints_total") > 0,
        "the in-memory sink's checkpoint cadence must have triggered"
    );
    assert!(
        delta_of("tdb_delta_touched_names_total") > 0,
        "delta summaries never counted"
    );
}

/// Reruns the seeded workload through `ActiveDatabase::commit_batch`,
/// regrouping the step script into group commits of `batch` steps each.
fn run_combo_batched(
    rules: &[Rule],
    delta_dispatch: bool,
    workers: usize,
    wal: bool,
    batch: usize,
) -> RunOut {
    let registry = Arc::new(Registry::new());
    let cfg = ManagerConfig {
        delta_dispatch,
        parallel: ParallelConfig {
            workers,
            min_rules_per_worker: 1,
            adaptive: false,
        },
        obs: ObsConfig::with_registry(registry.clone()),
        ..Default::default()
    };
    let mut adb = if wal {
        ActiveDatabase::with_storage(differential_db(), cfg, Box::new(SharedMemorySink::new(64)))
            .unwrap()
    } else {
        ActiveDatabase::with_config(differential_db(), cfg)
    };
    for r in rules {
        adb.add_rule(r.clone()).unwrap();
    }
    let steps = differential_steps(STEP_SEED, STEPS);
    let mut rows = vec![0i64; DIFF_RELATIONS];
    let mut commits = Vec::with_capacity(STEPS);
    for chunk in steps.chunks(batch) {
        let mut ops = Vec::new();
        let mut payload_at = Vec::with_capacity(chunk.len());
        for s in chunk {
            let lowered = diff_step_ops(s, &mut rows);
            payload_at.push(ops.len() + lowered.len() - 1);
            ops.extend(lowered);
        }
        let outcomes = adb.commit_batch(&ops, &[]).unwrap();
        // The step's commit bit is its payload op's outcome (the leading
        // `AdvanceClock` never fails), mirroring `apply_diff_step`.
        for &i in &payload_at {
            commits.push(outcomes[i].result.is_ok());
        }
    }
    RunOut {
        firings: adb.firings().to_vec(),
        commits,
        db: adb.db().clone(),
        history: adb.history().clone(),
        stats: adb.stats(),
        snap: registry.snapshot(),
    }
}

/// Group commit must not change what fires: regrouping the whole 520-step
/// script into batches of 1, 7 and 64 steps — under sequential and forced
/// 4-worker dispatch, with and without delta dispatch, on a live WAL sink —
/// reproduces the per-op reference run *byte-identically* (firings with
/// their state indices and timestamps, commit pattern, final database,
/// history), and with the same evaluation work (full evaluations and
/// sparse advances).
///
/// Scope: under the default [`CascadeMode::Delayed`], the byte-identical
/// guarantee is for non-cascading rules, so the multi-step batches here
/// run the `ptl…` (Notify-only) catalog. Rules whose actions *write
/// data* — here the §6.1.1 aggregate maintenance triggers — follow the
/// paper §8 schedule under delayed batching: their writes land after the
/// batch's own states, so downstream firings are delayed (never lost)
/// relative to per-op interleaving; those are covered at `batch = 1`,
/// where the group degenerates to per-op dispatch, and — at every batch
/// size — by [`data_writing_catalogs_are_byte_identical_when_eagerly_batched`],
/// which runs writer catalogs under [`CascadeMode::Eager`]. Per-slice
/// counters (`parallel_batches`, `adaptive_seq_batches`) legitimately
/// differ — a slice is one batch — and are not compared.
#[test]
fn batched_commits_reproduce_per_op_run_byte_identically() {
    temporal_adb::obs::set_enabled(true);
    let all_rules = differential_rules(RULE_SEED, RULES);
    let ptl_rules: Vec<Rule> = all_rules
        .iter()
        .filter(|r| r.name.starts_with("ptl"))
        .cloned()
        .collect();
    assert!(ptl_rules.len() >= RULES / 2, "catalog mostly notify-only");

    // Full catalog (aggregates included) at batch size 1: every group is
    // one step, so dispatch interleaves exactly as the per-op run.
    {
        let reference = run_combo(true, 1, true);
        let out = run_combo_batched(&all_rules, true, 1, true, 1);
        assert_eq!(out.firings, reference.firings, "full catalog: firings");
        assert_eq!(out.commits, reference.commits, "full catalog: commits");
        assert_eq!(out.db, reference.db, "full catalog: databases");
    }

    for (delta, workers, wal) in [(false, 1usize, true), (true, 4, true), (true, 1, false)] {
        // Evaluation work (full vs sparse) depends on the dispatch config,
        // so each batched run compares against the per-op run of the *same*
        // configuration.
        let reference = run_combo_with(&ptl_rules, delta, workers, wal);
        assert!(!reference.firings.is_empty(), "dead workload");
        for batch in [1usize, 7, 64] {
            let label = format!("batch={batch} delta={delta} workers={workers} wal={wal}");
            let out = run_combo_batched(&ptl_rules, delta, workers, wal, batch);
            assert_eq!(out.firings, reference.firings, "{label}: firings diverge");
            assert_eq!(out.commits, reference.commits, "{label}: commits diverge");
            assert_eq!(out.db, reference.db, "{label}: final databases diverge");
            assert_eq!(
                out.history.len(),
                reference.history.len(),
                "{label}: history length diverges"
            );
            assert_eq!(
                out.stats.evaluations, reference.stats.evaluations,
                "{label}: full-evaluation count diverges"
            );
            assert_eq!(
                out.stats.sparse_advances, reference.stats.sparse_advances,
                "{label}: sparse-advance count diverges"
            );
            assert_metric_invariants(&label, &out);
        }
    }
}

/// Regression for the worker-attribution stats: under a forced 4-worker
/// pool the per-worker evaluation counters on the registry must agree with
/// `ManagerStats::worker_evaluations` index by index, and work must really
/// land on more than one worker.
#[test]
fn worker_stats_match_registry_under_forced_parallelism() {
    let out = run_combo(true, 4, false);
    assert!(out.stats.parallel_batches > 0, "no parallel batches ran");
    let per_worker: Vec<u64> = {
        let mut v: Vec<(usize, u64)> = out
            .snap
            .metrics
            .iter()
            .filter(|m| m.name == "tdb_parallel_worker_evaluations_total")
            .map(|m| {
                let worker: usize = m
                    .labels
                    .iter()
                    .find(|(k, _)| k == "worker")
                    .expect("worker label")
                    .1
                    .parse()
                    .expect("numeric worker id");
                match m.value {
                    temporal_adb::obs::MetricValue::Counter(c) => (worker, c),
                    _ => panic!("worker evaluations must be a counter"),
                }
            })
            .collect();
        v.sort();
        let max = v.last().map(|(w, _)| *w).unwrap_or(0);
        let mut dense = vec![0u64; max + 1];
        for (w, c) in v {
            dense[w] = c;
        }
        dense
    };
    let mut stats_workers = out.stats.worker_evaluations.clone();
    while stats_workers.last() == Some(&0) {
        stats_workers.pop();
    }
    let mut registry_workers = per_worker;
    while registry_workers.last() == Some(&0) {
        registry_workers.pop();
    }
    assert_eq!(
        registry_workers, stats_workers,
        "registry worker counters diverge from ManagerStats::worker_evaluations"
    );
    assert!(
        registry_workers.iter().filter(|&&c| c > 0).count() > 1,
        "forced 4-worker pool attributed all evaluations to one worker"
    );
}

// ---- batch-safety differential: data-writing catalogs -----------------------

/// Per-op oracle for the writer catalogs: typed facade calls, one step per
/// commit. Cascade mode is irrelevant per-op (every commit re-enters
/// dispatch anyway), so this is the ground-truth §8 *immediate* schedule.
fn run_writer_per_op(rules: &[Rule]) -> RunOut {
    let registry = Arc::new(Registry::new());
    let cfg = ManagerConfig {
        delta_dispatch: true,
        obs: ObsConfig::with_registry(registry.clone()),
        ..Default::default()
    };
    let mut adb = ActiveDatabase::with_config(differential_writer_db(), cfg);
    for r in rules {
        adb.add_rule(r.clone()).unwrap();
    }
    let commits: Vec<bool> = differential_steps(STEP_SEED, STEPS)
        .iter()
        .map(|s| apply_diff_step(&mut adb, s))
        .collect();
    RunOut {
        firings: adb.firings().to_vec(),
        commits,
        db: adb.db().clone(),
        history: adb.history().clone(),
        stats: adb.stats(),
        snap: registry.snapshot(),
    }
}

/// The same step script regrouped into eager-cascade group commits of
/// `batch` steps. Returns the run plus the certificate the runtime
/// assigned to the catalog (which decides how `commit_batch` executes:
/// fused, fence-drained sub-slices, or per-op re-entry).
fn run_writer_batched(rules: &[Rule], batch: usize) -> (RunOut, BatchCertificate) {
    let registry = Arc::new(Registry::new());
    let cfg = ManagerConfig {
        delta_dispatch: true,
        cascade: CascadeMode::Eager,
        obs: ObsConfig::with_registry(registry.clone()),
        ..Default::default()
    };
    let mut adb = ActiveDatabase::with_config(differential_writer_db(), cfg);
    for r in rules {
        adb.add_rule(r.clone()).unwrap();
    }
    let cert = adb.batch_certificate();
    let steps = differential_steps(STEP_SEED, STEPS);
    let mut rows = vec![0i64; DIFF_RELATIONS];
    let mut commits = Vec::with_capacity(STEPS);
    for chunk in steps.chunks(batch) {
        let mut ops = Vec::new();
        let mut payload_at = Vec::with_capacity(chunk.len());
        for s in chunk {
            let lowered = diff_step_ops(s, &mut rows);
            payload_at.push(ops.len() + lowered.len() - 1);
            ops.extend(lowered);
        }
        let outcomes = adb.commit_batch(&ops, &[]).unwrap();
        for &i in &payload_at {
            commits.push(outcomes[i].result.is_ok());
        }
    }
    let out = RunOut {
        firings: adb.firings().to_vec(),
        commits,
        db: adb.db().clone(),
        history: adb.history().clone(),
        stats: adb.stats(),
        snap: registry.snapshot(),
    };
    (out, cert)
}

/// The §8 gap, closed end to end: catalogs whose fired actions *write
/// data* — one per batch-safety certificate class — replay the seeded
/// 520-step script as eager group commits of 1, 7 and 64 steps, and every
/// run is **byte-identical** to the per-op oracle: same firing records
/// (rule, state index, timestamp, environment), same commit pattern, same
/// final database (the sinks only actions write), same history length.
///
/// Per class this exercises a different execution path in `commit_batch`:
///
/// * `exact` (no writers) — fully fused slice dispatch;
/// * `stratified(2)` — fence-drained sub-slices; the catalog includes a
///   bare-`previously` writer (temporal memory: its firings must coincide
///   with read-set fences — the inertia property), an impure action value
///   (materialization point pinned by the fences) and a `lasttime` reader;
/// * `cascade-required` — a self-cycling writer forcing per-op re-entry.
///
/// The full generated catalog (temporal aggregates included) rides along:
/// its §6.1.1 maintenance helpers are event-sampled writers, so the whole
/// set certifies `cascade-required` and becomes byte-identical under eager
/// batching — at any batch size, not just `batch = 1`.
///
/// Every firing also crosses the runtime write-cover tripwire
/// (`CoreError::WriteSetViolation`): the test passing means no fired
/// action ever produced a delta outside the analyzer's write set
/// (the static-vs-runtime soundness check).
#[test]
fn data_writing_catalogs_are_byte_identical_when_eagerly_batched() {
    let ptl_rules: Vec<Rule> = differential_rules(RULE_SEED, RULES)
        .into_iter()
        .filter(|r| r.name.starts_with("ptl"))
        .collect();
    let catalogs: [(&str, Vec<Rule>, BatchCertificate); 4] = [
        ("exact", ptl_rules, BatchCertificate::Exact),
        (
            "stratified",
            differential_stratified_rules(),
            BatchCertificate::Stratified { strata: 2 },
        ),
        (
            "cascade-required",
            differential_cascade_rules(),
            BatchCertificate::CascadeRequired,
        ),
        (
            "full+aggregates",
            differential_rules(RULE_SEED, RULES),
            BatchCertificate::CascadeRequired,
        ),
    ];
    for (label, rules, want_cert) in &catalogs {
        let reference = run_writer_per_op(rules);
        assert!(!reference.firings.is_empty(), "{label}: dead workload");
        // Every hand-rolled rule must fire (generated `agg…` rules may
        // legitimately stay quiet under this seed; the existing combos
        // test already guards the generated catalog's liveness).
        for r in rules.iter().filter(|r| !r.name.starts_with("agg")) {
            assert!(
                reference.firings.iter().any(|f| f.rule == r.name),
                "{label}: rule `{}` never fired — differential signal too weak",
                r.name
            );
        }
        for batch in [1usize, 7, 64] {
            let tag = format!("{label} batch={batch}");
            let (out, cert) = run_writer_batched(rules, batch);
            assert_eq!(cert, *want_cert, "{tag}: unexpected certificate");
            assert_eq!(out.firings, reference.firings, "{tag}: firings diverge");
            assert_eq!(out.commits, reference.commits, "{tag}: commits diverge");
            assert_eq!(out.db, reference.db, "{tag}: final databases diverge");
            assert_eq!(
                out.history.len(),
                reference.history.len(),
                "{tag}: history length diverges"
            );
            assert_metric_invariants(&tag, &out);
        }
    }
}
