//! Stock monitor: temporal aggregates and temporal actions.
//!
//! The scenario from the paper's introduction and Sections 6–7:
//!
//! * a moving-average rule — "the hourly average of the IBM stock price has
//!   remained above 70" — maintained incrementally via the Section 6.1.1
//!   register rewriting;
//! * a crash detector — "the Dow Jones fell more than 250 points in the
//!   last 2 hours";
//! * a temporal action — when the IBM price drops below 60, "execute the
//!   BUY-STOCK transaction every 10 minutes (in order to prevent driving up
//!   the stock-price), as long as…" for the next hour, programmed with the
//!   `executed` predicate (Section 7).
//!
//! ```text
//! cargo run --example stock_monitor
//! ```

use temporal_adb::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut db = Database::new();
    db.create_relation(
        "STOCK",
        Relation::empty(Schema::untyped(&["name", "price"])),
    )?;
    db.define_query(
        "price",
        QueryDef::new(1, parse_query("select price from STOCK where name = $0")?),
    );
    db.set_item("dow", Value::Int(10_000));
    db.define_query("dow", QueryDef::new(0, Query::item("dow")));
    db.set_item("shares_bought", Value::Int(0));
    db.define_query("shares", QueryDef::new(0, Query::item("shares_bought")));

    let mut adb = ActiveDatabase::new(db);

    // Rule 1: hourly average of IBM above 70, sampled at update events.
    adb.add_rule(Rule::trigger(
        "avg_high",
        parse_formula("avg(price(\"IBM\"); time = 0; @update_stocks) > 70")?,
        Action::Notify,
    ))?;

    // Rule 2: the Dow fell more than 250 points within 120 minutes.
    adb.add_rule(Rule::trigger(
        "dow_crash",
        parse_formula(
            "[t := time] [d := dow()] \
             previously(dow() >= d + 250 and time >= t - 120)",
        )?,
        Action::Notify,
    ))?;

    // Rule 3 (C of Section 7): IBM below 60 — recorded so rule 4 can see it.
    adb.add_rule(
        Rule::trigger(
            "cheap_ibm",
            parse_formula("price(\"IBM\") < 60")?,
            Action::Notify,
        )
        .recording_executed(),
    )?;

    // Rule 4 (A of Section 7): buy 50 shares every 10 minutes for an hour
    // after cheap_ibm executed, as long as the price stays below 60.
    adb.add_rule(Rule::trigger(
        "buy_ibm",
        parse_formula(
            "executed(cheap_ibm, s) and time - s > 0 and time - s <= 60 \
             and (time - s) % 10 = 0 and price(\"IBM\") < 60",
        )?,
        Action::DbOps(vec![ActionOp::SetItem {
            item: "shares_bought".into(),
            value: Term::add(Term::query("shares", vec![]), Term::lit(50i64)),
        }]),
    ))?;

    // ---- drive a trading session --------------------------------------------
    let prices = [
        (0i64, 80i64, 10_000i64),
        (30, 85, 10_050),
        (60, 90, 9_900),
        (90, 55, 9_700), // IBM drops below 60 → buying program starts
        (150, 58, 9_730),
        (180, 75, 9_600), // dow has fallen 450 in 120 min at some point
    ];
    for (t, ibm, dow) in prices {
        while adb.now() < Timestamp(t) {
            // March minute by minute so timer rules see every instant.
            adb.advance_clock(1)?;
            adb.tick()?;
        }
        let old = adb
            .db()
            .relation("STOCK")?
            .iter()
            .find(|r| r.get(0) == Some(&Value::str("IBM")))
            .cloned();
        let mut ops = Vec::new();
        if let Some(old) = old {
            ops.push(WriteOp::Delete {
                relation: "STOCK".into(),
                tuple: old,
            });
        }
        ops.push(WriteOp::Insert {
            relation: "STOCK".into(),
            tuple: tuple!["IBM", ibm],
        });
        ops.push(WriteOp::SetItem {
            item: "dow".into(),
            value: Value::Int(dow),
        });
        adb.update(ops)?;
        adb.emit(Event::simple("update_stocks"))?;
        println!("t={t:>3}  IBM={ibm:>3}  DOW={dow}");
    }
    // Let the buying program run out (one hour past the drop).
    while adb.now() < Timestamp(160) {
        adb.advance_clock(1)?;
        adb.tick()?;
    }

    println!("\nfirings:");
    for f in adb.firings() {
        println!("  {:>10}  rule={}", f.time.to_string(), f.rule);
    }
    let bought = adb.db().item("shares_bought")?;
    println!("\nshares bought by the temporal action: {bought}");
    assert!(adb.firings().iter().any(|f| f.rule == "avg_high"));
    assert!(adb.firings().iter().any(|f| f.rule == "cheap_ibm"));
    assert!(
        bought.as_i64().unwrap_or(0) >= 100,
        "the bot bought in several rounds"
    );
    Ok(())
}
