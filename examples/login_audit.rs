//! Login audit: events, `Since`, and free-variable parameter passing.
//!
//! The introduction's motivating condition — "the value of attribute A
//! remains positive while user X is logged in" — generalized to *any* user
//! via a free variable bound by the login event, plus an escalation rule
//! that reacts when the same user triggers twice.
//!
//! ```text
//! cargo run --example login_audit
//! ```

use temporal_adb::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut db = Database::new();
    db.set_item("A", Value::Int(5));
    db.define_query("a", QueryDef::new(0, Query::item("A")));
    db.create_relation("AUDIT", Relation::empty(Schema::untyped(&["user", "kind"])))?;

    let mut adb = ActiveDatabase::new(db);

    // Violation: A ≤ 0 while user `u` is logged in. The free variable `u`
    // is range-restricted by the login event (safety via generators); the
    // firing binds it and the action writes it to the audit table.
    adb.add_rule(
        Rule::trigger(
            "session_violation",
            parse_formula("a() <= 0 and (not @logout(u) since @login(u))")?,
            Action::DbOps(vec![ActionOp::Insert {
                relation: "AUDIT".into(),
                tuple: vec![Term::var("u"), Term::lit("violation")],
            }]),
        )
        .recording_executed(),
    )?;

    // Escalation: the same user violated twice at different times.
    adb.add_rule(Rule::trigger(
        "repeat_offender",
        parse_formula(
            "executed(session_violation, u, s1) \
             and executed(session_violation, u, s2) and s1 < s2",
        )?,
        Action::DbOps(vec![ActionOp::Insert {
            relation: "AUDIT".into(),
            tuple: vec![Term::var("u"), Term::lit("escalated")],
        }]),
    ))?;

    // ---- scenario ------------------------------------------------------------
    let log = |adb: &mut ActiveDatabase, what: &str| {
        println!(
            "t={:>2}  {:<22} A={:?}",
            adb.now().0,
            what,
            adb.db()
                .item("A")
                .map(|v| v.to_string())
                .unwrap_or_default()
        );
    };

    adb.advance_clock(1)?;
    adb.emit(Event::new("login", vec![Value::str("alice")]))?;
    log(&mut adb, "alice logs in");

    adb.advance_clock(1)?;
    adb.emit(Event::new("login", vec![Value::str("bob")]))?;
    log(&mut adb, "bob logs in");

    adb.advance_clock(1)?;
    adb.update([WriteOp::SetItem {
        item: "A".into(),
        value: Value::Int(-3),
    }])?;
    log(&mut adb, "A drops to -3  (both!)");

    adb.advance_clock(1)?;
    adb.emit(Event::new("logout", vec![Value::str("bob")]))?;
    adb.advance_clock(1)?;
    adb.update([WriteOp::SetItem {
        item: "A".into(),
        value: Value::Int(4),
    }])?;
    log(&mut adb, "A recovers; bob out");

    adb.advance_clock(1)?;
    adb.update([WriteOp::SetItem {
        item: "A".into(),
        value: Value::Int(-1),
    }])?;
    log(&mut adb, "A drops again (alice)");

    println!("\nfirings:");
    for f in adb.firings() {
        let who = f.env.get("u").map(|v| v.to_string()).unwrap_or_default();
        println!("  t={:>2}  {:<18} {}", f.time.0, f.rule, who);
    }

    let audit = adb.db().relation("AUDIT")?;
    println!("\nAUDIT table:\n{audit}");

    // Both users violated at t=3; only alice (still logged in) violates at
    // t=6, making her a repeat offender.
    assert!(audit.contains(&tuple!["alice", "violation"]));
    assert!(audit.contains(&tuple!["bob", "violation"]));
    assert!(audit.contains(&tuple!["alice", "escalated"]));
    assert!(!audit.contains(&tuple!["bob", "escalated"]));
    Ok(())
}
