//! Quickstart: the paper's running example, end to end.
//!
//! Watches a stock table for the condition "the price of IBM stock doubled
//! within 10 units of time" — written exactly as in Section 5 of the paper —
//! and replays the paper's two worked histories against it.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use temporal_adb::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Schema: STOCK(name, price), plus the `price(x)` function symbol
    //    (an n-ary query, per Section 4).
    let mut db = Database::new();
    db.create_relation(
        "STOCK",
        Relation::empty(Schema::untyped(&["name", "price"])),
    )?;
    db.define_query(
        "price",
        QueryDef::new(1, parse_query("select price from STOCK where name = $0")?),
    );

    let mut adb = ActiveDatabase::new(db);

    // 2. The rule. The condition uses the assignment operator to capture
    //    the current time and price, then looks into the past:
    //    [t := time][x := price(IBM)]
    //        Previously(price(IBM) <= 0.5*x  ∧  time >= t - 10)
    adb.add_rule(Rule::trigger(
        "ibm_doubled",
        parse_formula(
            "[t := time] [x := price(\"IBM\")] \
             previously(price(\"IBM\") <= 0.5 * x and time >= t - 10)",
        )?,
        Action::Notify,
    ))?;

    // 3. Replay the paper's first history: (10,1) (15,2) (18,5) (25,8).
    //    The trigger must fire exactly at the fourth update (25 ≥ 2·10
    //    within 10 time units).
    println!("history A: (10,1) (15,2) (18,5) (25,8)");
    for (price, t) in [(10i64, 1i64), (15, 2), (18, 5), (25, 8)] {
        set_price(&mut adb, price, t)?;
        report(&adb, price, t);
    }
    assert_eq!(adb.take_firings().len(), 1);

    // 4. The optimization-section history never fires: by time 20 the old
    //    low prices are out of the 10-unit window (and the evaluator has
    //    pruned the dead clauses away — see `retained_size`).
    println!("\nhistory B: (10,1) (15,2) (18,5) (11,20)");
    let mut db = Database::new();
    db.create_relation(
        "STOCK",
        Relation::empty(Schema::untyped(&["name", "price"])),
    )?;
    db.define_query(
        "price",
        QueryDef::new(1, parse_query("select price from STOCK where name = $0")?),
    );
    let mut adb = ActiveDatabase::new(db);
    adb.add_rule(Rule::trigger(
        "ibm_doubled",
        parse_formula(
            "[t := time] [x := price(\"IBM\")] \
             previously(price(\"IBM\") <= 0.5 * x and time >= t - 10)",
        )?,
        Action::Notify,
    ))?;
    for (price, t) in [(10i64, 1i64), (15, 2), (18, 5), (11, 20)] {
        set_price(&mut adb, price, t)?;
        report(&adb, price, t);
    }
    assert!(adb.firings().is_empty());
    println!(
        "\nretained formula-state size after history B: {} nodes (bounded by pruning)",
        adb.retained_size()
    );
    Ok(())
}

fn set_price(
    adb: &mut ActiveDatabase,
    price: i64,
    t: i64,
) -> Result<(), Box<dyn std::error::Error>> {
    while adb.now() < Timestamp(t) {
        let step = t - adb.now().0;
        adb.advance_clock(step)?;
    }
    let old = adb
        .db()
        .relation("STOCK")?
        .iter()
        .find(|row| row.get(0) == Some(&Value::str("IBM")))
        .cloned();
    let mut ops = Vec::new();
    if let Some(old) = old {
        ops.push(WriteOp::Delete {
            relation: "STOCK".into(),
            tuple: old,
        });
    }
    ops.push(WriteOp::Insert {
        relation: "STOCK".into(),
        tuple: tuple!["IBM", price],
    });
    adb.update(ops)?;
    Ok(())
}

fn report(adb: &ActiveDatabase, price: i64, t: i64) {
    let fired = adb.firings().iter().any(|f| f.time == Timestamp(t));
    println!(
        "  t={t:>2}  price={price:>3}  -> {}",
        if fired { "TRIGGER FIRED" } else { "-" }
    );
}
