//! Inventory: temporal integrity constraints and the valid-time model.
//!
//! Part 1 (transaction time): two constraints gate every commit —
//!
//! * stock level never negative (classic static constraint);
//! * stock never drops by more than 40 units in a single transaction
//!   (a genuinely *temporal* constraint using `lasttime`).
//!
//! Violating transactions are aborted; the database never passes through a
//! bad state.
//!
//! Part 2 (valid time, Section 9): deliveries are posted late — a shipment
//! that arrived at 14:00 is entered at 14:07. A backdated delivery changes
//! what was true in the past; online and offline readings of the constraint
//! disagree, and a tentative trigger retroactively fires.
//!
//! ```text
//! cargo run --example inventory_constraints
//! ```

use temporal_adb::core::{offline_satisfied, online_satisfied, EvalConfig, TentativeTriggerRunner};
use temporal_adb::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    transaction_time_part()?;
    valid_time_part()?;
    Ok(())
}

fn transaction_time_part() -> Result<(), Box<dyn std::error::Error>> {
    println!("== transaction time: gated commits ==");
    let mut db = Database::new();
    db.set_item("stock", Value::Int(100));
    db.define_query("stock", QueryDef::new(0, Query::item("stock")));
    let mut adb = ActiveDatabase::new(db);

    adb.add_rule(Rule::constraint(
        "non_negative",
        parse_formula("stock() >= 0")?,
    ))?;
    adb.add_rule(Rule::constraint(
        "no_bulk_drain",
        parse_formula("[x := stock()] not lasttime(stock() > x + 40)")?,
    ))?;

    let attempt = |adb: &mut ActiveDatabase, delta: i64| {
        adb.advance_clock(1).expect("clock");
        let current = adb.db().item("stock").expect("stock").as_i64().unwrap_or(0);
        let result = adb.update([WriteOp::SetItem {
            item: "stock".into(),
            value: Value::Int(current + delta),
        }]);
        println!(
            "  t={:>2}  stock {current:>4} {}{delta:<4} -> {}",
            adb.now().0,
            if delta >= 0 { "+" } else { "" },
            match &result {
                Ok(_) => format!("{} (committed)", current + delta),
                Err(e) => format!("ABORTED: {e}"),
            }
        );
        result.is_ok()
    };

    assert!(attempt(&mut adb, -30), "within the drain limit");
    assert!(!attempt(&mut adb, -50), "drains 50 > 40: aborted");
    assert!(attempt(&mut adb, 20));
    assert!(!attempt(&mut adb, -200), "would go negative: aborted");
    assert_eq!(adb.db().item("stock")?, Value::Int(90));
    println!("  final stock: 90 (every bad transaction rolled back)\n");
    Ok(())
}

fn valid_time_part() -> Result<(), Box<dyn std::error::Error>> {
    println!("== valid time: backdated deliveries (max delay Δ = 15) ==");
    let mut base = Database::new();
    base.set_item("stock", Value::Int(10));
    base.define_query("stock", QueryDef::new(0, Query::item("stock")));

    let mut vt = VtEngine::new(base, 15);

    // Constraint: the stock level never exceeds the warehouse capacity 60.
    let capacity = parse_formula("stock() <= 60")?;
    // Tentative trigger: "at some point the stock reached 50".
    let mut tentative = TentativeTriggerRunner::new(
        parse_formula("previously(stock() >= 50)")?,
        EvalConfig::default(),
        64,
    );

    // 14:00 (t=0)…14:05: sales happen on time.
    vt.advance_clock(5)?;
    let t1 = vt.begin()?;
    vt.update(
        t1,
        WriteOp::SetItem {
            item: "stock".into(),
            value: Value::Int(20),
        },
    )?;
    vt.commit(t1)?;
    let fired = tentative.process(&vt.tentative_history(), None)?;
    println!(
        "  t=5   stock := 20 (on time); tentative firings: {}",
        fired.len()
    );
    assert!(fired.is_empty());

    // 14:07: a delivery that actually arrived at 14:02 is posted —
    // retroactively the stock was 55 from t=2 on.
    vt.advance_clock(2)?;
    let t2 = vt.begin()?;
    let dirty = vt.update_at(
        t2,
        WriteOp::SetItem {
            item: "stock".into(),
            value: Value::Int(55),
        },
        Timestamp(2),
    )?;
    vt.commit(t2)?;
    let fired = tentative.process(&vt.tentative_history(), Some(dirty))?;
    println!(
        "  t=7   backdated delivery at valid time 2; tentative firing at {:?}",
        fired.first().map(|f| f.time)
    );
    assert_eq!(fired.first().map(|f| f.time), Some(Timestamp(2)));

    let capacity_ok = online_satisfied(&vt, &capacity)? && offline_satisfied(&vt, &capacity)?;
    println!("  capacity-60 constraint satisfied both ways: {capacity_ok}");
    assert!(capacity_ok);

    // The Section 9.3 divergence, in inventory terms: "an invoice is never
    // recorded before its goods receipt". The receipt transaction is slow
    // to commit, so at the invoice's commit point the receipt is not yet
    // visible ONLINE — but OFFLINE (with full knowledge) the receipt's
    // valid time precedes the invoice.
    let mut base = Database::new();
    base.set_item("receipt", Value::Int(0));
    base.set_item("invoice", Value::Int(0));
    base.define_query("receipt", QueryDef::new(0, Query::item("receipt")));
    base.define_query("invoice", QueryDef::new(0, Query::item("invoice")));
    let mut vt = VtEngine::new(base, 15);
    let precedes = parse_formula("invoice() = 0 or receipt() = 1")?;

    vt.advance_clock(2)?;
    let slow = vt.begin()?; // records the receipt, commits late
    let fast = vt.begin()?; // records the invoice, commits first
    vt.update(
        slow,
        WriteOp::SetItem {
            item: "receipt".into(),
            value: Value::Int(1),
        },
    )?;
    vt.advance_clock(1)?;
    vt.update(
        fast,
        WriteOp::SetItem {
            item: "invoice".into(),
            value: Value::Int(1),
        },
    )?;
    vt.advance_clock(4)?;
    vt.commit(fast)?;
    vt.advance_clock(2)?;
    vt.commit(slow)?;

    let online = online_satisfied(&vt, &precedes)?;
    let offline = offline_satisfied(&vt, &precedes)?;
    println!("  receipt-before-invoice: online-satisfied={online}, offline-satisfied={offline}");
    assert!(!online && offline, "the Section 9.3 distinction, live");
    Ok(())
}
